#!/usr/bin/env python
"""Quickstart: approximate an 8-bit multiplier with BLASYS.

Builds the paper's Mult8 benchmark, runs the full flow at two error
thresholds, prints the savings table and writes the 5%-error netlist out as
BLIF and Verilog.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench import mult8
from repro.circuit import write_blif, write_verilog
from repro.core.explorer import ExplorerConfig
from repro.flow import run_blasys


def main() -> None:
    circuit = mult8()
    print(f"input design : {circuit.name}, {circuit.n_inputs} inputs, "
          f"{circuit.n_outputs} outputs, {circuit.n_gates} gates")

    config = ExplorerConfig(
        n_samples=4096,     # Monte-Carlo samples guiding the search
        strategy="lazy",    # lazy-greedy candidate selection
    )
    result = run_blasys(circuit, thresholds=[0.05, 0.25], config=config)

    print()
    print(result.summary())

    design = result.designs.get(0.05)
    if design is not None:
        write_blif(design.circuit, "mult8_approx.blif")
        write_verilog(design.circuit, "mult8_approx.v")
        print()
        print("wrote mult8_approx.blif / mult8_approx.v "
              f"({design.circuit.n_gates} gates, "
              f"{design.metrics.area_um2:.1f} um2, "
              f"measured rel. error {design.measured['mre']:.2%})")


if __name__ == "__main__":
    main()
