#!/usr/bin/env python
"""Approximating your own circuit: build, decompose, factor, inspect.

Walks through the library layer by layer on a custom datapath (a squared
Euclidean distance unit, ``d = (a-b)^2 + (c-e)^2``), showing the
intermediate artifacts a user of the paper's flow would care about:

1. word-level construction with :class:`CircuitBuilder`;
2. the k×m decomposition and its window statistics;
3. one window's truth table and its BMF at every degree (Figure 2's
   compressor/decompressor structure);
4. the full exploration trajectory and a realized netlist.

Run:  python examples/custom_circuit.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import CircuitBuilder, write_verilog
from repro.core.bmf import factorize
from repro.core.explorer import ExplorerConfig, explore
from repro.partition import decompose
from repro.synth import evaluate_design


def build_distance_unit(width: int = 5):
    """d = (a-b)^2 + (c-e)^2 over unsigned operands."""
    b = CircuitBuilder("dist2")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    c = b.input_word("c", width)
    e = b.input_word("e", width)
    d1 = b.abs_diff(a, x)
    d2 = b.abs_diff(c, e)
    sq1 = b.mul(d1, d1)
    sq2 = b.mul(d2, d2)
    total = b.add_expand(sq1, sq2)
    b.output_word("d", total)
    return b.build()


def main() -> None:
    circuit = build_distance_unit()
    print(f"{circuit.name}: {circuit.n_inputs} inputs, "
          f"{circuit.n_outputs} outputs, {circuit.n_gates} gates")

    # --- decomposition --------------------------------------------------
    windows = decompose(circuit, max_inputs=8, max_outputs=8)
    print(f"\ndecomposed into {len(windows)} windows (k=m=8):")
    for w in windows[:6]:
        print(f"  window {w.index}: {w.n_members:3d} gates, "
              f"{w.n_inputs} -> {w.n_outputs}")
    if len(windows) > 6:
        print(f"  ... and {len(windows) - 6} more")

    # --- one window under the microscope --------------------------------
    w = max(windows, key=lambda w: w.n_outputs)
    table = w.table(circuit)
    print(f"\nwindow {w.index} truth table: {table.shape[0]} rows x "
          f"{table.shape[1]} outputs")
    print(f"{'f':>3s} {'hamming':>8s} {'rel.HD':>7s}")
    for f in range(1, w.n_outputs):
        res = factorize(table, f)
        rel = res.hamming / table.size
        print(f"{f:3d} {res.hamming:8d} {rel:7.2%}")

    # --- full exploration ------------------------------------------------
    baseline = evaluate_design(circuit, match_macros=False)
    result = explore(
        circuit,
        ExplorerConfig(
            max_inputs=8, max_outputs=8, n_samples=4096, error_cap=0.3
        ),
    )
    print(f"\nexploration: {len(result.trajectory) - 1} steps, "
          f"{result.n_evaluations} candidate evaluations")
    point = result.best_point(0.05)
    approx = result.realize(point)
    metrics = evaluate_design(approx, match_macros=False)
    savings = metrics.savings_vs(baseline)
    print(f"at 5% rel. error: area {baseline.area_um2:.0f} -> "
          f"{metrics.area_um2:.0f} um2 ({savings['area']:.1f}% saved)")

    write_verilog(approx, "dist2_approx.v")
    print("wrote dist2_approx.v")


if __name__ == "__main__":
    main()
