#!/usr/bin/env python
"""Export full accuracy/area Pareto frontiers (Figure 5 data) as CSV.

Runs the exhaustive exploration sweep on selected benchmarks and writes one
CSV per circuit with the trajectory the paper plots in Figure 5: estimated
normalized area against average relative error and normalized average
absolute error.  Useful for regenerating the figure in any plotting tool.

Run:  python examples/pareto_export.py [bench ...]
      (default: adder32 mult8 but)
"""

from __future__ import annotations

import csv
import sys

import numpy as np

from repro.bench import BENCHMARK_ORDER, get_benchmark
from repro.core.explorer import ExplorerConfig, explore
from repro.core.qor import QoREvaluator, QoRSpec
from repro.flow import measure_error


def export(name: str) -> str:
    bench = get_benchmark(name)
    circuit = bench.factory()
    result = explore(
        circuit,
        ExplorerConfig(n_samples=4096, strategy="lazy", error_cap=0.6),
    )
    path = f"pareto_{name}.csv"
    base = result.baseline_est_area
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["iteration", "window", "f", "rel_error", "norm_area", "est_area_um2"]
        )
        for p in result.trajectory:
            writer.writerow(
                [p.iteration, p.window_index, p.f, f"{p.qor:.6f}",
                 f"{p.est_area / base:.4f}", f"{p.est_area:.2f}"]
            )
    print(f"{bench.name}: {len(result.trajectory)} points -> {path}")
    return path


def main() -> None:
    names = sys.argv[1:] or ["adder32", "mult8", "but"]
    for name in names:
        if name not in BENCHMARK_ORDER:
            print(f"skipping unknown benchmark {name!r}")
            continue
        export(name)


if __name__ == "__main__":
    main()
