#!/usr/bin/env python
"""Application-level study: approximate FIR filtering of a real waveform.

The paper motivates approximate computing with error-resilient DSP.  This
example quantifies that end to end: the 4-tap FIR benchmark is approximated
at several error thresholds, each variant filters a synthetic noisy
waveform *through gate-level simulation*, and we report the application
metric a DSP engineer would check — output SNR versus the exact filter —
next to the silicon savings.

Run:  python examples/fir_signal_quality.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import fir4_8
from repro.circuit import simulate_patterns
from repro.core.explorer import ExplorerConfig, explore
from repro.synth import evaluate_design


def make_waveform(n: int, rng: np.random.Generator) -> np.ndarray:
    """A two-tone signal with additive noise, scaled to 8-bit samples."""
    t = np.arange(n)
    clean = 0.6 * np.sin(2 * np.pi * t / 40) + 0.4 * np.sin(2 * np.pi * t / 9)
    noisy = clean + rng.normal(0, 0.15, size=n)
    return np.clip((noisy * 0.5 + 0.5) * 255, 0, 255).astype(np.int64)


def fir_inputs(samples: np.ndarray, coeffs: np.ndarray, circuit) -> np.ndarray:
    """Sliding-window FIR stimulus as circuit input patterns."""
    taps = len(coeffs)
    n = len(samples) - taps + 1
    patterns = np.zeros((n, circuit.n_inputs), dtype=np.uint8)
    specs = {w.name: w for w in circuit.attrs["input_words"]}
    for tap in range(taps):
        xs = samples[tap : tap + n]
        for bit, port in enumerate(specs[f"x{tap}"].indices):
            patterns[:, port] = (xs >> bit) & 1
        for bit, port in enumerate(specs[f"c{tap}"].indices):
            patterns[:, port] = (int(coeffs[tap]) >> bit) & 1
    return patterns


def filter_through(circuit, patterns) -> np.ndarray:
    out_bits = simulate_patterns(circuit, patterns)
    spec = circuit.attrs["words"][0]
    return spec.to_ints(out_bits)


def snr_db(reference: np.ndarray, approximate: np.ndarray) -> float:
    noise = (reference - approximate).astype(float)
    signal_power = float((reference.astype(float) ** 2).mean())
    noise_power = float((noise**2).mean())
    if noise_power == 0:
        return float("inf")
    return 10 * np.log10(signal_power / noise_power)


def main() -> None:
    rng = np.random.default_rng(42)
    circuit = fir4_8()
    coeffs = np.array([32, 96, 96, 32])  # smoothing kernel, 8-bit
    samples = make_waveform(2048, rng)
    patterns = fir_inputs(samples, coeffs, circuit)
    reference = filter_through(circuit, patterns)

    baseline = evaluate_design(circuit, match_macros=False)
    print(f"exact FIR: {baseline.area_um2:.0f} um2, {baseline.power_uw:.0f} uW")
    print(f"{'threshold':>9s} {'area-%':>7s} {'power-%':>8s} {'SNR(dB)':>8s}")

    result = explore(
        circuit,
        ExplorerConfig(n_samples=4096, strategy="lazy", error_cap=0.4),
    )
    for threshold in (0.01, 0.05, 0.15, 0.30):
        point = result.best_point(threshold)
        if point is None or point.iteration == 0:
            continue
        approx = result.realize(point)
        metrics = evaluate_design(approx, match_macros=False)
        output = filter_through(approx, patterns)
        savings = metrics.savings_vs(baseline)
        print(
            f"{threshold:9.0%} {savings['area']:7.1f} {savings['power']:8.1f} "
            f"{snr_db(reference, output):8.1f}"
        )


if __name__ == "__main__":
    main()
