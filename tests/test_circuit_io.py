"""Tests for BLIF round-tripping and the Verilog writer."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CircuitBuilder,
    read_blif,
    simulate_patterns,
    truth_table,
    write_blif,
    write_verilog,
)
from repro.errors import ParseError


def _roundtrip(circuit):
    buf = io.StringIO()
    write_blif(circuit, buf)
    buf.seek(0)
    return read_blif(buf)


def _random_circuit(rng, n_inputs=4, n_gates=10):
    b = CircuitBuilder("rand")
    sigs = [b.input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        op = rng.integers(0, 5)
        picks = rng.choice(len(sigs), size=3, replace=True)
        x, y, z = (sigs[int(p)] for p in picks)
        if op == 0:
            sigs.append(b.and_(x, y))
        elif op == 1:
            sigs.append(b.or_(x, y))
        elif op == 2:
            sigs.append(b.xor_(x, y))
        elif op == 3:
            sigs.append(b.not_(x))
        else:
            sigs.append(b.mux(x, y, z))
    for i, s in enumerate(sigs[-3:]):
        b.output(f"o{i}", s)
    return b.build()


class TestBlifRoundtrip:
    def test_tiny_roundtrip(self, tiny_and_or):
        back = _roundtrip(tiny_and_or)
        np.testing.assert_array_equal(truth_table(back), truth_table(tiny_and_or))

    def test_full_adder_roundtrip(self, full_adder_circuit):
        back = _roundtrip(full_adder_circuit)
        np.testing.assert_array_equal(
            truth_table(back), truth_table(full_adder_circuit)
        )

    def test_io_names_preserved(self, tiny_and_or):
        back = _roundtrip(tiny_and_or)
        assert back.input_names() == tiny_and_or.input_names()
        assert back.output_names() == tiny_and_or.output_names()

    def test_constant_outputs(self):
        b = CircuitBuilder("consts")
        b.input("a")
        b.output("zero", b.const(False))
        b.output("one", b.const(True))
        back = _roundtrip(b.build())
        tt = truth_table(back)
        assert not tt[:, 0].any() and tt[:, 1].all()

    def test_output_directly_from_input(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("y", a)
        back = _roundtrip(b.build())
        tt = truth_table(back)
        np.testing.assert_array_equal(tt[:, 0], [False, True])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        c = _random_circuit(rng)
        back = _roundtrip(c)
        np.testing.assert_array_equal(truth_table(back), truth_table(c))


class TestBlifParsing:
    def test_offset_cover(self):
        text = """.model m
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        c = read_blif(io.StringIO(text))
        tt = truth_table(c)
        np.testing.assert_array_equal(tt[:, 0], [True, True, True, False])

    def test_dont_care_expansion(self):
        text = """.model m
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
"""
        c = read_blif(io.StringIO(text))
        tt = truth_table(c)[:, 0]
        for r in range(8):
            a, b_, c_ = r & 1, (r >> 1) & 1, (r >> 2) & 1
            assert tt[r] == bool(a or (b_ and c_))

    def test_undriven_signal_raises(self):
        text = ".model m\n.inputs a\n.outputs y\n.end\n"
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_mixed_cover_polarity_raises(self):
        text = """.model m
.inputs a
.outputs y
.names a y
1 1
0 0
.end
"""
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_unsupported_construct_raises(self):
        text = ".model m\n.latch a b\n.end\n"
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_comments_and_continuations(self):
        text = """# a comment
.model m
.inputs a \\
b
.outputs y
.names a b y  # trailing comment
11 1
.end
"""
        c = read_blif(io.StringIO(text))
        assert c.n_inputs == 2


class TestVerilogWriter:
    def test_emits_module_and_assigns(self, full_adder_circuit):
        buf = io.StringIO()
        write_verilog(full_adder_circuit, buf)
        text = buf.getvalue()
        assert text.startswith("module fa(")
        assert "endmodule" in text
        assert "assign" in text

    def test_escapes_bracketed_names(self):
        b = CircuitBuilder("top")
        w = b.input_word("a", 2)
        b.output_word("y", b.invert_word(w))
        buf = io.StringIO()
        write_verilog(b.build(), buf)
        text = buf.getvalue()
        assert "a[0]" not in text  # brackets must be escaped
        assert "a_0_" in text

    def test_lut_becomes_sop(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.lut([x, y], np.array([0, 1, 0, 0], dtype=bool)))
        buf = io.StringIO()
        write_verilog(b.build(), buf)
        assert "(x & ~y)" in buf.getvalue()
