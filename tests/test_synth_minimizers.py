"""Tests for espresso and Quine–McCluskey minimizers.

The key invariants: covers must implement the function exactly on care
rows; espresso should be irredundant; QM must be optimal on small inputs;
and espresso must stay within a reasonable factor of the exact optimum.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.synth import (
    Cover,
    EspressoOptions,
    espresso,
    espresso_multi,
    prime_implicants,
    quine_mccluskey,
)


def _random_table(rng, k, density=0.5):
    return rng.random(1 << k) < density


class TestEspressoCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 9999), k=st.integers(1, 6))
    def test_equivalence_random_functions(self, seed, k):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, k)
        cover = espresso(table)
        np.testing.assert_array_equal(cover.evaluate(), table)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_equivalence_with_dc(self, seed):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, 5)
        dc = rng.random(32) < 0.3
        cover = espresso(table, dc)
        got = cover.evaluate()
        care = ~dc
        np.testing.assert_array_equal(got[care], table[care])

    def test_constant_zero(self):
        cover = espresso(np.zeros(8, dtype=bool))
        assert len(cover) == 0

    def test_constant_one(self):
        cover = espresso(np.ones(8, dtype=bool))
        assert len(cover) == 1
        assert cover.cubes[0].n_literals == 0

    def test_single_minterm(self):
        table = np.zeros(16, dtype=bool)
        table[9] = True
        cover = espresso(table)
        assert len(cover) == 1
        assert cover.cubes[0].n_literals == 4

    def test_bad_table_length(self):
        with pytest.raises(SynthesisError):
            espresso(np.zeros(5, dtype=bool))

    def test_xor_needs_full_cubes(self):
        # XOR has no mergeable adjacent minterms: 2^(k-1) full cubes.
        k = 4
        idx = np.arange(1 << k)
        parity = np.zeros(1 << k, dtype=bool)
        for i in range(k):
            parity ^= ((idx >> i) & 1).astype(bool)
        cover = espresso(parity)
        assert len(cover) == 1 << (k - 1)
        assert all(c.n_literals == k for c in cover)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_irredundant(self, seed):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, 5)
        cover = espresso(table)
        # Removing any single cube must change the function.
        for drop in range(len(cover)):
            reduced = Cover(cover.k, [c for i, c in enumerate(cover) if i != drop])
            assert not np.array_equal(reduced.evaluate(), table)

    def test_quality_mode_not_worse(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            table = _random_table(rng, 6)
            fast = espresso(table)
            good = espresso(table, options=EspressoOptions(quality=True))
            assert (len(good), good.n_literals) <= (len(fast), fast.n_literals)
            np.testing.assert_array_equal(good.evaluate(), table)


class TestEspressoMulti:
    def test_each_column_implemented(self, rng):
        tables = rng.random((32, 4)) < 0.5
        covers = espresso_multi(tables)
        assert len(covers) == 4
        for j, cover in enumerate(covers):
            np.testing.assert_array_equal(cover.evaluate(), tables[:, j])

    def test_rejects_1d(self):
        with pytest.raises(SynthesisError):
            espresso_multi(np.zeros(8, dtype=bool).reshape(8))


class TestPrimeImplicants:
    def test_classic_example(self):
        # f = sum m(0,1,2,5,6,7) over 3 vars.  Cube strings below are in
        # this library's convention: input 0 (the LSB of the minterm index)
        # is the leftmost character.
        primes = prime_implicants(3, [0, 1, 2, 5, 6, 7], [])
        strings = {p.to_string(3) for p in primes}
        assert strings == {"-00", "0-0", "10-", "01-", "1-1", "-11"}

    def test_full_cover_merges_to_tautology(self):
        primes = prime_implicants(2, [0, 1, 2, 3], [])
        assert len(primes) == 1
        assert primes[0].n_literals == 0

    def test_dc_participates_in_merging(self):
        # ON = {0}, DC = {1}: prime should be the pair cube "0-" (over 1 var: "-").
        primes = prime_implicants(1, [0], [1])
        assert any(p.n_literals == 0 for p in primes)


class TestQuineMcCluskey:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 9999), k=st.integers(1, 4))
    def test_equivalence(self, seed, k):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, k)
        cover = quine_mccluskey(table)
        np.testing.assert_array_equal(cover.evaluate(), table)

    def test_known_optimal_size(self):
        # f = a&b | ~a&~b (XNOR): exactly 2 cubes of 2 literals.
        table = np.array([True, False, False, True])
        cover = quine_mccluskey(table)
        assert len(cover) == 2
        assert cover.n_literals == 4

    def test_input_limit(self):
        with pytest.raises(SynthesisError):
            quine_mccluskey(np.zeros(1 << 11, dtype=bool))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_espresso_within_factor_of_optimal(self, seed):
        """Espresso's cube count should stay close to the exact optimum."""
        rng = np.random.default_rng(seed)
        table = _random_table(rng, 4)
        exact = quine_mccluskey(table)
        heur = espresso(table, options=EspressoOptions(quality=True))
        assert len(heur) <= max(len(exact) + 2, int(1.5 * len(exact)))

    def test_dc_exploited(self):
        # ON={3}, DC={0,1,2}: with DCs the function is coverable by 1 cube
        # cheaper than the 2-literal minterm.
        table = np.array([False, False, False, True])
        dc = np.array([True, True, True, False])
        cover = quine_mccluskey(table, dc)
        assert cover.n_literals <= 1
