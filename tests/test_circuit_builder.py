"""Tests for CircuitBuilder: folding, hashing, and word-level arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, Op, simulate_patterns, truth_table
from repro.circuit.words import WordSpec
from repro.errors import CircuitError


def _word_value(bits):
    return sum(int(b) << i for i, b in enumerate(bits))


def _eval_words(circuit, assignments):
    """Simulate with input words given as {name: int}; returns {name: int}."""
    in_specs = {w.name: w for w in circuit.attrs["input_words"]}
    n_in = circuit.n_inputs
    pattern = np.zeros((1, n_in), dtype=np.uint8)
    for name, value in assignments.items():
        spec = in_specs[name]
        for bit_pos, port_idx in enumerate(spec.indices):
            pattern[0, port_idx] = (value >> bit_pos) & 1
    out_bits = simulate_patterns(circuit, pattern)
    result = {}
    for spec in circuit.attrs["words"]:
        result[spec.name] = int(spec.to_ints(out_bits)[0])
    return result


class TestFolding:
    def test_double_negation_cancelled(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.not_(b.not_(a)) == a

    def test_and_with_zero_is_zero(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.and_(a, b.const(False)) == b.const(False)

    def test_and_with_one_dropped(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.and_(a, b.const(True)) == a

    def test_or_with_one_is_one(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.or_(a, b.const(True)) == b.const(True)

    def test_x_and_not_x_is_zero(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.and_(a, b.not_(a)) == b.const(False)

    def test_x_or_not_x_is_one(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.or_(a, b.not_(a)) == b.const(True)

    def test_xor_with_one_becomes_inverter(self):
        b = CircuitBuilder()
        a = b.input("a")
        y = b.xor_(a, b.const(True))
        assert b._nodes[y].op is Op.NOT

    def test_xor_self_cancels(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.xor_(a, a) == b.const(False)

    def test_mux_constant_select(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        assert b.mux(b.const(False), a, x) == a
        assert b.mux(b.const(True), a, x) == x

    def test_mux_zero_one_is_select(self):
        b = CircuitBuilder()
        s = b.input("s")
        assert b.mux(s, b.const(False), b.const(True)) == s

    def test_mux_same_branches(self):
        b = CircuitBuilder()
        s, a = b.input("s"), b.input("a")
        assert b.mux(s, a, a) == a

    def test_constant_lut_folds(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.lut([a], np.array([0, 0], dtype=bool)) == b.const(False)
        assert b.lut([a], np.array([1, 1], dtype=bool)) == b.const(True)


class TestStructuralHashing:
    def test_identical_gates_shared(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        assert b.and_(a, x) == b.and_(a, x)

    def test_commutative_gates_shared(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        assert b.and_(a, x) == b.and_(x, a)

    def test_mux_is_not_commutative(self):
        b = CircuitBuilder()
        s, a, x = b.input("s"), b.input("a"), b.input("b")
        assert b.mux(s, a, x) != b.mux(s, x, a)

    def test_lut_hash_includes_table(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        t1 = np.array([0, 1, 1, 0], dtype=bool)
        t2 = np.array([1, 1, 1, 0], dtype=bool)
        assert b.lut([a, x], t1) != b.lut([a, x], t2)
        assert b.lut([a, x], t1) == b.lut([a, x], t1.copy())


class TestWordArithmetic:
    def _build_binop(self, width, fn_name, out_width=None, signed=False):
        b = CircuitBuilder()
        a = b.input_word("a", width)
        x = b.input_word("b", width)
        if fn_name == "add":
            s, c = b.add(a, x)
            b.output_word("y", s + [c])
        elif fn_name == "sub":
            d, _ = b.sub(a, x)
            b.output_word("y", d, signed=signed)
        elif fn_name == "abs_diff":
            b.output_word("y", b.abs_diff(a, x))
        elif fn_name == "mul":
            b.output_word("y", b.mul(a, x))
        elif fn_name == "add_expand":
            b.output_word("y", b.add_expand(a, x))
        return b.build()

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 15), x=st.integers(0, 15))
    def test_add(self, a, x):
        c = self._build_binop(4, "add")
        assert _eval_words(c, {"a": a, "b": x})["y"] == a + x

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 255), x=st.integers(0, 255))
    def test_abs_diff(self, a, x):
        c = self._build_binop(8, "abs_diff")
        assert _eval_words(c, {"a": a, "b": x})["y"] == abs(a - x)

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 63), x=st.integers(0, 63))
    def test_mul(self, a, x):
        c = self._build_binop(6, "mul")
        assert _eval_words(c, {"a": a, "b": x})["y"] == a * x

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 255), x=st.integers(0, 255))
    def test_sub_modular(self, a, x):
        c = self._build_binop(8, "sub")
        assert _eval_words(c, {"a": a, "b": x})["y"] == (a - x) % 256

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 31), x=st.integers(0, 31))
    def test_add_expand_never_wraps(self, a, x):
        c = self._build_binop(5, "add_expand")
        assert _eval_words(c, {"a": a, "b": x})["y"] == a + x

    def test_add_width_mismatch_raises(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.add(b.input_word("a", 3), b.input_word("b", 4))

    def test_negate(self):
        b = CircuitBuilder()
        a = b.input_word("a", 4)
        b.output_word("y", b.negate(a))
        c = b.build()
        for v in range(16):
            assert _eval_words(c, {"a": v})["y"] == (-v) % 16

    def test_mux_word(self):
        b = CircuitBuilder()
        s = b.input("s")
        a = b.input_word("a", 4)
        x = b.input_word("b", 4)
        b.output_word("y", b.mux_word(s, a, x))
        c = b.build()
        # input order: s at position 0, then a, then b
        in_specs = {w.name: w for w in c.attrs["input_words"]}
        pattern = np.zeros((2, c.n_inputs), dtype=np.uint8)
        pattern[1, 0] = 1  # s=1 in second pattern
        for bit_pos, port in enumerate(in_specs["a"].indices):
            pattern[:, port] = (5 >> bit_pos) & 1
        for bit_pos, port in enumerate(in_specs["b"].indices):
            pattern[:, port] = (9 >> bit_pos) & 1
        out = simulate_patterns(c, pattern)
        spec = c.attrs["words"][0]
        assert spec.to_ints(out).tolist() == [5, 9]

    def test_less_than_and_equals(self):
        b = CircuitBuilder()
        a = b.input_word("a", 4)
        x = b.input_word("b", 4)
        b.output("lt", b.less_than(a, x))
        b.output("eq", b.equals(a, x))
        c = b.build()
        tt = truth_table(c)
        for r in range(256):
            av = r & 0xF
            xv = (r >> 4) & 0xF
            assert tt[r, 0] == (av < xv)
            assert tt[r, 1] == (av == xv)

    def test_const_word(self):
        b = CircuitBuilder()
        b.input("dummy")
        b.output_word("y", b.const_word(13, 5))
        c = b.build()
        assert _eval_words(c, {}) == {"y": 13}


class TestWordSpec:
    def test_unsigned_interpretation(self):
        spec = WordSpec("w", (0, 1, 2))
        bits = np.array([[1, 0, 1]])
        assert spec.to_ints(bits)[0] == 5

    def test_signed_interpretation(self):
        spec = WordSpec("w", (0, 1, 2), signed=True)
        bits = np.array([[1, 0, 1]])
        assert spec.to_ints(bits)[0] == 5 - 8

    def test_max_abs(self):
        assert WordSpec("w", (0, 1, 2)).max_abs == 7
        assert WordSpec("w", (0, 1, 2), signed=True).max_abs == 4

    def test_builder_records_words(self):
        b = CircuitBuilder()
        a = b.input_word("a", 3, signed=True)
        b.output_word("y", a, signed=True)
        c = b.build()
        assert c.attrs["input_words"][0] == WordSpec("a", (0, 1, 2), True)
        assert c.attrs["words"][0] == WordSpec("y", (0, 1, 2), True)
