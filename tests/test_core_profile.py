"""Tests for the profiling phase (Algorithm 1 lines 3-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.circuit import CircuitBuilder
from repro.core.bmf import bool_product
from repro.core.profile import (
    SELECTIONS,
    WEIGHT_MODES,
    output_significance,
    profile_windows,
    window_weights,
)
from repro.partition import (
    ConeReplacement,
    FactoredReplacement,
    decompose,
)


@pytest.fixture(scope="module")
def adder_setup():
    circuit = ripple_adder(6)
    windows = decompose(circuit, 8, 8)
    return circuit, windows


class TestProfileWindows:
    def test_variant_range(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(circuit, windows, estimate_area=False)
        for p in profiles:
            assert set(p.variants) == set(range(1, p.window.n_outputs))

    def test_tables_are_products(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(circuit, windows, estimate_area=False)
        for p in profiles:
            for f, variants in p.variants.items():
                for v in variants:
                    np.testing.assert_array_equal(
                        v.table, bool_product(v.B, v.C)
                    )

    def test_bmf_error_decreases_with_degree(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(
            circuit, windows, estimate_area=False, weight_mode="uniform"
        )
        for p in profiles:
            errs = [p.variants[f][0].bmf_error for f in sorted(p.variants)]
            assert all(e2 <= e1 + 1e-9 for e1, e2 in zip(errs, errs[1:]))

    def test_cone_selection_areas_monotone(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(
            circuit, windows, selection="cone", weight_mode="uniform"
        )
        for p in profiles:
            areas = [p.variants[f][0].area for f in sorted(p.variants)]
            ordered = areas + [p.exact_area]
            assert all(a <= b + 1e-6 for a, b in zip(ordered, ordered[1:])), (
                f"cone areas not monotone: {ordered}"
            )

    def test_dual_rail_candidates_under_significance(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(
            circuit, windows, weight_mode="significance", estimate_area=False
        )
        # At least one window/degree should offer two distinct candidates.
        counts = [
            len(vs) for p in profiles for vs in p.variants.values()
        ]
        assert max(counts) == 2
        assert min(counts) >= 1

    def test_selection_kinds(self, adder_setup):
        circuit, windows = adder_setup
        for selection in SELECTIONS:
            profiles = profile_windows(
                circuit, windows, selection=selection, estimate_area=False
            )
            kinds = {
                v.kind
                for p in profiles
                for vs in p.variants.values()
                for v in vs
            }
            if selection == "bmf":
                assert kinds == {"bmf"}
            elif selection == "cone":
                assert kinds == {"cone"}
            else:
                assert kinds <= {"bmf", "cone"}

    def test_replacement_types_match_kind(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(circuit, windows, estimate_area=False)
        for p in profiles:
            for vs in p.variants.values():
                for v in vs:
                    if v.kind == "cone":
                        assert isinstance(v.replacement, ConeReplacement)
                    else:
                        assert isinstance(v.replacement, FactoredReplacement)

    def test_invalid_selection(self, adder_setup):
        circuit, windows = adder_setup
        with pytest.raises(ValueError):
            profile_windows(circuit, windows, selection="best")

    def test_invalid_weight_mode(self, adder_setup):
        circuit, windows = adder_setup
        with pytest.raises(ValueError):
            profile_windows(circuit, windows, weight_mode="fanout")

    def test_weighted_profiles_record_weights(self, adder_setup):
        circuit, windows = adder_setup
        profiles = profile_windows(
            circuit, windows, weight_mode="significance", estimate_area=False
        )
        for p in profiles:
            assert p.weights is not None
            assert p.weights.shape == (p.window.n_outputs,)
            assert p.weights.sum() == pytest.approx(p.window.n_outputs)


class TestOutputSignificance:
    def test_msb_weighs_more_than_lsb(self):
        circuit = ripple_adder(6)
        sig = output_significance(circuit)
        out_nodes = circuit.output_nodes()
        assert sig[out_nodes[-1]] > sig[out_nodes[0]]

    def test_propagates_to_inputs(self):
        circuit = ripple_adder(4)
        sig = output_significance(circuit)
        assert all(sig[i] > 0 for i in circuit.inputs)

    def test_unworded_outputs_get_unit_weight(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("y", b.not_(a))
        circuit = b.build()
        circuit.attrs["words"] = []
        sig = output_significance(circuit)
        assert sig[circuit.output_nodes()[0]] == pytest.approx(1.0)

    def test_window_weights_normalized(self):
        circuit = butterfly(5)
        windows = decompose(circuit, 8, 8)
        sig = output_significance(circuit)
        for w in windows:
            weights = window_weights(circuit, w, "significance", sig)
            assert weights.sum() == pytest.approx(w.n_outputs)
            assert (weights > 0).all()

    def test_uniform_mode_returns_none(self):
        circuit = butterfly(5)
        windows = decompose(circuit, 8, 8)
        assert window_weights(circuit, windows[0], "uniform", None) is None
