"""Exploration service: admission, journaling, recovery, sharing, isolation.

The contracts under test (DESIGN.md "Service"):

* **Admission** verdicts are concrete and decided at submit time —
  draining, queue-full, and memory-budget refusals raise
  :class:`~repro.errors.JobRejected` with the reason; invalid specs are
  :class:`~repro.errors.ExplorationError`, never a queue slot.
* **Journal** appends survive torn tails: replay stops at the first
  corrupt line and keeps everything before it; compaction is atomic.
* **Recovery** is byte-identical: a job interrupted by shutdown (or a
  simulated crash) finishes with exactly the trajectory of an
  uninterrupted run.
* **Sharing**: concurrent jobs profile through one cache (the second
  identical job factorizes nothing) and lease one shard pool.
* **Isolation**: one job's deadline expiry or crash fails that job
  alone; its neighbors complete untouched.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench import get_benchmark
from repro.circuit.simulate import words_for
from repro.core.explorer import ExplorerConfig, explore
from repro.errors import ExplorationError, JobRejected
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    ExplorationScheduler,
    JobJournal,
    JobRecord,
    JobSpec,
    ServiceClient,
    estimate_job_bytes,
    serve,
)

#: Small-but-real search: butterfly, 4 windows, ~21 committed iterations.
BASE = dict(n_samples=700, max_inputs=8, max_outputs=8, strategy="full",
            chunk_words=3)


def _spec(**over) -> JobSpec:
    config = dict(BASE)
    config.update(over.pop("config", {}))
    return JobSpec(bench="but", config=config, **over)


def _key(result_or_record):
    """Canonical trajectory key, from an ExplorationResult or JobRecord."""
    if isinstance(result_or_record, JobRecord):
        return result_or_record.trajectory_key()
    return [
        (p.iteration, p.window_index, p.f, float(p.qor), float(p.est_area),
         tuple(p.fs))
        for p in result_or_record.trajectory
    ]


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted in-process run every service result must match."""
    circuit = get_benchmark("but").factory()
    return explore(circuit, ExplorerConfig(**BASE))


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        events = [{"op": "submit", "n": i} for i in range(3)]
        for e in events:
            journal.append(e)
        assert JobJournal(tmp_path / "j.jsonl").replay() == events

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.append({"op": "submit", "n": 0})
        journal.append({"op": "submit", "n": 1})
        with open(path, "ab") as fh:  # a crash mid-append: no newline
            fh.write(b'{"rec": {"op": "subm')
        replayed = JobJournal(path)
        assert replayed.replay() == [
            {"op": "submit", "n": 0}, {"op": "submit", "n": 1},
        ]
        assert replayed.dropped == 1

    def test_checksum_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        for i in range(3):
            journal.append({"op": "submit", "n": i})
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip payload bytes in the middle record; its CRC no longer
        # matches, so replay keeps record 0 and drops 1..end (a record
        # after a corrupt one cannot be trusted to be causally intact).
        lines[1] = lines[1].replace(b'"n":1', b'"n":9')
        path.write_bytes(b"".join(lines))
        replayed = JobJournal(path)
        assert replayed.replay() == [{"op": "submit", "n": 0}]
        assert replayed.dropped == 2

    def test_compact_rewrites_atomically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        for i in range(10):
            journal.append({"op": "submit", "n": i})
        journal.compact([{"op": "submit", "n": 9}])
        assert JobJournal(path).replay() == [{"op": "submit", "n": 9}]
        assert not list(tmp_path.glob("*.tmp"))


class TestSpecValidation:
    def test_needs_exactly_one_circuit_source(self):
        with pytest.raises(ExplorationError, match="exactly one"):
            JobSpec(bench="but", blif=".model x\n.end\n").validate()
        with pytest.raises(ExplorationError, match="exactly one"):
            JobSpec().validate()

    def test_unknown_config_keys_rejected(self):
        with pytest.raises(ExplorationError, match="unknown config keys"):
            JobSpec(bench="but", config={"not_a_knob": 1}).validate()

    def test_checkpoint_keys_are_service_managed(self):
        # Clients cannot place checkpoints: the scheduler keys them off
        # the job id so recovery can find them.
        with pytest.raises(ExplorationError, match="unknown config keys"):
            JobSpec(bench="but", config={"checkpoint_path": "/x"}).validate()

    def test_bad_deadline_rejected(self):
        with pytest.raises(ExplorationError, match="deadline"):
            JobSpec(bench="but", deadline_s=0.0).validate()

    def test_estimate_matches_engine_budget_math(self):
        circuit = get_benchmark("but").factory()
        n_nodes = circuit.n_nodes
        resident = estimate_job_bytes(
            JobSpec(bench="but", config={"n_samples": 700}), circuit
        )
        assert resident == 8 * n_nodes * words_for(700)
        streaming = estimate_job_bytes(
            JobSpec(bench="but", config={
                "n_samples": 700, "chunk_words": 3, "shard_jobs": 2,
                "chunk_cache_chunks": 1,
            }),
            circuit,
        )
        assert streaming == (2 + 1) * 8 * n_nodes * 3 * 2


class TestAdmission:
    def test_queue_full_rejects_with_reason(self, tmp_path):
        sched = ExplorationScheduler(tmp_path, max_queue=1)
        sched.submit(_spec())
        with pytest.raises(JobRejected, match="queue full"):
            sched.submit(_spec())
        assert sched.stats.jobs_admitted == 1
        assert sched.stats.jobs_rejected == 1

    def test_memory_budget_rejects_with_reason(self, tmp_path):
        sched = ExplorationScheduler(tmp_path, max_memory_bytes=1)
        with pytest.raises(JobRejected, match="memory budget"):
            sched.submit(_spec())

    def test_draining_service_rejects(self, tmp_path):
        sched = ExplorationScheduler(tmp_path)
        sched.shutdown()
        with pytest.raises(JobRejected, match="shutting down"):
            sched.submit(_spec())

    def test_invalid_spec_is_not_an_admission_verdict(self, tmp_path):
        sched = ExplorationScheduler(tmp_path, max_queue=1)
        with pytest.raises(ExplorationError):
            sched.submit(JobSpec(bench="but", config={"bogus": 1}))
        # The refusal consumed no queue slot and no rejection counter.
        assert sched.stats.jobs_rejected == 0
        sched.submit(_spec())  # the slot is still free


class TestSchedulerJobs:
    def test_cross_job_cache_sharing_byte_identical(self, tmp_path, reference):
        # Two identical jobs through one scheduler and one shared cache:
        # the first populates it, the second profiles entirely from it —
        # zero new factorizations — and both trajectories are
        # byte-identical to the serial in-process reference.
        sched = ExplorationScheduler(tmp_path, max_concurrent=1)
        first = sched.submit(_spec())
        second = sched.submit(_spec())
        sched.start()
        try:
            rec1 = sched.wait(first, timeout=300)
            rec2 = sched.wait(second, timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert rec1.state == DONE and rec2.state == DONE
        assert _key(rec1) == _key(reference)
        assert _key(rec2) == _key(reference)
        # 4 windows: 4 cold misses+stores from job 1, 4 warm hits for
        # job 2 — and the factorization total across BOTH jobs equals
        # one cold run's count.
        assert sched.cache.misses == sched.cache.stores == 4
        assert sched.cache.hits == 4
        assert (
            sched.stats.n_factorizations
            == reference.runtime_stats.n_factorizations
        )
        assert sched.stats.jobs_completed == 2

    def test_deadline_fails_in_isolation(self, tmp_path, reference):
        # An impossible deadline fails *that* job with the concrete
        # reason; the concurrent healthy job completes byte-identically.
        sched = ExplorationScheduler(tmp_path, max_concurrent=2)
        doomed = sched.submit(_spec(deadline_s=1e-4))
        healthy = sched.submit(_spec())
        sched.start()
        try:
            rec_doomed = sched.wait(doomed, timeout=300)
            rec_healthy = sched.wait(healthy, timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert rec_doomed.state == FAILED
        assert "deadline exceeded" in rec_doomed.error
        assert rec_healthy.state == DONE
        assert _key(rec_healthy) == _key(reference)
        assert sched.stats.jobs_failed == 1
        assert sched.stats.jobs_completed == 1

    def test_crash_isolation(self, tmp_path, reference, monkeypatch):
        # A job whose exploration raises is FAILED with the exception;
        # nothing leaks into the next job on the same worker.
        import repro.service.scheduler as scheduler_mod

        real_explore = scheduler_mod.explore

        def exploding(circuit, config, *args, **kwargs):
            if config.seed == 999:  # the crasher's marker
                raise RuntimeError("injected job crash")
            return real_explore(circuit, config, *args, **kwargs)

        monkeypatch.setattr(scheduler_mod, "explore", exploding)
        sched = ExplorationScheduler(tmp_path, max_concurrent=1)
        crasher = sched.submit(_spec(name="boom", config={"seed": 999}))
        healthy = sched.submit(_spec())
        sched.start()
        try:
            rec_crash = sched.wait(crasher, timeout=300)
            rec_ok = sched.wait(healthy, timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert rec_crash.state == FAILED
        assert "RuntimeError: injected job crash" in rec_crash.error
        assert rec_ok.state == DONE and _key(rec_ok) == _key(reference)

    def test_cancel_queued_job(self, tmp_path, reference):
        sched = ExplorationScheduler(tmp_path, max_concurrent=1)
        keep = sched.submit(_spec())
        drop = sched.submit(_spec())
        # Workers have not started: both jobs are queued; cancelling the
        # second must not disturb the first.
        rec = sched.cancel(drop)
        assert rec.state == CANCELLED and "before start" in rec.error
        sched.start()
        try:
            rec_keep = sched.wait(keep, timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert rec_keep.state == DONE and _key(rec_keep) == _key(reference)
        assert sched.stats.jobs_cancelled == 1

    def test_shared_pool_across_concurrent_jobs(self, tmp_path, reference):
        # Two concurrent jobs with identical streaming contexts lease
        # ONE shard pool (content-keyed), and sharing changes nothing:
        # both trajectories match the serial reference.
        sched = ExplorationScheduler(tmp_path, max_concurrent=2)
        a = sched.submit(_spec(config={"shard_jobs": 2}))
        b = sched.submit(_spec(config={"shard_jobs": 2}))
        sched.start()
        try:
            rec_a = sched.wait(a, timeout=600)
            rec_b = sched.wait(b, timeout=600)
        finally:
            sched.shutdown(drain=True)
        assert rec_a.state == DONE and rec_b.state == DONE
        assert _key(rec_a) == _key(reference)
        assert _key(rec_b) == _key(reference)
        assert sched.registry.pools_built == 1
        assert sched.registry.leases == 2

    def test_worker_budget_degrades_to_in_process(self, tmp_path, reference):
        # A shard-worker budget below the request degrades the job to
        # in-process streaming — same bytes, no pool.
        sched = ExplorationScheduler(tmp_path, max_pool_workers=1)
        with pytest.warns(RuntimeWarning, match="budget"):
            job = sched.submit(_spec(config={"shard_jobs": 2}))
            sched.start()
            try:
                rec = sched.wait(job, timeout=300)
            finally:
                sched.shutdown(drain=True)
        assert rec.state == DONE and _key(rec) == _key(reference)
        assert sched.registry.pools_built == 0
        assert sched.registry.rejected_leases >= 1


class TestRecovery:
    def test_shutdown_checkpoints_then_restart_resumes(self, tmp_path, reference):
        # Graceful shutdown mid-job: the job stays non-terminal with a
        # flushed checkpoint; a new scheduler on the same journal
        # recovers it and the finished trajectory is byte-identical.
        sched = ExplorationScheduler(tmp_path)
        job = sched.submit(_spec())
        ckpt = sched._checkpoint_path(job)
        sched.start()
        deadline = time.monotonic() + 120
        while not ckpt.exists():
            if time.monotonic() > deadline:
                pytest.fail("checkpoint never appeared")
            if sched.status(job).terminal:
                pytest.skip("job finished before shutdown could interrupt")
            time.sleep(0.002)
        sched.shutdown(drain=False)
        if sched.status(job).terminal:  # pragma: no cover - tiny race
            pytest.skip("job finished before shutdown could interrupt")

        revived = ExplorationScheduler(tmp_path)
        assert revived.recover() == 1
        record = revived.status(job)
        assert record.state == QUEUED and record.resumed
        revived.start()
        try:
            finished = revived.wait(job, timeout=300)
        finally:
            revived.shutdown(drain=True)
        assert finished.state == DONE
        assert _key(finished) == _key(reference)
        assert revived.stats.jobs_recovered == 1
        assert not ckpt.exists()  # completion reclaims the checkpoint

    def test_recover_from_simulated_crash_journal(self, tmp_path, reference):
        # A journal that ends with a job in RUNNING and no result event
        # is exactly what kill -9 leaves behind; recovery re-runs the
        # job from scratch (no checkpoint was flushed) to the same bytes.
        journal = JobJournal(tmp_path / "journal.jsonl")
        record = JobRecord("job-0001", _spec(), state=QUEUED, seq=1)
        journal.append({"op": "submit", "job": record.to_dict()})
        journal.append({"op": "state", "job_id": "job-0001", "state": "running"})

        sched = ExplorationScheduler(tmp_path)
        assert sched.recover() == 1
        rec = sched.status("job-0001")
        assert rec.state == QUEUED and not rec.resumed
        sched.start()
        try:
            finished = sched.wait("job-0001", timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert finished.state == DONE
        assert _key(finished) == _key(reference)

    def test_terminal_jobs_survive_restart_without_rerun(self, tmp_path, reference):
        sched = ExplorationScheduler(tmp_path)
        job = sched.submit(_spec())
        sched.start()
        try:
            done = sched.wait(job, timeout=300)
        finally:
            sched.shutdown(drain=True)
        assert done.state == DONE

        revived = ExplorationScheduler(tmp_path)
        assert revived.recover() == 0  # nothing to re-enqueue
        kept = revived.status(job)
        assert kept.state == DONE
        assert _key(kept) == _key(reference)  # result replayed, not re-run


class TestServer:
    def test_socket_roundtrip(self, tmp_path, reference):
        socket_path = str(tmp_path / "b.sock")
        journal_dir = str(tmp_path / "jobs")
        rc = []
        daemon = threading.Thread(
            target=lambda: rc.append(
                serve(socket_path, journal_dir, max_concurrent=2, quiet=True)
            ),
        )
        daemon.start()
        try:
            client = ServiceClient(socket_path, timeout=300.0)
            client.wait_ready(timeout=30.0)
            job_id = client.submit(_spec())
            record = client.wait(job_id)
            assert record.state == DONE
            assert record.trajectory_key() == _key(reference)
            assert [r.job_id for r in client.list_jobs()] == [job_id]
            stats = client.stats()
            assert stats["jobs"] == 1 and stats["running"] == 0
            with pytest.raises(ExplorationError, match="unknown job"):
                client.status("job-9999")
        finally:
            try:
                ServiceClient(socket_path, timeout=10.0).shutdown()
            except ExplorationError:
                pass
            daemon.join(timeout=60)
        assert rc == [0]  # client shutdown, not a signal

    def test_rejection_travels_as_job_rejected(self, tmp_path):
        socket_path = str(tmp_path / "b.sock")
        rc = []
        daemon = threading.Thread(
            target=lambda: rc.append(
                serve(socket_path, str(tmp_path / "jobs"),
                      max_queue=1, max_concurrent=1, quiet=True)
            ),
        )
        daemon.start()
        try:
            client = ServiceClient(socket_path, timeout=60.0)
            client.wait_ready(timeout=30.0)
            client.submit(_spec())
            with pytest.raises(JobRejected, match="queue full"):
                client.submit(_spec())
        finally:
            try:
                ServiceClient(socket_path, timeout=10.0).shutdown(drain=True)
            except ExplorationError:
                pass
            daemon.join(timeout=120)
        assert rc == [0]
