"""Tests for ASSO, refinement, exhaustive BMF and the factorize façade."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bmf import (
    asso,
    asso_sweep,
    association_candidates,
    bool_product,
    exhaustive_bmf,
    factorize,
    hamming_distance,
    identity_result,
    numeric_weights,
    refine,
    update_B_exact,
    update_C_greedy,
    weighted_error,
)
from repro.errors import FactorizationError


def _rank1_matrix(rng, n, m):
    """A matrix that is exactly factorable at f=1."""
    b = rng.random(n) < 0.5
    c = rng.random(m) < 0.6
    if not b.any():
        b[0] = True
    if not c.any():
        c[0] = True
    return np.outer(b, c)


def _low_rank_matrix(rng, n, m, f):
    B = rng.random((n, f)) < 0.4
    C = rng.random((f, m)) < 0.4
    return bool_product(B, C)


class TestAssociationCandidates:
    def test_diagonal_always_confident(self, rng):
        M = rng.random((20, 5)) < 0.5
        M[:, 2] = True  # make sure no empty column for this check
        cand = association_candidates(M, 1.0)
        for j in range(5):
            if M[:, j].any():
                assert cand[j, j]

    def test_empty_column_no_nan(self):
        M = np.zeros((4, 3), dtype=bool)
        M[:, 0] = True
        cand = association_candidates(M, 0.5)
        assert cand.shape == (3, 3)
        assert not cand[1].any()  # empty column has no confident associations

    def test_threshold_monotone(self, rng):
        M = rng.random((30, 6)) < 0.5
        loose = association_candidates(M, 0.3)
        tight = association_candidates(M, 0.9)
        assert (tight <= loose).all()


class TestAsso:
    def test_rank1_recovered_exactly(self, rng):
        M = _rank1_matrix(rng, 16, 6)
        result = asso_sweep(M, 1)
        assert result.error == 0.0
        np.testing.assert_array_equal(bool_product(result.B, result.C), M)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_error_non_increasing_in_f(self, seed):
        rng = np.random.default_rng(seed)
        M = rng.random((32, 6)) < 0.4
        errors = [asso_sweep(M, f).error for f in range(1, 6)]
        assert all(e2 <= e1 + 1e-9 for e1, e2 in zip(errors, errors[1:]))

    def test_result_shapes(self, rng):
        M = rng.random((16, 5)) < 0.5
        result = asso(M, 3, tau=0.8)
        assert result.B.shape == (16, 3)
        assert result.C.shape == (3, 5)

    def test_error_matches_product(self, rng):
        M = rng.random((32, 6)) < 0.5
        result = asso_sweep(M, 2)
        recomputed = hamming_distance(M, bool_product(result.B, result.C))
        assert result.error == pytest.approx(recomputed)

    def test_zero_matrix(self):
        M = np.zeros((8, 4), dtype=bool)
        result = asso_sweep(M, 2)
        assert result.error == 0.0
        assert not bool_product(result.B, result.C).any()

    def test_all_ones_matrix(self):
        M = np.ones((8, 4), dtype=bool)
        result = asso_sweep(M, 1)
        assert result.error == 0.0

    def test_invalid_degree(self, rng):
        M = rng.random((8, 4)) < 0.5
        with pytest.raises(FactorizationError):
            asso(M, 0)

    def test_empty_sweep_rejected(self, rng):
        M = rng.random((8, 4)) < 0.5
        with pytest.raises(FactorizationError):
            asso_sweep(M, 1, taus=())

    def test_weighted_prefers_heavy_columns(self):
        # Column 3 (MSB) mismatches should be avoided by WQoR even when
        # that costs more unweighted error elsewhere.
        rng = np.random.default_rng(42)
        found_case = False
        for _ in range(50):
            M = rng.random((32, 4)) < 0.5
            w = numeric_weights(4)
            uni = asso_sweep(M, 2)
            wtd = asso_sweep(M, 2, weights=w)
            uni_w_err = weighted_error(M, bool_product(uni.B, uni.C), w)
            wtd_w_err = weighted_error(M, bool_product(wtd.B, wtd.C), w)
            # The weighted run can never be worse under its own metric.
            assert wtd_w_err <= uni_w_err + 1e-9
            if wtd_w_err < uni_w_err:
                found_case = True
        assert found_case, "weighting never changed the outcome in 50 trials"


class TestRefine:
    def test_update_B_exact_is_optimal_vs_bruteforce(self, rng):
        M = rng.random((8, 4)) < 0.5
        C = rng.random((2, 4)) < 0.5
        B = update_B_exact(M, C)
        # brute force every row
        for r in range(8):
            best = min(
                hamming_distance(
                    M[r : r + 1],
                    bool_product(np.array([[(s >> 0) & 1, (s >> 1) & 1]], bool), C),
                )
                for s in range(4)
            )
            got = hamming_distance(
                M[r : r + 1], bool_product(B[r : r + 1], C)
            )
            assert got == best

    def test_refine_never_hurts(self, rng):
        for _ in range(10):
            M = rng.random((16, 5)) < 0.5
            start = asso_sweep(M, 2)
            B, C, err = refine(M, start.B, start.C)
            assert err <= start.error + 1e-9

    def test_update_C_greedy_no_worse(self, rng):
        M = rng.random((16, 4)) < 0.5
        B = rng.random((16, 2)) < 0.5
        C = rng.random((2, 4)) < 0.5
        before = weighted_error(M, bool_product(B, C))
        C2 = update_C_greedy(M, B, C)
        after = weighted_error(M, bool_product(B, C2))
        assert after <= before

    def test_field_algebra_supported(self, rng):
        M = rng.random((16, 4)) < 0.5
        B = rng.random((16, 2)) < 0.5
        C = rng.random((2, 4)) < 0.5
        B2, C2, err = refine(M, B, C, algebra="field")
        assert err == pytest.approx(
            hamming_distance(M, bool_product(B2, C2, "field"))
        )


class TestExhaustive:
    def test_finds_zero_error_on_low_rank(self, rng):
        M = _low_rank_matrix(rng, 8, 3, 2)
        B, C, err = exhaustive_bmf(M, 2)
        assert err == 0.0

    def test_optimal_vs_asso(self, rng):
        for _ in range(5):
            M = rng.random((8, 4)) < 0.5
            _, _, exact = exhaustive_bmf(M, 2)
            heur = asso_sweep(M, 2)
            assert exact <= heur.error + 1e-9

    def test_size_limit(self, rng):
        M = rng.random((4, 8)) < 0.5
        with pytest.raises(FactorizationError):
            exhaustive_bmf(M, 3)  # 24 C bits > 20


class TestFactorizeFacade:
    def test_asso_method(self, rng):
        M = rng.random((32, 6)) < 0.5
        result = factorize(M, 3)
        assert result.f == 3
        assert result.method == "asso"
        assert result.hamming == hamming_distance(M, result.product)

    def test_refine_method_not_worse(self, rng):
        M = rng.random((32, 6)) < 0.5
        plain = factorize(M, 2, method="asso")
        refined = factorize(M, 2, method="asso+refine")
        assert refined.error <= plain.error + 1e-9

    def test_exhaustive_method(self, rng):
        M = rng.random((8, 4)) < 0.5
        result = factorize(M, 2, method="exhaustive")
        assert result.method == "exhaustive"

    def test_field_algebra(self, rng):
        M = rng.random((16, 4)) < 0.5
        result = factorize(M, 2, algebra="field")
        np.testing.assert_array_equal(
            result.product, bool_product(result.B, result.C, "field")
        )

    def test_unknown_method(self, rng):
        M = rng.random((8, 4)) < 0.5
        with pytest.raises(FactorizationError):
            factorize(M, 2, method="magic")

    def test_identity_result_is_exact(self, rng):
        M = rng.random((16, 5)) < 0.5
        result = identity_result(M)
        assert result.error == 0.0
        assert result.f == 5
        np.testing.assert_array_equal(result.product, M)

    def test_weighted_error_recorded(self, rng):
        M = rng.random((16, 4)) < 0.5
        w = numeric_weights(4)
        result = factorize(M, 2, weights=w)
        assert result.error == pytest.approx(
            weighted_error(M, result.product, w)
        )
        assert result.hamming == hamming_distance(M, result.product)
