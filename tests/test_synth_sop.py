"""Tests for cube/cover data structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.synth import Cover, Cube, cover_from_minterms, on_off_dc_split


class TestCube:
    def test_value_outside_mask_rejected(self):
        with pytest.raises(SynthesisError):
            Cube(mask=0b01, value=0b10)

    def test_literal_count(self):
        assert Cube(0b1011, 0b0011).n_literals == 3
        assert Cube(0, 0).n_literals == 0

    def test_covers_minterms(self):
        cube = Cube(0b011, 0b001)  # x0=1, x1=0, x2 free
        got = cube.covers(np.arange(8))
        np.testing.assert_array_equal(got, [False, True, False, False, False, True, False, False])

    def test_full_cube_is_tautology(self):
        assert Cube(0, 0).covers(np.arange(16)).all()

    def test_contains_cube(self):
        big = Cube(0b001, 0b001)  # x0=1
        small = Cube(0b011, 0b001)  # x0=1, x1=0
        assert big.contains_cube(small)
        assert not small.contains_cube(big)

    def test_contains_disjoint(self):
        a = Cube(0b001, 0b001)
        b = Cube(0b001, 0b000)
        assert not a.contains_cube(b)

    def test_without_literal(self):
        cube = Cube(0b11, 0b11)
        raised = cube.without_literal(0)
        assert raised == Cube(0b10, 0b10)

    def test_string_roundtrip(self):
        for text in ["-01", "111", "---", "0-1"]:
            assert Cube.from_string(text).to_string(3) == text

    def test_bad_string_char(self):
        with pytest.raises(SynthesisError):
            Cube.from_string("1x0")

    def test_from_minterm(self):
        c = Cube.from_minterm(5, 3)
        assert c.covers_one(5)
        assert sum(c.covers(np.arange(8))) == 1


class TestCover:
    def test_evaluate_or_of_cubes(self):
        cover = Cover(2, [Cube.from_string("1-"), Cube.from_string("-1")])
        np.testing.assert_array_equal(cover.evaluate(), [False, True, True, True])

    def test_literal_total(self):
        cover = Cover(3, [Cube.from_string("1-0"), Cube.from_string("111")])
        assert cover.n_literals == 5

    def test_implements_with_dc(self):
        on = np.array([False, True, False, True])
        dc = np.array([True, False, False, False])
        cover = Cover(2, [Cube.from_string("--")])  # always 1
        assert not cover.implements(on)
        cover2 = Cover(2, [Cube.from_string("1-")])  # x0
        assert cover2.implements(on)
        assert cover2.implements(on, dc)

    def test_cover_from_minterms(self):
        cover = cover_from_minterms(3, [0, 7])
        table = cover.evaluate()
        assert table[0] and table[7]
        assert table.sum() == 2

    def test_empty_cover_is_zero(self):
        assert not Cover(3).evaluate().any()


class TestOnOffDcSplit:
    def test_split_without_dc(self):
        table = np.array([True, False, True, False])
        on, off, dc = on_off_dc_split(table)
        np.testing.assert_array_equal(on, [0, 2])
        np.testing.assert_array_equal(off, [1, 3])
        assert dc.size == 0

    def test_split_with_dc(self):
        table = np.array([True, False, True, False])
        dc_mask = np.array([False, True, False, False])
        on, off, dc = on_off_dc_split(table, dc_mask)
        np.testing.assert_array_equal(on, [0, 2])
        np.testing.assert_array_equal(off, [3])
        np.testing.assert_array_equal(dc, [1])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 999))
    def test_partition_property(self, seed):
        rng = np.random.default_rng(seed)
        table = rng.random(16) < 0.5
        dc_mask = rng.random(16) < 0.2
        on, off, dc = on_off_dc_split(table, dc_mask)
        combined = np.sort(np.concatenate([on, off, dc]))
        np.testing.assert_array_equal(combined, np.arange(16))
