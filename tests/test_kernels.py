"""Kernel backends: byte-identity vs the numpy oracle (DESIGN.md
"Kernel backends").

Every kernel family is driven against :mod:`repro.kernels.reference` on
randomized packed inputs including the tail-bit edge cases
(``n % 64`` in {0, 1, 63}), the nopython bodies are exercised as plain
Python (the conditional ``njit`` decorator makes them callable without
numba), and full ``explore()`` trajectories are asserted byte-identical
between ``--kernels jit`` and ``--kernels numpy`` for full+lazy
strategies on resident, streaming, and sharded execution.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from explore_fixtures import explorer_config, trajectory_key
from repro.circuit.simulate import (
    _bit_count_lut,
    bit_count,
    pack_bits,
    popcount_words,
    tail_mask,
    words_for,
)
from repro.core.bmf.asso import asso
from repro.core.bmf.packed import (
    candidate_gains_masks,
    row_masks,
    weight_table,
)
from repro.core.explorer import ExplorerConfig, explore
from repro.errors import ExplorationError
from repro.kernels import (
    KERNEL_CHOICES,
    KERNELS_ENV,
    active_backend,
    get_backend,
    resolve_backend,
    use_backend,
)
from repro.kernels import jit as jit_impl
from repro.kernels import reference as ref_impl

#: Pattern counts hitting every tail-word shape: full words, a 1-bit
#: tail, a 63-bit tail, and the single-word degenerates.
TAIL_NS = (1, 63, 64, 65, 127, 128, 191)


def _packed(rng, rows, n):
    """Random packed (rows, words_for(n)) matrix with a clean tail."""
    w = words_for(n)
    words = rng.integers(0, 1 << 64, size=(rows, w), dtype=np.uint64)
    words[:, -1] &= tail_mask(n)
    return words


# ----------------------------------------------------------------------
# Satellite: bit_count fast path equivalence (np.bitwise_count vs LUT)
# ----------------------------------------------------------------------
class TestBitCountEquivalence:
    @pytest.mark.parametrize("n", TAIL_NS)
    def test_lut_matches_bitwise_count(self, n):
        if not hasattr(np, "bitwise_count"):
            pytest.skip("numpy < 2.0: no np.bitwise_count to compare")
        words = _packed(np.random.default_rng(n), 5, n)
        lut = _bit_count_lut(words)
        fast = np.bitwise_count(words).astype(np.int64)
        np.testing.assert_array_equal(lut, fast)
        assert lut.dtype == fast.dtype == np.int64

    @pytest.mark.parametrize(
        "dtype", [np.uint64, np.uint32, np.uint8, np.int64]
    )
    def test_dtypes_converted_identically(self, dtype):
        # bit_count converts to uint64 by value; both paths must agree
        # through the conversion for every input dtype.
        vals = np.array([0, 1, 2, 127, 200], dtype=dtype)
        expected = np.array([bin(int(v)).count("1") for v in vals])
        np.testing.assert_array_equal(bit_count(vals), expected)
        as_u64 = np.ascontiguousarray(vals, dtype=np.uint64)
        np.testing.assert_array_equal(_bit_count_lut(as_u64), expected)

    def test_empty_and_shapes(self):
        empty = np.zeros((0,), dtype=np.uint64)
        assert bit_count(empty).shape == (0,)
        assert _bit_count_lut(empty).shape == (0,)
        two_d = np.full((2, 3), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        np.testing.assert_array_equal(bit_count(two_d), np.full((2, 3), 64))
        np.testing.assert_array_equal(_bit_count_lut(two_d), bit_count(two_d))


# ----------------------------------------------------------------------
# Satellite bugfix: popcount_words validates n against the array size
# ----------------------------------------------------------------------
class TestPopcountWordsValidation:
    def test_too_large_n_raises(self):
        words = np.array([0xFF, 0xFF], dtype=np.uint64)
        with pytest.raises(ValueError, match="packed words"):
            popcount_words(words, n=129)

    def test_too_large_n_raises_2d(self):
        words = np.full((3, 2), 0xFF, dtype=np.uint64)
        with pytest.raises(ValueError, match="packed words"):
            popcount_words(words, n=200)

    def test_negative_n_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            popcount_words(np.array([1], dtype=np.uint64), n=-1)

    def test_consistent_n_still_counts(self):
        words = np.array([0xFFFFFFFFFFFFFFFF, 0x7], dtype=np.uint64)
        assert popcount_words(words, n=128) == 67
        assert popcount_words(words, n=66) == 66
        assert popcount_words(words) == 67
        assert popcount_words(np.zeros(0, dtype=np.uint64), n=0) == 0


# ----------------------------------------------------------------------
# K1: fused popcount reductions
# ----------------------------------------------------------------------
class TestPopcountKernels:
    @pytest.mark.parametrize("n", TAIL_NS)
    def test_jit_entry_points_match_oracle(self, n):
        rng = np.random.default_rng(n)
        a = _packed(rng, 6, n)
        b = _packed(rng, 6, n)
        assert jit_impl.popcount_reduce(a) == ref_impl.popcount_reduce(a)
        np.testing.assert_array_equal(
            jit_impl.popcount_rows(a), ref_impl.popcount_rows(a)
        )
        np.testing.assert_array_equal(
            jit_impl.popcount_xor_rows(a, b), ref_impl.popcount_xor_rows(a, b)
        )

    @pytest.mark.parametrize("n", (1, 63, 64, 65))
    def test_nopython_bodies_match_oracle(self, n):
        # Without numba the @njit bodies run as plain Python — slow but
        # identical, which is exactly what the jit CI leg relies on.
        rng = np.random.default_rng(100 + n)
        a = _packed(rng, 3, n)
        b = _packed(rng, 3, n)
        with np.errstate(over="ignore"):  # SWAR multiply wraps by design
            assert int(jit_impl._popcount_total(a.reshape(-1))) == (
                ref_impl.popcount_reduce(a)
            )
            out = np.empty(3, dtype=np.int64)
            jit_impl._popcount_rows(a, out)
            np.testing.assert_array_equal(out, ref_impl.popcount_rows(a))
            jit_impl._popcount_xor_rows(a, b, out)
            np.testing.assert_array_equal(
                out, ref_impl.popcount_xor_rows(a, b)
            )

    def test_kernels_accept_readonly_views(self):
        # The sanitizer hands out frozen arrays; kernels must not write
        # their inputs.
        a = _packed(np.random.default_rng(0), 4, 130)
        b = _packed(np.random.default_rng(1), 4, 130)
        a.setflags(write=False)
        b.setflags(write=False)
        for impl in (ref_impl, jit_impl):
            impl.popcount_reduce(a)
            impl.popcount_rows(a)
            impl.popcount_xor_rows(a, b)
            impl.word_partials(np.arange(70.0), 70)


# ----------------------------------------------------------------------
# K2: incremental gain scoring vs the full-recompute oracle
# ----------------------------------------------------------------------
def _random_scoring_problem(rng, n_rows=96, m=6, n_cand=10):
    M = rng.random((n_rows, m)) < 0.35
    cand = rng.random((n_cand, m)) < 0.4
    w = rng.random(m) + 0.5
    return row_masks(M), row_masks(cand), weight_table(w)


class TestGainScorer:
    @pytest.mark.parametrize("seed", range(4))
    def test_descent_levels_byte_identical(self, seed):
        rng = np.random.default_rng(seed)
        M_masks, cand_masks, wtab = _random_scoring_problem(rng)
        bonus, penalty = 1.0, 1.25
        numpy_b, jit_b = get_backend("numpy"), get_backend("jit")
        ref = numpy_b.make_gain_scorer(
            M_masks, cand_masks, wtab, bonus, penalty, 6
        )
        inc = jit_b.make_gain_scorer(
            M_masks, cand_masks, wtab, bonus, penalty, 6
        )
        for _ in range(8):
            t_ref, u_ref = ref.score()
            t_inc, u_inc = inc.score()
            np.testing.assert_array_equal(t_ref, t_inc)
            np.testing.assert_array_equal(u_ref, u_inc)
            best = int(np.argmax(t_ref))
            if t_ref[best] <= 0:
                break
            use = u_ref[:, best]
            ref.apply(use, best)
            inc.apply(use, best)

    def test_oracle_scorer_is_candidate_gains_masks(self):
        rng = np.random.default_rng(7)
        M_masks, cand_masks, wtab = _random_scoring_problem(rng)
        scorer = get_backend("numpy").make_gain_scorer(
            M_masks, cand_masks, wtab, 1.0, 1.0, 6
        )
        totals, usage = scorer.score()
        full_mask = np.uint64((1 << 6) - 1)
        good = M_masks & ~np.uint64(0)
        bad = ~M_masks & full_mask
        t2, u2 = candidate_gains_masks(good, bad, cand_masks, wtab, 1.0, 1.0)
        np.testing.assert_array_equal(totals, t2)
        np.testing.assert_array_equal(usage, u2)

    @pytest.mark.parametrize("seed", range(3))
    def test_asso_factorization_identical_across_backends(self, seed):
        rng = np.random.default_rng(40 + seed)
        M = rng.random((128, 6)) < 0.3
        w = rng.random(6) + 0.25
        with use_backend(get_backend("numpy")):
            r_np = asso(M, 4, weights=w)
        with use_backend(get_backend("jit")):
            r_jit = asso(M, 4, weights=w)
        np.testing.assert_array_equal(r_np.B, r_jit.B)
        np.testing.assert_array_equal(r_np.C, r_jit.C)
        assert r_np.error == r_jit.error and r_np.tau == r_jit.tau


# ----------------------------------------------------------------------
# K3: n-ary gate sweeps
# ----------------------------------------------------------------------
class TestNarySweep:
    @pytest.mark.parametrize("arity", (1, 2, 3, 4))
    @pytest.mark.parametrize(
        "ufunc", (np.bitwise_and, np.bitwise_or, np.bitwise_xor)
    )
    def test_fallback_matches_oracle(self, arity, ufunc):
        rng = np.random.default_rng(arity)
        values = rng.integers(0, 1 << 64, size=(9, 5), dtype=np.uint64)
        fanins = rng.integers(0, 9, size=(7, arity), dtype=np.int64)
        for invert in (False, True):
            ref = ref_impl.nary_sweep(values, fanins, ufunc, invert)
            jit = jit_impl.nary_sweep(values, fanins, ufunc, invert)
            np.testing.assert_array_equal(ref, jit)
            assert jit.dtype == np.uint64

    def test_nopython_body_matches_oracle(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1 << 64, size=(6, 3), dtype=np.uint64)
        fanins = rng.integers(0, 6, size=(4, 3), dtype=np.int64)
        for code, ufunc in (
            (0, np.bitwise_and), (1, np.bitwise_or), (2, np.bitwise_xor)
        ):
            for invert in (False, True):
                out = np.empty((4, 3), dtype=np.uint64)
                jit_impl._nary_sweep(values, fanins, code, invert, out)
                np.testing.assert_array_equal(
                    out, ref_impl.nary_sweep(values, fanins, ufunc, invert)
                )

    def test_inputs_left_untouched(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1 << 64, size=(5, 4), dtype=np.uint64)
        fanins = np.array([[0, 1], [2, 2]], dtype=np.int64)
        values.setflags(write=False)
        jit_impl.nary_sweep(values, fanins, np.bitwise_and, True)


# ----------------------------------------------------------------------
# K4: per-packed-word QoR partial sums (pairwise order replication)
# ----------------------------------------------------------------------
class TestWordPartials:
    @pytest.mark.parametrize("n", TAIL_NS)
    def test_fallback_matches_oracle(self, n):
        terms = np.random.default_rng(n).lognormal(0.0, 4.0, n)
        np.testing.assert_array_equal(
            jit_impl.word_partials(terms, n), ref_impl.word_partials(terms, n)
        )

    @pytest.mark.parametrize("n", TAIL_NS)
    def test_nopython_body_replicates_numpy_pairwise(self, n):
        # Wildly mixed magnitudes: any deviation from numpy's pairwise
        # association order for a 64-element row shows up in the last
        # ulp and fails the exact comparison.
        terms = np.random.default_rng(1000 + n).lognormal(0.0, 6.0, n)
        got = jit_impl._word_partials(terms, words_for(n))
        np.testing.assert_array_equal(got, ref_impl.word_partials(terms, n))

    def test_zero_padding_is_exact(self):
        terms = np.ones(65)
        out = ref_impl.word_partials(terms, 65)
        np.testing.assert_array_equal(out, [64.0, 1.0])
        np.testing.assert_array_equal(jit_impl.word_partials(terms, 65), out)


# ----------------------------------------------------------------------
# Backend selection: precedence, fallback, validation
# ----------------------------------------------------------------------
class TestSelection:
    @pytest.fixture(autouse=True)
    def _clear_env(self, monkeypatch):
        # These tests assert specific backends; the CI jit leg's global
        # REPRO_KERNELS=jit override must not leak in.
        monkeypatch.delenv(KERNELS_ENV, raising=False)

    def test_env_overrides_request(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert resolve_backend("jit").name == "numpy"
        monkeypatch.setenv(KERNELS_ENV, "jit")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # expected numba-missing notice
            assert resolve_backend("numpy").name == "jit"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel selection"):
            resolve_backend("cuda")
        monkeypatch.setenv(KERNELS_ENV, "cuda")
        with pytest.raises(ValueError, match=KERNELS_ENV):
            resolve_backend("numpy")

    def test_config_validates_kernels(self):
        with pytest.raises(ExplorationError, match="kernel backend"):
            ExplorerConfig(kernels="cuda")
        for choice in KERNEL_CHOICES:
            assert ExplorerConfig(kernels=choice).kernels == choice

    def test_auto_without_numba_warns_once_and_uses_numpy(self, monkeypatch):
        import repro.kernels as K

        if K.numba_available():
            pytest.skip("numba installed: auto resolves to jit")
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        monkeypatch.setattr(K, "_WARNED_FALLBACK", False)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            assert resolve_backend("auto").name == "numpy"
            assert resolve_backend("auto").name == "numpy"
        fallback = [w for w in rec if "numba is not installed" in str(w.message)]
        assert len(fallback) == 1

    def test_active_backend_defaults_to_oracle(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert active_backend().name == "numpy"
        with use_backend(get_backend("jit")):
            assert active_backend().name == "jit"
        assert active_backend().name == "numpy"

    def test_call_counters_accumulate(self):
        backend = get_backend("jit")
        before = backend.snapshot()
        backend.popcount_reduce(np.array([3], dtype=np.uint64))
        backend.word_partials(np.ones(4), 4)
        delta = backend.delta(before)
        assert delta["popcount"] == 1 and delta["partials"] == 1
        assert delta["gains"] == 0 and delta["sweep"] == 0


# ----------------------------------------------------------------------
# End-to-end: explore() trajectories byte-identical across backends
# ----------------------------------------------------------------------
def _explore_key(profiled, **overrides):
    circuit, windows, profiles = profiled
    config = explorer_config(
        max_iterations=4, estimate_area=False, **overrides
    )
    result = explore(circuit, config, windows=windows, profiles=profiles)
    assert result.runtime_stats.kernel_backend in ("numpy", "jit")
    return trajectory_key(result), result


class TestExploreByteIdentity:
    @pytest.fixture(autouse=True)
    def _clear_env(self, monkeypatch):
        # The CI jit leg exports REPRO_KERNELS=jit globally; these tests
        # pick their backends explicitly, so drop the override.
        monkeypatch.delenv(KERNELS_ENV, raising=False)

    @pytest.mark.parametrize("strategy", ("full", "lazy"))
    def test_resident(self, butterfly_profiled, strategy):
        key_np, r_np = _explore_key(
            butterfly_profiled, strategy=strategy, kernels="numpy"
        )
        key_jit, r_jit = _explore_key(
            butterfly_profiled, strategy=strategy, kernels="jit"
        )
        assert key_np == key_jit
        assert r_np.n_evaluations == r_jit.n_evaluations
        assert r_np.runtime_stats.kernel_backend == "numpy"
        assert r_jit.runtime_stats.kernel_backend == "jit"
        assert r_jit.runtime_stats.n_kernel_sweeps > 0
        assert r_jit.runtime_stats.n_kernel_partials > 0

    @pytest.mark.parametrize("strategy", ("full", "lazy"))
    def test_streaming(self, butterfly_profiled, strategy):
        key_np, _ = _explore_key(
            butterfly_profiled, strategy=strategy, kernels="numpy",
            chunk_words=3,
        )
        key_jit, _ = _explore_key(
            butterfly_profiled, strategy=strategy, kernels="jit",
            chunk_words=3,
        )
        assert key_np == key_jit

    def test_sharded(self, butterfly_profiled):
        key_np, _ = _explore_key(
            butterfly_profiled, kernels="numpy", chunk_words=3, shard_jobs=2
        )
        key_jit, _ = _explore_key(
            butterfly_profiled, kernels="jit", chunk_words=3, shard_jobs=2
        )
        assert key_np == key_jit

    def test_resident_matches_streaming_under_jit(self, butterfly_profiled):
        key_res, _ = _explore_key(butterfly_profiled, kernels="jit")
        key_str, _ = _explore_key(
            butterfly_profiled, kernels="jit", chunk_words=3
        )
        assert key_res == key_str

    def test_env_override_reaches_stats(self, butterfly_profiled, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "jit")
        _, result = _explore_key(butterfly_profiled, kernels="numpy")
        assert result.runtime_stats.kernel_backend == "jit"

    def test_summary_reports_kernel_backend(self, butterfly_profiled):
        _, result = _explore_key(butterfly_profiled, kernels="jit")
        assert "kernels=jit" in result.runtime_stats.summary()
