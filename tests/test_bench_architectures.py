"""Functional tests for the alternative arithmetic architectures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    carry_lookahead_adder,
    carry_select_adder,
    ripple_adder,
    array_multiplier,
    wallace_multiplier,
)
from repro.circuit import equivalent, simulate_patterns, truth_table
from repro.synth import static_timing, tech_map


def _eval_word(circuit, assignments):
    specs = {w.name: w for w in circuit.attrs["input_words"]}
    pattern = np.zeros((1, circuit.n_inputs), dtype=np.uint8)
    for name, value in assignments.items():
        for bit, port in enumerate(specs[name].indices):
            pattern[0, port] = (value >> bit) & 1
    bits = simulate_patterns(circuit, pattern)
    return int(circuit.attrs["words"][0].to_ints(bits)[0])


class TestCarryLookahead:
    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_adds_correctly(self, a, b):
        assert _eval_word(carry_lookahead_adder(8), {"a": a, "b": b}) == a + b

    def test_equivalent_to_ripple(self):
        res = equivalent(carry_lookahead_adder(6), ripple_adder(6))
        assert res.equivalent and res.proven

    def test_shallower_than_ripple(self):
        width = 16
        d_cla = static_timing(
            tech_map(carry_lookahead_adder(width), match_macros=False)
        ).delay_ns
        d_rip = static_timing(
            tech_map(ripple_adder(width), match_macros=False)
        ).delay_ns
        assert d_cla < d_rip

    def test_block_size_one(self):
        res = equivalent(
            carry_lookahead_adder(5, block=1), ripple_adder(5)
        )
        assert res.equivalent and res.proven


class TestCarrySelect:
    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_adds_correctly(self, a, b):
        assert _eval_word(carry_select_adder(8), {"a": a, "b": b}) == a + b

    def test_equivalent_to_ripple(self):
        res = equivalent(carry_select_adder(6, block=3), ripple_adder(6))
        assert res.equivalent and res.proven

    def test_uneven_final_block(self):
        res = equivalent(carry_select_adder(7, block=4), ripple_adder(7))
        assert res.equivalent and res.proven


class TestWallace:
    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    def test_multiplies_correctly(self, a, b):
        assert _eval_word(wallace_multiplier(6), {"a": a, "b": b}) == a * b

    def test_equivalent_to_array(self):
        res = equivalent(wallace_multiplier(5), array_multiplier(5))
        assert res.equivalent and res.proven

    def test_shallower_than_array(self):
        width = 8
        d_wal = static_timing(
            tech_map(wallace_multiplier(width), match_macros=False)
        ).delay_ns
        d_arr = static_timing(
            tech_map(array_multiplier(width), match_macros=False)
        ).delay_ns
        assert d_wal < d_arr

    def test_width_one(self):
        c = wallace_multiplier(1)
        tt = truth_table(c)
        assert tt.shape == (4, 2)
        for r in range(4):
            a, b = r & 1, (r >> 1) & 1
            assert int(tt[r, 0]) + 2 * int(tt[r, 1]) == a * b
