"""Sharded streaming executor vs. serial streaming vs. resident execution.

The contract under test (DESIGN.md "Parallel streaming"): fanning the
streaming engine's chunk loop across shard workers — and/or caching
per-chunk base slices across iterations — changes **nothing** observable:
per-candidate error floats, dirty-row sets, committed outputs, and whole
exploration trajectories are byte-identical to serial streaming (and
therefore to resident execution) for every shard count and cache
capacity, including mid-run commits that invalidate cached chunk epochs.
Shard counts sweep the shapes that break naive fan-out: one shard, two,
a prime count, and more shards than chunks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.circuit import CircuitBuilder, random_input_words
from repro.circuit.simulate import plan_chunks, words_for
from repro.core.engine import CompiledEvaluator, make_evaluator
from repro.core.explorer import ExplorerConfig, explore
from repro.core.profile import profile_windows
from repro.core.qor import QoREvaluator, QoRSpec
from repro.core.streaming import (
    ChunkBaseCache,
    ShardWorker,
    StreamingEvaluator,
    auto_chunk_words,
)
from repro.errors import ExplorationError, SimulationError
from repro.partition import decompose
from repro.runtime import RuntimeStats, effective_jobs
from repro.runtime.executor import (
    ScanShard,
    StreamContext,
    merge_accumulator,
    new_accumulator,
    plan_shards,
)

from explore_fixtures import trajectory_key

#: Shard counts every identity test sweeps: in-process, two, a prime,
#: and more shards than the chunk plan holds.
SHARD_COUNTS = (1, 2, 3, 97)


class TestJobsResolution:
    def test_effective_jobs_policy(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(0) >= 1
        assert effective_jobs(-1) >= 1
        # Item clamp: never more workers than work items.
        assert effective_jobs(8, n_items=3) == 3
        assert effective_jobs(2, n_items=10) == 2
        assert effective_jobs(4, n_items=0) == 1

    def test_plan_shards_contiguous_balanced(self):
        items = list(range(10))
        shards = plan_shards(items, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert [x for s in shards for x in s] == items  # contiguity
        # More shards than items: one item per shard, no empties.
        shards = plan_shards(items[:2], 97)
        assert shards == [(0,), (1,)]
        assert plan_shards([], 4) == []

    def test_merge_accumulator_algebra(self):
        a, b = new_accumulator(), new_accumulator()
        a["rows"] |= {1}
        a["slices"][0] = [(0, 2, np.ones(2))]
        a["deltas"][1] = 3
        b["rows"] |= {2}
        b["slices"][0] = [(2, 4, np.zeros(2))]
        b["slices"][1] = [(0, 2, np.ones(2))]
        b["deltas"][1] = -1
        b["deltas"][2] = 5
        merge_accumulator(a, b)
        assert a["rows"] == {1, 2}
        assert [s[:2] for s in a["slices"][0]] == [(0, 2), (2, 4)]
        assert list(a["slices"][1][0][:2]) == [0, 2]
        assert a["deltas"] == {1: 2, 2: 5}


class TestAutoChunkWordsBudgetPerWorker:
    def test_single_worker_unchanged(self):
        assert auto_chunk_words(100, 10**9, 64) is None
        assert auto_chunk_words(100, 1, 64) == 1
        assert auto_chunk_words(100, 16 * 100 * 7, 64) == 7

    def test_budget_divides_across_shards(self):
        """Regression (J=4): with J shard workers the sample-matrix
        working set is ~J x the per-process bound, so the budget must
        divide across the shards."""
        budget = 16 * 100 * 8  # fits 8 chunk words at one worker
        assert auto_chunk_words(100, budget, 64) == 8
        assert auto_chunk_words(100, budget, 64, jobs=2) == 4
        assert auto_chunk_words(100, budget, 64, jobs=4) == 2
        assert auto_chunk_words(100, budget, 64, jobs=16) == 1  # floor

    def test_cache_slices_count_against_the_budget(self):
        budget = 16 * 100 * 8
        # Each cached slice is one more chunk of base state per process.
        assert auto_chunk_words(100, budget, 64, cache_chunks=2) == 4
        assert auto_chunk_words(100, budget, 64, jobs=2, cache_chunks=2) == 2

    def test_multi_worker_never_falls_back_to_resident(self):
        # Budget covers the resident matrix, but only the streaming
        # engine shards — a multi-worker request always chunks.
        resident = 8 * 100 * 64
        assert auto_chunk_words(100, resident, 64) is None
        assert auto_chunk_words(100, resident, 64, jobs=4) == 100 * 64 // 800

    def test_generous_budget_keeps_enough_chunks_to_shard(self):
        # A huge budget must not collapse the plan to fewer chunks than
        # workers — that would silently drop the requested parallelism.
        assert auto_chunk_words(100, 10**12, 64, jobs=4) == 16
        assert auto_chunk_words(100, 10**12, 64, jobs=2) == 32
        assert auto_chunk_words(100, 10**12, 7, jobs=4) == 2


class TestChunkBaseCache:
    def test_pinned_admission_and_bytes(self):
        """Admission pins the first `capacity` chunks: under the cyclic
        chunk walks of scan/commit passes LRU rotation would yield zero
        hits whenever capacity < n_chunks, so a full cache refuses new
        chunks instead of evicting pinned ones."""
        cache = ChunkBaseCache(2)
        a, b, c = (np.zeros((4, 2), dtype=np.uint64) for _ in range(3))
        cache.put(0, 0, a)
        cache.put(2, 0, b)
        cache.put(4, 0, c)  # full: streamed through, not admitted
        assert cache.get(4, 0) is None
        assert cache.get(0, 0) is a and cache.get(2, 0) is b
        assert cache.nbytes == a.nbytes + b.nbytes
        assert cache.holds_array(a) and not cache.holds_array(c)
        # Refreshing an admitted chunk replaces its slice in place.
        cache.put(0, 1, c)
        assert cache.get(0, 1) is c
        assert cache.nbytes == b.nbytes + c.nbytes

    def test_epoch_watermark_invalidates(self):
        cache = ChunkBaseCache(2)
        a = np.zeros((4, 2), dtype=np.uint64)
        cache.put(0, 3, a)
        assert cache.get(0, 3) is a
        assert cache.get(0, 4) is None  # dirtied after computation
        assert len(cache) == 0  # stale entries evict on sight

    def test_retag_keeps_entry_servable(self):
        cache = ChunkBaseCache(1)
        a = np.zeros((4, 2), dtype=np.uint64)
        cache.put(0, 0, a)
        cache.retag(0, 5)
        assert cache.get(0, 5) is a

    def test_drop_outside_repins_to_new_range(self):
        """A worker handed a different shard range evicts unreachable
        chunks so its slots serve the range it actually walks."""
        cache = ChunkBaseCache(2)
        a, b = (np.zeros((4, 2), dtype=np.uint64) for _ in range(2))
        cache.put(0, 0, a)
        cache.put(2, 0, b)
        cache.drop_outside({2, 4})
        assert cache.get(0, 0) is None and cache.get(2, 0) is b
        assert cache.nbytes == b.nbytes
        c = np.zeros((4, 2), dtype=np.uint64)
        cache.put(4, 0, c)  # freed slot admits the new range's chunk
        assert cache.get(4, 0) is c

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            ChunkBaseCache(0)


def _random_circuit(rng, n_inputs=6, n_gates=40, n_outputs=5):
    b = CircuitBuilder("fuzz")
    sigs = [b.input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        op = rng.integers(0, 8)
        picks = rng.choice(len(sigs), size=3, replace=True)
        x, y, z = (sigs[int(p)] for p in picks)
        sigs.append(
            [
                lambda: b.and_(x, y),
                lambda: b.or_(x, y),
                lambda: b.xor_(x, y),
                lambda: b.not_(x),
                lambda: b.mux(x, y, z),
                lambda: b.nand_(x, y),
                lambda: b.nor_(x, y),
                lambda: b.xnor_(x, y),
            ][int(op)]()
        )
    for i, s in enumerate(sigs[-n_outputs:]):
        b.output(f"o{i}", s)
    return b.build()


def _shard_scan_in_process(stream, requests, metric="mre"):
    """Emulate the sharded path without a pool: a fresh ShardWorker per
    shard (cold caches, pickled-equivalent context), merged in shard
    order — exactly what ProcessShardExecutor does across processes."""
    context = StreamContext(
        circuit=stream.circuit,
        windows=tuple(stream.windows),
        input_words=stream.input_words,
        n_samples=stream.n,
        chunk_words=stream._chunk_words,
        exact_outputs=stream.exact_outputs,
        cache_chunks=stream._cache_chunks,
    )
    results = {}
    for n_shards in SHARD_COUNTS[1:]:
        shard_chunks = plan_shards(stream._chunks, n_shards)
        accs = [
            [new_accumulator() for _ in tables] for _, tables in requests
        ]
        for chs in shard_chunks:
            worker = ShardWorker(context)
            outcome = worker.run(
                ScanShard(
                    chunks=chs,
                    requests=tuple(
                        (i, tuple(np.asarray(t, dtype=bool) for t in ts))
                        for i, ts in requests
                    ),
                    committed=tuple(stream._committed.items()),
                    epoch=stream._epoch,
                    chunk_epochs=tuple(stream._chunk_epoch.items()),
                    metric=metric,
                )
            )
            for acc_list, add_list in zip(accs, outcome.accumulators):
                for acc, add in zip(acc_list, add_list):
                    merge_accumulator(acc, add)
        results[n_shards] = accs
    return results


class TestShardTaskIdentity:
    def test_shard_accumulators_merge_to_serial_floats(self, rng):
        """ShardWorker outcomes, merged across every shard split, yield
        the exact floats and dirty rows of the serial streaming scan and
        the resident delta-QoR path — including after a commit that
        invalidates cached chunk epochs."""
        circuit = _random_circuit(rng)
        windows = decompose(circuit, 5, 5)
        n = 300  # words_for = 5 -> chunk_words=2 gives 3 chunks
        words = random_input_words(circuit.n_inputs, n, rng)
        res = CompiledEvaluator(circuit, windows, words, n)
        stream = StreamingEvaluator(circuit, windows, words, n, chunk_words=2)
        q_res = QoREvaluator(circuit, res.exact_outputs, n)
        q_str = QoREvaluator(circuit, stream.exact_outputs, n)
        q_res.rebase(res.exact_outputs)
        q_str.rebase(stream.exact_outputs)
        for round_ in range(2):
            requests = [
                (
                    w.index,
                    [
                        rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
                        for _ in range(2)
                    ],
                )
                for w in windows
            ]
            serial = stream.scan_errors(requests, q_str)
            for (index, tables), got in zip(requests, serial):
                expect = res.preview_batch_delta(index, tables)
                for (err, rows), (out, dirty) in zip(got, expect):
                    assert err == q_res.evaluate_delta(out, dirty)
                    assert rows == tuple(sorted(dirty))
            by_shards = _shard_scan_in_process(stream, requests)
            for n_shards, accs in by_shards.items():
                for (index, tables), got, acc_list in zip(
                    requests, serial, accs
                ):
                    for (err, rows), acc in zip(got, acc_list):
                        assert rows == tuple(sorted(acc["rows"])), n_shards
                        payload = {
                            wpos: q_str.splice_partials(wpos, slices)
                            for wpos, slices in acc["slices"].items()
                        }
                        assert err == q_str.evaluate_spliced(payload), n_shards
            # Mid-run commit: dirties chunk epochs, reshapes schedules.
            w = windows[int(rng.integers(0, len(windows)))]
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            res.commit(w.index, table)
            stream.commit(w.index, table)
            q_res.rebase(res.current_outputs())
            q_str.rebase(stream.current_outputs())

    @pytest.mark.parametrize("metric", ["hamming"])
    def test_shard_hamming_deltas_merge_exactly(self, metric, rng):
        circuit = butterfly(5)
        windows = decompose(circuit, 6, 6)
        n = 300
        words = random_input_words(circuit.n_inputs, n, rng)
        stream = StreamingEvaluator(circuit, windows, words, n, chunk_words=2)
        qor = QoREvaluator(circuit, stream.exact_outputs, n, QoRSpec(metric))
        qor.rebase(stream.exact_outputs)
        requests = [
            (w.index, [~w.table(circuit)]) for w in windows
        ]
        serial = stream.scan_errors(requests, qor)
        base_tot = qor.base_row_hamming()
        for n_shards, accs in _shard_scan_in_process(
            stream, requests, metric
        ).items():
            for got, acc_list in zip(serial, accs):
                for (err, rows), acc in zip(got, acc_list):
                    payload = {
                        row: int(base_tot[row]) + d
                        for row, d in acc["deltas"].items()
                    }
                    assert err == qor.evaluate_spliced_hamming(payload)
                    assert rows == tuple(sorted(acc["rows"]))




class TestShardedTrajectoryIdentity:
    @pytest.mark.parametrize("strategy", ["full", "lazy"])
    @pytest.mark.parametrize("shard_jobs", SHARD_COUNTS)
    def test_trajectories_byte_identical(
        self, strategy, shard_jobs, butterfly_profiled
    ):
        """Full explore() runs agree between serial streaming and every
        process-sharded configuration, bit for bit — commits interleave
        with sharded scans on every iteration, so this also exercises
        cross-task committed-state sync and epoch invalidation."""
        circuit, windows, profiles = butterfly_profiled
        n = 700  # words_for = 11; chunk_words=3 -> 4 chunks
        base = dict(
            n_samples=n, max_inputs=8, max_outputs=8, strategy=strategy,
            chunk_words=3,
        )
        serial = explore(
            circuit, ExplorerConfig(**base), windows=windows, profiles=profiles
        )
        sharded = explore(
            circuit,
            ExplorerConfig(shard_jobs=shard_jobs, **base),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(sharded) == trajectory_key(serial)
        assert sharded.n_evaluations == serial.n_evaluations
        resident = explore(
            circuit,
            ExplorerConfig(n_samples=n, max_inputs=8, max_outputs=8,
                           strategy=strategy),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(sharded) == trajectory_key(resident)
        stats = sharded.runtime_stats
        assert stats.shard_jobs == shard_jobs
        assert stats.n_shard_tasks > 0

    def test_cone_epoch_cache_preserves_trajectory(self, butterfly_profiled):
        """Cross-iteration chunk caching (serial and sharded) must not
        move a single trajectory float while cutting base-pass work."""
        circuit, windows, profiles = butterfly_profiled
        n = 700
        base = dict(n_samples=n, max_inputs=8, max_outputs=8, chunk_words=3)
        plain = explore(
            circuit, ExplorerConfig(**base), windows=windows, profiles=profiles
        )
        cached = explore(
            circuit,
            ExplorerConfig(chunk_cache_chunks=4, **base),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(cached) == trajectory_key(plain)
        stats = cached.runtime_stats
        assert stats.n_chunk_cache_hits > 0
        # The cache exists to cut base passes: with every chunk resident
        # it must beat the cache-off run by a wide margin.
        assert stats.n_chunk_passes < plain.runtime_stats.n_chunk_passes
        both = explore(
            circuit,
            ExplorerConfig(shard_jobs=2, chunk_cache_chunks=4, **base),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(both) == trajectory_key(plain)

    def test_cached_memory_stays_within_documented_bound(
        self, butterfly_profiled
    ):
        """Peak per-process sample-matrix bytes obey the
        (2 + cache_chunks) x 8 x n_nodes x chunk_words bound."""
        circuit, windows, profiles = butterfly_profiled
        n = 1024
        cw, cache = 2, 3
        result = explore(
            circuit,
            ExplorerConfig(
                n_samples=n, max_inputs=8, max_outputs=8,
                chunk_words=cw, chunk_cache_chunks=cache,
            ),
            windows=windows,
            profiles=profiles,
        )
        stats = result.runtime_stats
        assert 0 < stats.peak_sample_matrix_bytes <= (
            (2 + cache) * 8 * circuit.n_nodes * cw
        )

    def test_auto_budget_divides_across_shards_end_to_end(
        self, butterfly_profiled
    ):
        """chunk_budget_mb with shard_jobs=4 picks a per-worker chunk a
        quarter the single-worker size and still matches trajectories."""
        circuit, windows, profiles = butterfly_profiled
        n = 4096
        budget_mb = circuit.n_nodes * 16 * 8 / 1e6  # 8 words at one worker
        single = explore(
            circuit,
            ExplorerConfig(
                n_samples=n, max_inputs=8, max_outputs=8,
                chunk_budget_mb=budget_mb,
            ),
            windows=windows,
            profiles=profiles,
        )
        assert single.runtime_stats.chunk_words == 8
        quad = explore(
            circuit,
            ExplorerConfig(
                n_samples=n, max_inputs=8, max_outputs=8,
                chunk_budget_mb=budget_mb, shard_jobs=4,
            ),
            windows=windows,
            profiles=profiles,
        )
        assert quad.runtime_stats.chunk_words == 2
        assert trajectory_key(quad) == trajectory_key(single)


class TestConfigAndPlumbing:
    def test_shard_knobs_require_streaming(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(shard_jobs=2)
        with pytest.raises(ExplorationError):
            ExplorerConfig(chunk_cache_chunks=2)
        with pytest.raises(ExplorationError):
            ExplorerConfig(chunk_words=2, chunk_cache_chunks=-1)
        ExplorerConfig(chunk_words=2, shard_jobs=0, chunk_cache_chunks=2)

    def test_jobs_governs_sharding_by_default(self, rng):
        """CLI-level contract: --jobs flows into shard scans unless
        --shard-jobs overrides it."""
        circuit = ripple_adder(4)
        result = explore(
            circuit,
            ExplorerConfig(
                n_samples=256, max_inputs=4, max_outputs=4,
                chunk_words=1, jobs=2, max_iterations=1,
            ),
        )
        assert result.runtime_stats.shard_jobs == 2
        result = explore(
            circuit,
            ExplorerConfig(
                n_samples=256, max_inputs=4, max_outputs=4,
                chunk_words=1, jobs=2, shard_jobs=1, max_iterations=1,
            ),
        )
        assert result.runtime_stats.shard_jobs == 1

    def test_make_evaluator_threads_shard_knobs(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 128, rng)
        ev = make_evaluator(
            circuit, windows, words, 128, engine="compiled",
            chunk_words=1, shard_jobs=2, cache_chunks=3,
        )
        try:
            assert isinstance(ev, StreamingEvaluator)
            assert ev._shard_jobs == 2
            assert ev._base_cache is not None
            assert ev._base_cache.capacity == 3
        finally:
            ev.close()
        with pytest.raises(SimulationError):
            StreamingEvaluator(
                circuit, windows, words, 128, chunk_words=1, cache_chunks=-1
            )

    def test_worker_exact_outputs_fast_path(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 128, rng)
        ref = StreamingEvaluator(circuit, windows, words, 128, chunk_words=1)
        fast = StreamingEvaluator(
            circuit, windows, words, 128, chunk_words=1,
            exact_outputs=ref.exact_outputs,
        )
        np.testing.assert_array_equal(fast.exact_outputs, ref.exact_outputs)

    def test_summary_reports_sharding(self):
        stats = RuntimeStats(
            n_shard_tasks=6, shard_jobs=3, n_stacked_blocks=40,
            n_chunk_cache_hits=10, n_chunk_cache_misses=2,
        )
        text = stats.summary()
        assert "6 shard tasks" in text
        assert "shard-jobs=3" in text
        assert "40 stacked blocks" in text
        assert "chunk cache 10 hit / 2 miss" in text

    def test_cli_exposes_shard_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--bench", "mult8", "--chunk-words", "8",
             "--shard-jobs", "2", "--chunk-cache-chunks", "4"]
        )
        assert args.shard_jobs == 2
        assert args.chunk_cache_chunks == 4
        assert build_parser().parse_args(
            ["run", "--bench", "mult8"]
        ).shard_jobs is None
