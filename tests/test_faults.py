"""Chaos suite: deterministic fault injection across the parallel runtime.

The contract under test (DESIGN.md "Fault tolerance"): any *recoverable*
injected fault — worker crash, hung worker, broken pool, corrupt cache
entry, retry exhaustion — changes **nothing** observable about an
exploration except the resilience counters in ``RuntimeStats``:
trajectories stay byte-identical to the fault-free run, and the
retry/fallback/rebuild counters match exactly what the injected
``FaultPlan`` implies.  Checkpoint/resume is held to the same bar: a run
interrupted at *any* iteration and resumed must reproduce the exact
final trajectory of an uninterrupted run.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.bench import butterfly
from repro.circuit import random_input_words
from repro.core.explorer import ExplorerConfig, explore
from repro.core.profile import profile_windows
from repro.errors import (
    CheckpointError,
    ExplorationError,
    FaultSpecError,
    ShardFailure,
)
from repro.partition import decompose
from repro.runtime import (
    ExploreCheckpoint,
    FaultPlan,
    ProfileCache,
    RetryPolicy,
    RuntimeStats,
    faults_enabled,
    load_checkpoint,
    run_tasks,
    save_checkpoint,
    supervised_map,
)
from repro.runtime.executor import ProcessShardExecutor, ScanShard, StreamContext

from explore_fixtures import trajectory_key

#: Shard counts the chaos matrix sweeps (1 = in-process: no pool exists,
#: so shard faults have nothing to hit and counters must stay zero).
SHARD_COUNTS = (1, 2, 3)

#: Zero-backoff policy so retry rounds don't sleep in tests.
FAST = RetryPolicy(max_retries=2, backoff=0.0)


@contextmanager
def quiet():
    """Silence the expected RuntimeWarnings of injected recoveries."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


# ----------------------------------------------------------------------
# Fault-spec grammar
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_defaults_and_fields(self):
        plan = FaultPlan.parse(
            "crash:shard=1;hang:shard=0,seconds=0.25,scan=3;"
            "pool:scan=2;cache:put=4;task:index=1,attempt=2"
        )
        crash, hang, pool, cache, task = plan.clauses
        assert crash.kind == "crash" and crash.shard == 1
        assert crash.attempt == 0 and crash.scan is None  # defaults
        assert hang.seconds == 0.25 and hang.scan == 3
        assert pool.scan == 2
        assert cache.put == 4
        assert task.index == 1 and task.attempt == 2

    def test_concrete_clause_fires_exactly_once(self):
        plan = FaultPlan.parse("crash:shard=1,attempt=0,scan=0")
        assert plan.shard_fault(0, 1, 0) is not None
        assert plan.shard_fault(0, 1, 0) is None
        # Non-matching probes never consume the clause.
        plan2 = FaultPlan.parse("crash:shard=1,attempt=0,scan=5")
        assert plan2.shard_fault(0, 1, 0) is None
        assert plan2.shard_fault(5, 1, 0) is not None

    def test_wildcard_clause_fires_every_match(self):
        plan = FaultPlan.parse("crash:shard=0,attempt=*,scan=2")
        for attempt in range(4):
            assert plan.shard_fault(2, 0, attempt) is not None
        assert plan.shard_fault(3, 0, 0) is None

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:shard=1",  # unknown kind
            "crash:shard=x",  # non-integer value
            "crash:shard",  # malformed pair
            "crash",  # missing required field
            "pool",  # missing required scan
            "crash:scan=1",  # missing required shard
            "crash:shard=1,put=0",  # field of another kind
            "hang:shard=0,seconds=fast",  # non-numeric seconds
            "",  # empty spec
            " ; ; ",
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_faults_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults_enabled() is None
        plan = FaultPlan.parse("pool:scan=0")
        assert faults_enabled(plan) is plan  # instance passthrough keeps state
        assert faults_enabled("pool:scan=1").clauses[0].scan == 1
        monkeypatch.setenv("REPRO_FAULTS", "crash:shard=0")
        assert faults_enabled().clauses[0].kind == "crash"
        monkeypatch.setenv("REPRO_FAULTS", "bogus")
        with pytest.raises(FaultSpecError):
            faults_enabled()

    def test_explorer_config_validates_fault_knobs(self):
        with pytest.raises(FaultSpecError):
            ExplorerConfig(faults="nonsense:x=1")
        with pytest.raises(ExplorationError):
            ExplorerConfig(checkpoint_every=0)
        with pytest.raises(ExplorationError):
            ExplorerConfig(shard_retries=-1)
        with pytest.raises(ExplorationError):
            ExplorerConfig(shard_timeout=0.0)


# ----------------------------------------------------------------------
# Supervised task driver
# ----------------------------------------------------------------------
class TestSupervisedTasks:
    def test_injected_task_fault_retries_byte_identical(self):
        serial = [abs(x) for x in (-1, -2, -3, -4)]
        stats = RuntimeStats()
        with quiet():
            out = supervised_map(
                abs, [-1, -2, -3, -4], jobs=2, policy=FAST,
                faults=FaultPlan.parse("task:index=1,attempt=0"), stats=stats,
            )
        assert out == serial
        assert stats.n_task_retries == 1
        assert stats.n_task_fallbacks == 0

    def test_retry_exhaustion_falls_back_in_process(self):
        stats = RuntimeStats()
        with quiet():
            out = supervised_map(
                abs, [-5, -6], jobs=2, policy=FAST,
                faults=FaultPlan.parse("task:index=0,attempt=*"), stats=stats,
            )
        assert out == [5, 6]
        assert stats.n_task_retries == FAST.max_retries
        assert stats.n_task_fallbacks == 1

    def test_run_tasks_threads_policy_and_faults(self):
        baseline, _ = run_tasks(list(range(-8, 0)), abs, jobs=1)
        stats = RuntimeStats()
        with quiet():
            chaotic, _ = run_tasks(
                list(range(-8, 0)), abs, jobs=2, stats=stats, policy=FAST,
                faults=FaultPlan.parse("task:index=3,attempt=0"),
            )
        assert chaotic == baseline
        assert stats.n_task_retries == 1

    def test_serial_dispatch_never_injects(self):
        # jobs=1 is the plain loop: no pool exists, so there is nothing
        # to crash — the plan goes unconsulted by design.
        plan = FaultPlan.parse("task:index=0,attempt=0")
        stats = RuntimeStats()
        out = supervised_map(abs, [-1, -2], jobs=1, faults=plan, stats=stats)
        assert out == [1, 2]
        assert stats.n_task_retries == 0


# ----------------------------------------------------------------------
# Cache hardening
# ----------------------------------------------------------------------
class TestCacheHardening:
    def test_corrupt_entry_is_miss_and_quarantined(self, tmp_path):
        cache = ProfileCache(tmp_path)
        key = cache.key_of(b"token")
        cache.put(key, {"x": np.arange(4)})
        # Garbage bytes: UnpicklingError path.
        with open(cache._file(key), "wb") as fh:
            fh.write(b"not a pickle at all")
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert (tmp_path / f"{key}.pkl.corrupt").exists()
        assert not cache._file(key).exists()
        # A fresh put re-populates the slot and serves again.
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"

    def test_unresolvable_payload_is_miss(self, tmp_path):
        # Protocol-0 GLOBAL opcode naming an attribute this build does not
        # define: unpickling raises AttributeError, which must be a miss.
        cache = ProfileCache(tmp_path)
        key = cache.key_of(b"gone")
        with open(cache._file(key), "wb") as fh:
            fh.write(b"crepro.runtime.cache\nNoSuchClass\n.")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert (tmp_path / f"{key}.pkl.corrupt").exists()

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = ProfileCache(tmp_path)
        key = cache.key_of(b"short")
        cache.put(key, list(range(100)))
        raw = cache._file(key).read_bytes()
        cache._file(key).write_bytes(raw[: len(raw) // 2])
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_injected_cache_fault_corrupts_nth_store(self, tmp_path):
        cache = ProfileCache(tmp_path, faults=FaultPlan.parse("cache:put=1"))
        k0, k1 = cache.key_of(b"a"), cache.key_of(b"b")
        cache.put(k0, "a")
        cache.put(k1, "b")  # store ordinal 1: corrupted post-write
        assert cache.get(k0) == "a"
        assert cache.get(k1) is None
        assert cache.corrupt == 1


# ----------------------------------------------------------------------
# Chaos matrix over explore()
# ----------------------------------------------------------------------
#: Streaming base config: words_for(700) = 11, chunk_words=3 -> 4 chunks.
BASE = dict(
    n_samples=700, max_inputs=8, max_outputs=8, strategy="full", chunk_words=3
)




@pytest.fixture(scope="module")
def reference_run(butterfly_profiled):
    circuit, windows, profiles = butterfly_profiled
    result = explore(
        circuit, ExplorerConfig(**BASE), windows=windows, profiles=profiles
    )
    assert len(result.trajectory) > 3
    return trajectory_key(result)


def _chaos_explore(butterfly_profiled, **overrides):
    circuit, windows, profiles = butterfly_profiled
    with quiet():
        result = explore(
            circuit,
            ExplorerConfig(**BASE, **overrides),
            windows=windows,
            profiles=profiles,
        )
    return trajectory_key(result), result.runtime_stats


class TestChaosMatrix:
    @pytest.mark.parametrize("shard_jobs", SHARD_COUNTS)
    def test_worker_crash_retried(
        self, shard_jobs, butterfly_profiled, reference_run
    ):
        """One injected crash costs exactly one retry — or nothing at all
        in-process, where no pool exists to crash."""
        spec = "crash:shard=%d,attempt=0,scan=0" % (min(1, shard_jobs - 1),)
        key, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=shard_jobs, faults=spec,
            shard_retries=2,
        )
        assert key == reference_run
        if shard_jobs == 1:
            assert stats.n_shard_retries == 0
        else:
            assert stats.n_shard_retries == 1
        assert stats.n_shard_fallbacks == 0
        assert stats.n_pool_rebuilds == 0

    @pytest.mark.parametrize("shard_jobs", SHARD_COUNTS)
    def test_pool_break_rebuilds(
        self, shard_jobs, butterfly_profiled, reference_run
    ):
        key, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=shard_jobs, faults="pool:scan=1",
        )
        assert key == reference_run
        if shard_jobs == 1:
            assert stats.n_pool_rebuilds == 0
        else:
            assert stats.n_pool_rebuilds == 1
        # An injected dispatch-time break charges no shard a retry.
        assert stats.n_shard_retries == 0
        assert stats.n_shard_fallbacks == 0

    @pytest.mark.parametrize("shard_jobs", SHARD_COUNTS)
    def test_retry_exhaustion_falls_back(
        self, shard_jobs, butterfly_profiled, reference_run
    ):
        """A shard crashing on *every* pool attempt of scan 0 burns the
        full retry budget and then re-runs in-process — with the other
        shards' pool outcomes kept."""
        key, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=shard_jobs,
            faults="crash:shard=0,attempt=*,scan=0", shard_retries=2,
        )
        assert key == reference_run
        if shard_jobs == 1:
            assert stats.n_shard_retries == 0
            assert stats.n_shard_fallbacks == 0
        else:
            assert stats.n_shard_retries == 2
            assert stats.n_shard_fallbacks == 1

    def test_hung_shard_timed_out_and_recovered(
        self, butterfly_profiled, reference_run
    ):
        """Acceptance criterion: a hung shard can no longer block forever.
        The 30s injected hang is cut off by the 1s attempt timeout, the
        compromised pool is rebuilt, and the run finishes promptly with
        an identical trajectory."""
        t0 = time.time()
        key, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=2, shard_timeout=1.0,
            faults="hang:shard=0,attempt=0,scan=0,seconds=30",
        )
        elapsed = time.time() - t0
        assert key == reference_run
        assert elapsed < 20  # a fraction of the injected 30s hang
        assert stats.n_pool_rebuilds == 1
        assert stats.n_shard_retries >= 1

    def test_combined_crash_and_pool_break(
        self, butterfly_profiled, reference_run
    ):
        key, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=2,
            faults="crash:shard=1,attempt=0,scan=0;pool:scan=1",
        )
        assert key == reference_run
        assert stats.n_shard_retries == 1
        assert stats.n_pool_rebuilds == 1

    def test_resilience_counters_surface_in_summary(self, butterfly_profiled):
        _, stats = _chaos_explore(
            butterfly_profiled, shard_jobs=2,
            faults="crash:shard=1,attempt=0,scan=0",
        )
        assert "recovered:" in stats.summary()
        assert "1 shard retries" in stats.resilience_summary()

    def test_cache_corruption_recovered_warm(self, tmp_path):
        """A corrupt persistent-cache entry is quarantined, recomputed,
        and the warm trajectory still matches the cold one."""
        circuit = butterfly(6)
        windows = decompose(circuit, 8, 8)
        cold = explore(
            circuit,
            ExplorerConfig(cache_dir=str(tmp_path), faults="cache:put=0", **BASE),
            windows=windows,
        )
        warm = explore(
            circuit,
            ExplorerConfig(cache_dir=str(tmp_path), **BASE),
            windows=windows,
        )
        assert trajectory_key(warm) == trajectory_key(cold)
        stats = warm.runtime_stats
        assert stats.cache_corrupt == 1
        assert any(
            name.endswith(".corrupt") for name in os.listdir(tmp_path)
        )
        assert "1 corrupt cache entries quarantined" in stats.summary()


# ----------------------------------------------------------------------
# Shard executor failure attribution
# ----------------------------------------------------------------------
class TestShardFailureAttribution:
    def test_app_level_failure_raises_shard_failure_with_traceback(
        self, butterfly_profiled, rng
    ):
        """Satellite bugfix: an application-level exception inside a shard
        no longer propagates raw out of the executor — it rides the
        retry/fallback path, and when the in-process fallback fails too,
        the raised ShardFailure carries the worker traceback."""
        circuit, windows, _ = butterfly_profiled
        n = 700
        words = random_input_words(circuit.n_inputs, n, rng)
        from repro.circuit.simulate import simulate_outputs

        context = StreamContext(
            circuit=circuit,
            windows=tuple(windows),
            input_words=words,
            n_samples=n,
            chunk_words=3,
            exact_outputs=simulate_outputs(circuit, words, n_samples=n),
        )
        # A shard referencing a window index no profile/window defines:
        # every attempt (pool and in-process) raises the same app-level
        # exception.
        bad = ScanShard(
            chunks=((0, 3),),
            requests=((9999, (np.zeros((2, 2), dtype=np.uint8),)),),
            committed=(),
            epoch=0,
            chunk_epochs=(),
            metric="mre",
        )
        executor = ProcessShardExecutor(
            context, 2, policy=RetryPolicy(max_retries=0, backoff=0.0)
        )
        try:
            with quiet(), pytest.raises(ShardFailure) as exc_info:
                executor.run([bad])
            message = str(exc_info.value)
            assert "shard 0" in message
            assert "Traceback" in message  # worker-side traceback preserved
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("strategy", ["full", "lazy"])
    def test_interrupt_every_iteration_resumes_identically(
        self, strategy, tmp_path, butterfly_profiled
    ):
        """Property test: kill the run after iteration k for *every* k and
        resume — each continuation must reproduce the uninterrupted final
        trajectory byte for byte (lazy includes heap/counter state)."""
        circuit, windows, profiles = butterfly_profiled
        cfg = dict(BASE, strategy=strategy)
        full = explore(
            circuit, ExplorerConfig(**cfg), windows=windows, profiles=profiles
        )
        reference = trajectory_key(full)
        n_iter = len(reference) - 1
        assert n_iter >= 3
        for k in range(1, n_iter + 1):
            ck = tmp_path / f"{strategy}-{k}.ckpt"
            interrupted = explore(
                circuit,
                ExplorerConfig(
                    checkpoint_path=str(ck), max_iterations=k, **cfg
                ),
                windows=windows,
                profiles=profiles,
            )
            assert interrupted.runtime_stats.n_checkpoints == k
            resumed = explore(
                circuit,
                ExplorerConfig(resume=str(ck), **cfg),
                windows=windows,
                profiles=profiles,
            )
            assert trajectory_key(resumed) == reference, f"iteration {k}"
            assert resumed.n_evaluations == full.n_evaluations

    def test_resumed_result_realizes_same_pareto_front(
        self, tmp_path, butterfly_profiled
    ):
        """Beyond the trajectory: chosen-variant bookkeeping survives the
        round trip, so best_point/realize agree with the full run."""
        circuit, windows, profiles = butterfly_profiled
        full = explore(
            circuit, ExplorerConfig(**BASE), windows=windows, profiles=profiles
        )
        ck = tmp_path / "mid.ckpt"
        explore(
            circuit,
            ExplorerConfig(checkpoint_path=str(ck), max_iterations=2, **BASE),
            windows=windows,
            profiles=profiles,
        )
        resumed = explore(
            circuit, ExplorerConfig(resume=str(ck), **BASE),
            windows=windows, profiles=profiles,
        )
        thr = full.trajectory[-1].qor + 1e-9
        p_full, p_res = full.best_point(thr), resumed.best_point(thr)
        assert (p_full.iteration, p_full.est_area) == (
            p_res.iteration, p_res.est_area,
        )
        assert sorted(full.chosen) == sorted(resumed.chosen)

    def test_checkpoint_every_limits_writes(
        self, tmp_path, butterfly_profiled
    ):
        circuit, windows, profiles = butterfly_profiled
        ck = tmp_path / "sparse.ckpt"
        result = explore(
            circuit,
            ExplorerConfig(
                checkpoint_path=str(ck), checkpoint_every=3,
                max_iterations=7, **BASE,
            ),
            windows=windows,
            profiles=profiles,
        )
        assert result.runtime_stats.n_checkpoints == 2  # iterations 3, 6
        # The snapshot on disk is the *last periodic* one.
        assert load_checkpoint(ck).iteration == 6

    def test_fingerprint_mismatch_refuses_resume(
        self, tmp_path, butterfly_profiled
    ):
        circuit, windows, profiles = butterfly_profiled
        ck = tmp_path / "seed7.ckpt"
        explore(
            circuit,
            ExplorerConfig(checkpoint_path=str(ck), max_iterations=1, **BASE),
            windows=windows,
            profiles=profiles,
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            explore(
                circuit,
                ExplorerConfig(resume=str(ck), seed=8, **BASE),
                windows=windows,
                profiles=profiles,
            )

    def test_stop_knobs_do_not_bind_the_fingerprint(
        self, tmp_path, butterfly_profiled
    ):
        """max_iterations/threshold are stop conditions, not search
        definition — resuming with different ones must be allowed (that
        is exactly how an interrupted run continues)."""
        circuit, windows, profiles = butterfly_profiled
        ck = tmp_path / "stop.ckpt"
        explore(
            circuit,
            ExplorerConfig(checkpoint_path=str(ck), max_iterations=2, **BASE),
            windows=windows,
            profiles=profiles,
        )
        resumed = explore(
            circuit,
            ExplorerConfig(resume=str(ck), max_iterations=4, **BASE),
            windows=windows,
            profiles=profiles,
        )
        assert resumed.trajectory[-1].iteration == 4

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.ckpt")

    def test_version_and_type_mismatch_raise(self, tmp_path):
        path = tmp_path / "old.ckpt"
        ckpt = ExploreCheckpoint(
            fingerprint="f", iteration=0, current_qor=0.0, n_evaluations=0,
            fs={}, chosen={}, trajectory=[], version=0,
        )
        save_checkpoint(path, ckpt)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)
        with open(path, "wb") as fh:
            pickle.dump({"not": "a checkpoint"}, fh)
        with pytest.raises(CheckpointError, match="ExploreCheckpoint"):
            load_checkpoint(path)

    def test_save_is_atomic_over_existing(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        first = ExploreCheckpoint(
            fingerprint="f", iteration=1, current_qor=0.5, n_evaluations=3,
            fs={0: 2}, chosen={}, trajectory=[(0, -1, 0, 0.0, 1.0, (2,))],
        )
        save_checkpoint(path, first)
        second = ExploreCheckpoint(
            fingerprint="f", iteration=2, current_qor=0.75, n_evaluations=6,
            fs={0: 1}, chosen={}, trajectory=[(0, -1, 0, 0.0, 1.0, (2,))],
        )
        save_checkpoint(path, second)
        loaded = load_checkpoint(path, expect_fingerprint="f")
        assert loaded.iteration == 2 and loaded.current_qor == 0.75
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCliPlumbing:
    def test_new_flags_reach_the_config(self):
        from repro.cli import _config, build_parser

        args = build_parser().parse_args(
            [
                "run", "--bench", "mult8", "--chunk-words", "3",
                "--faults", "pool:scan=0", "--shard-timeout", "2.5",
                "--shard-retries", "1", "--checkpoint", "/tmp/x.ckpt",
                "--checkpoint-every", "5", "--resume", "/tmp/y.ckpt",
            ]
        )
        config = _config(args)
        assert config.faults == "pool:scan=0"
        assert config.shard_timeout == 2.5
        assert config.shard_retries == 1
        assert config.checkpoint_path == "/tmp/x.ckpt"
        assert config.checkpoint_every == 5
        assert config.resume == "/tmp/y.ckpt"
