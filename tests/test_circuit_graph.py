"""Tests for graph utilities: fanouts, levels, cones, bitsets, extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    CircuitBuilder,
    ancestor_bitsets,
    extract_subcircuit,
    fanout_lists,
    levels,
    quotient_is_acyclic,
    simulate_patterns,
    transitive_fanin,
    transitive_fanout,
    truth_table,
    window_boundary,
)
from repro.circuit.graph import bitset_contains
from repro.errors import CircuitError


@pytest.fixture
def chain():
    """a -> n1 = ~a -> n2 = n1 & b -> y."""
    b = CircuitBuilder("chain")
    a = b.input("a")
    x = b.input("b")
    n1 = b.not_(a)
    n2 = b.and_(n1, x)
    b.output("y", n2)
    return b.build(), (a, x, n1, n2)


class TestFanoutAndLevels:
    def test_fanout_lists(self, chain):
        c, (a, x, n1, n2) = chain
        fo = fanout_lists(c)
        assert fo[a] == [n1]
        assert fo[n1] == [n2]
        assert fo[n2] == []

    def test_levels(self, chain):
        c, (a, x, n1, n2) = chain
        lvl = levels(c)
        assert lvl[a] == 0
        assert lvl[n1] == 1
        assert lvl[n2] == 2


class TestCones:
    def test_transitive_fanin_includes_roots(self, chain):
        c, (a, x, n1, n2) = chain
        mask = transitive_fanin(c, [n2])
        assert mask[[a, x, n1, n2]].all()

    def test_transitive_fanin_partial(self, chain):
        c, (a, x, n1, n2) = chain
        mask = transitive_fanin(c, [n1])
        assert mask[a] and mask[n1]
        assert not mask[x] and not mask[n2]

    def test_transitive_fanout(self, chain):
        c, (a, x, n1, n2) = chain
        mask = transitive_fanout(c, [a])
        assert mask[[a, n1, n2]].all()
        assert not mask[x]


class TestAncestorBitsets:
    def test_matches_transitive_fanin(self, rng):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(4)]
        n1 = b.and_(ins[0], ins[1])
        n2 = b.or_(ins[2], ins[3])
        n3 = b.xor_(n1, n2)
        b.output("y", n3)
        c = b.build()
        anc = ancestor_bitsets(c)
        for nid in range(c.n_nodes):
            cone = transitive_fanin(c, [nid])
            for other in range(c.n_nodes):
                expect = bool(cone[other]) and other != nid
                assert bitset_contains(anc, nid, other) == expect


class TestWindowBoundary:
    def test_boundary_of_inner_gates(self, chain):
        c, (a, x, n1, n2) = chain
        ins, outs = window_boundary(c, {n1, n2})
        assert ins == [a, x]
        assert outs == [n2]

    def test_internal_node_with_external_fanout_is_output(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        n1 = b.and_(a, x)
        n2 = b.not_(n1)
        b.output("y0", n1)  # n1 drives a PO directly
        b.output("y1", n2)
        c = b.build()
        ins, outs = window_boundary(c, {n1, n2})
        assert set(outs) == {n1, n2}


class TestExtractSubcircuit:
    def test_extracted_function_matches(self, chain):
        c, (a, x, n1, n2) = chain
        sub = extract_subcircuit(c, [n1, n2], [a, x], [n2])
        tt = truth_table(sub)
        # y = ~a & b with inputs (a, b)
        expect = [0, 0, 1, 0]  # rows: a=0b, b... row index bit0=a, bit1=b
        np.testing.assert_array_equal(tt[:, 0], np.array(expect, dtype=bool))

    def test_undeclared_fanin_raises(self, chain):
        c, (a, x, n1, n2) = chain
        with pytest.raises(CircuitError):
            extract_subcircuit(c, [n2], [x], [n2])  # n1 missing

    def test_output_must_be_member(self, chain):
        c, (a, x, n1, n2) = chain
        with pytest.raises(CircuitError):
            extract_subcircuit(c, [n1], [a], [n2])

    def test_constants_recreated_inside(self):
        b = CircuitBuilder()
        a = b.input("a")
        k = b.const(True)
        n = b.xor_(a, b.input("b"))
        m = b.mux(n, a, b.not_(a))
        b.output("y", m)
        c = b.build(prune=False)
        # pick the full gate set
        gates = list(c.gate_ids())
        ins, outs = window_boundary(c, set(gates))
        sub = extract_subcircuit(c, gates, ins, outs)
        sub.validate()


class TestQuotientAcyclicity:
    def test_acyclic_partition(self, chain):
        c, (a, x, n1, n2) = chain
        assert quotient_is_acyclic(c, {n1: 0, n2: 0})
        assert quotient_is_acyclic(c, {n1: 0, n2: 1})

    def test_cyclic_partition_detected(self):
        # n1 -> n2 -> n3 with {n1, n3} in one cluster is cyclic:
        # cluster -> n2 -> cluster.
        b = CircuitBuilder()
        a = b.input("a")
        x = b.input("b")
        n1 = b.not_(a)
        n2 = b.and_(n1, x)
        n3 = b.or_(n2, a)
        b.output("y", n3)
        c = b.build()
        assert not quotient_is_acyclic(c, {n1: 7, n3: 7})
        assert quotient_is_acyclic(c, {n1: 7, n2: 7, n3: 7})
