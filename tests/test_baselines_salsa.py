"""Tests for the SALSA-style per-output baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DC_LADDER,
    boundary_scores,
    dc_mask_for_fraction,
    output_root_windows,
    run_salsa,
)
from repro.bench import array_multiplier, ripple_adder
from repro.circuit import simulate_patterns
from repro.core.explorer import ExplorerConfig
from repro.errors import ExplorationError
from repro.flow import measure_error


class TestBoundaryScores:
    def test_constant_function_has_no_boundary(self):
        assert boundary_scores(np.zeros(8, dtype=bool)).sum() == 0

    def test_single_minterm_score(self):
        table = np.zeros(8, dtype=bool)
        table[3] = True
        scores = boundary_scores(table)
        assert scores[3] == 3  # all 3 neighbours differ
        # neighbours of 3 (= 2, 1, 7) each see one differing neighbour
        assert scores[2] == scores[1] == scores[7] == 1

    def test_parity_is_all_boundary(self):
        idx = np.arange(16)
        parity = ((idx >> 0) ^ (idx >> 1) ^ (idx >> 2) ^ (idx >> 3)) & 1
        scores = boundary_scores(parity.astype(bool))
        assert (scores == 4).all()


class TestDcMask:
    def test_fraction_zero_empty(self):
        assert not dc_mask_for_fraction(np.zeros(16, dtype=bool), 0.0).any()

    def test_fraction_size(self, rng):
        table = rng.random(64) < 0.5
        mask = dc_mask_for_fraction(table, 0.25)
        assert mask.sum() == 16

    def test_boundary_rows_first(self):
        table = np.zeros(8, dtype=bool)
        table[3] = True
        mask = dc_mask_for_fraction(table, 1 / 8)
        assert mask[3]  # highest boundary score


class TestOutputRootWindows:
    def test_single_output_windows(self):
        circuit = array_multiplier(6)
        windows = output_root_windows(circuit, 10)
        for w in windows:
            assert w.n_outputs == 1
            assert w.n_inputs <= 10

    def test_disjoint(self):
        circuit = array_multiplier(6)
        windows = output_root_windows(circuit, 10)
        seen = set()
        for w in windows:
            assert not (seen & set(w.members))
            seen |= set(w.members)

    def test_shared_logic_excluded(self):
        # In a multiplier most partial-product logic is shared between
        # outputs; per-output MFFCs must leave it out.
        circuit = array_multiplier(6)
        windows = output_root_windows(circuit, 10)
        claimed = sum(w.n_members for w in windows)
        assert claimed < 0.5 * circuit.n_gates

    def test_one_window_per_driver(self):
        circuit = ripple_adder(8)
        windows = output_root_windows(circuit, 10)
        roots = [w.outputs[0] for w in windows]
        assert len(roots) == len(set(roots))


class TestRunSalsa:
    @pytest.fixture(scope="class")
    def salsa_result(self):
        circuit = ripple_adder(8)
        config = ExplorerConfig(
            n_samples=1024, max_inputs=8, threshold=0.3, strategy="lazy"
        )
        return circuit, run_salsa(circuit, config)

    def test_trajectory_grows_error(self, salsa_result):
        _, result = salsa_result
        assert len(result.trajectory) > 1
        assert result.trajectory[-1].qor > 0

    def test_realized_design_equivalent_interface(self, salsa_result):
        circuit, result = salsa_result
        point = result.best_point(0.3)
        realized = result.realize(point)
        assert realized.output_names() == circuit.output_names()

    def test_realized_error_within_regime(self, salsa_result):
        circuit, result = salsa_result
        point = result.best_point(0.1)
        if point is None or point.iteration == 0:
            pytest.skip("no approximation within threshold at this size")
        realized = result.realize(point)
        measured = measure_error(circuit, realized, 8192)
        assert measured["mre"] <= 0.3

    def test_exact_point_realizes_identity(self, salsa_result):
        circuit, result = salsa_result
        realized = result.realize(result.trajectory[0])
        rng = np.random.default_rng(5)
        pats = rng.integers(0, 2, size=(300, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(realized, pats), simulate_patterns(circuit, pats)
        )

    def test_bad_scope_rejected(self):
        with pytest.raises(ExplorationError):
            run_salsa(ripple_adder(4), scope="everything")

    def test_windows_scope_covers_all_gates(self):
        circuit = ripple_adder(6)
        config = ExplorerConfig(n_samples=512, max_inputs=6, threshold=0.2)
        result = run_salsa(circuit, config, scope="windows")
        covered = {v for w in result.windows for v in w.members}
        assert covered == set(circuit.gate_ids())

    def test_blasys_beats_salsa_on_shared_logic(self):
        """The paper's Table 3 headline: multi-output factorization wins on
        multiplier-like circuits with heavily shared logic."""
        from repro.core.explorer import explore

        circuit = array_multiplier(6)
        config = ExplorerConfig(
            n_samples=2048, threshold=0.25, strategy="lazy"
        )
        blasys = explore(circuit, config)
        salsa = run_salsa(circuit, config)

        def reduction(res, thr):
            p = res.best_point(thr)
            return res.estimated_reduction(p) if p else 0.0

        # Absolute estimated-area reduction: SALSA can only ever touch the
        # small per-output exclusive cones of a multiplier.
        assert reduction(blasys, 0.25) > reduction(salsa, 0.25)
