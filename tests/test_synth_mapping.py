"""Tests for technology mapping, timing and power analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import CircuitBuilder, truth_table
from repro.errors import SynthesisError
from repro.synth import (
    DesignMetrics,
    LIB65,
    estimate_power,
    evaluate_design,
    lower_for_mapping,
    resynthesize,
    static_timing,
    synthesize_table,
    tech_map,
)


def _ripple_adder(width):
    b = CircuitBuilder(f"add{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    s, c = b.add(a, x)
    b.output_word("sum", s + [c])
    return b.build()


class TestLowering:
    def test_wide_and_decomposed(self):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(9)]
        b.output("y", b.and_(*ins))
        lowered = lower_for_mapping(b.build(), LIB65)
        max_arity = max(n.arity for n in lowered.nodes)
        assert max_arity <= 4
        np.testing.assert_array_equal(
            truth_table(lowered), truth_table(b.build())
        )

    def test_wide_xor_becomes_xor2_tree(self):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(5)]
        b.output("y", b.xor_(*ins))
        lowered = lower_for_mapping(b.build(), LIB65)
        assert all(n.arity <= 2 for n in lowered.nodes if n.op.value == "xor")
        np.testing.assert_array_equal(
            truth_table(lowered), truth_table(b.build())
        )

    def test_lut_rejected(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        b.output("y", b.lut([a, x], np.array([0, 1, 1, 1], dtype=bool)))
        with pytest.raises(SynthesisError):
            lower_for_mapping(b.build(), LIB65)


class TestMacroMatching:
    def test_full_adder_uses_fa_cell(self, full_adder_circuit):
        mapped = tech_map(full_adder_circuit)
        hist = mapped.cell_histogram()
        assert hist.get("FA", 0) == 1
        assert mapped.n_cells == 1

    def test_ripple_adder_is_fa_chain(self):
        width = 8
        mapped = tech_map(_ripple_adder(width))
        hist = mapped.cell_histogram()
        # first bit has cin=0 (folds to HA), the rest are FAs
        assert hist.get("FA", 0) == width - 1
        assert hist.get("HA", 0) == 1

    def test_half_adder_uses_ha_cell(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        s, c = b.half_adder(a, x)
        b.output("s", s)
        b.output("c", c)
        mapped = tech_map(b.build())
        assert mapped.cell_histogram().get("HA", 0) == 1

    def test_macro_matching_can_be_disabled(self, full_adder_circuit):
        mapped = tech_map(full_adder_circuit, match_macros=False)
        assert "FA" not in mapped.cell_histogram()
        assert mapped.n_cells > 1

    def test_shared_xor_not_absorbed(self):
        # If the inner XOR drives an extra output, FA matching must not
        # swallow it.
        b = CircuitBuilder()
        a, x, cin = b.input("a"), b.input("b"), b.input("cin")
        s, c = b.full_adder(a, x, cin)
        axb = b.xor_(a, x)  # same node as inside the adder (strash)
        b.output("s", s)
        b.output("c", c)
        b.output("axb", axb)
        mapped = tech_map(b.build())
        assert "FA" not in mapped.cell_histogram()

    def test_aoi21_matched(self):
        b = CircuitBuilder()
        a, x, c = b.input("a"), b.input("b"), b.input("c")
        b.output("y", b.not_(b.or_(b.and_(a, x), c)))
        mapped = tech_map(b.build())
        assert mapped.cell_histogram().get("AOI21", 0) == 1
        assert mapped.n_cells == 1

    def test_oai21_matched(self):
        b = CircuitBuilder()
        a, x, c = b.input("a"), b.input("b"), b.input("c")
        b.output("y", b.not_(b.and_(b.or_(a, x), c)))
        mapped = tech_map(b.build())
        assert mapped.cell_histogram().get("OAI21", 0) == 1


class TestMappedMetrics:
    def test_area_is_sum_of_cells(self, full_adder_circuit):
        mapped = tech_map(full_adder_circuit)
        assert mapped.area == pytest.approx(LIB65["FA"].area)

    def test_area_scales_with_width(self):
        a4 = tech_map(_ripple_adder(4)).area
        a8 = tech_map(_ripple_adder(8)).area
        assert a8 > 1.8 * a4


class TestTiming:
    def test_single_cell_delay(self, full_adder_circuit):
        report = static_timing(tech_map(full_adder_circuit))
        assert report.delay_ns == pytest.approx(LIB65["FA"].delay)

    def test_ripple_carry_chain_scales_linearly(self):
        d8 = static_timing(tech_map(_ripple_adder(8))).delay_ns
        d16 = static_timing(tech_map(_ripple_adder(16))).delay_ns
        assert d16 == pytest.approx(d8 + 8 * LIB65["FA"].delay, rel=0.05)

    def test_critical_path_endpoints(self):
        mapped = tech_map(_ripple_adder(4))
        report = static_timing(mapped)
        assert report.critical_output.startswith("sum")
        assert len(report.critical_path) >= 2

    def test_constant_circuit_zero_delay(self):
        b = CircuitBuilder()
        b.input("a")
        b.output("y", b.const(True))
        report = static_timing(tech_map(b.build()))
        assert report.delay_ns == pytest.approx(0.0, abs=1e-9)


class TestPower:
    def test_power_positive_for_active_logic(self, full_adder_circuit):
        report = estimate_power(tech_map(full_adder_circuit), n_samples=1024)
        assert report.dynamic_uw > 0
        assert report.leakage_uw > 0

    def test_constant_logic_has_no_dynamic_power(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("y", b.and_(a, b.const(False)))
        report = estimate_power(tech_map(b.build()), n_samples=256)
        assert report.dynamic_uw == pytest.approx(0.0, abs=1e-9)

    def test_power_scales_with_size(self):
        p4 = estimate_power(tech_map(_ripple_adder(4)), n_samples=1024).total_uw
        p16 = estimate_power(tech_map(_ripple_adder(16)), n_samples=1024).total_uw
        assert p16 > 2.5 * p4


class TestEvaluateDesign:
    def test_metrics_fields(self, full_adder_circuit):
        metrics = evaluate_design(full_adder_circuit, n_activity_samples=256)
        assert isinstance(metrics, DesignMetrics)
        assert metrics.area_um2 > 0
        assert metrics.power_uw > 0
        assert metrics.delay_ns > 0
        assert metrics.n_cells >= 1

    def test_savings_vs(self):
        base = DesignMetrics(100.0, 50.0, 2.0, 10, {})
        new = DesignMetrics(60.0, 40.0, 1.0, 6, {})
        s = new.savings_vs(base)
        assert s["area"] == pytest.approx(40.0)
        assert s["power"] == pytest.approx(20.0)
        assert s["delay"] == pytest.approx(50.0)

    def test_lut_design_lowered_and_mapped(self):
        b = CircuitBuilder()
        a, x, y = b.input("a"), b.input("b"), b.input("c")
        table = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=bool)  # parity
        b.output("y", b.lut([a, x, y], table))
        metrics = evaluate_design(b.build(), n_activity_samples=256)
        assert metrics.area_um2 > 0


class TestResynthesize:
    def test_preserves_function(self, rng):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(5)]
        n1 = b.and_(ins[0], ins[1], ins[2])
        n2 = b.xor_(n1, ins[3])
        b.output("y", b.mux(ins[4], n1, n2))
        c = b.build()
        again = resynthesize(c)
        np.testing.assert_array_equal(truth_table(again), truth_table(c))

    def test_lowers_luts(self):
        b = CircuitBuilder()
        a, x = b.input("a"), b.input("b")
        b.output("y", b.lut([a, x], np.array([0, 1, 1, 1], dtype=bool)))
        out = resynthesize(b.build())
        assert all(n.op.value != "lut" for n in out.nodes)
        tt = truth_table(out)
        np.testing.assert_array_equal(tt[:, 0], [False, True, True, True])


class TestSynthesizeTable:
    def test_roundtrip_function(self, rng):
        table = rng.random((16, 3)) < 0.5
        circuit = synthesize_table(table, "t")
        np.testing.assert_array_equal(truth_table(circuit), table)

    def test_exact_mode(self, rng):
        table = rng.random((16, 2)) < 0.5
        circuit = synthesize_table(table, "t", exact=True)
        np.testing.assert_array_equal(truth_table(circuit), table)

    def test_single_output_1d_table(self):
        table = np.array([False, True, True, False])
        circuit = synthesize_table(table, "xor")
        np.testing.assert_array_equal(truth_table(circuit)[:, 0], table)
