"""Tests for error analysis, Pareto tools, MDL selection, equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import mult8, ripple_adder
from repro.circuit import (
    CircuitBuilder,
    equivalent,
    miter,
    truth_table,
)
from repro.core.bmf import (
    bool_product,
    description_length,
    factorize,
    select_degree_mdl,
)
from repro.core.explorer import ExplorerConfig, explore
from repro.errors import CircuitError, SimulationError
from repro.eval import (
    analyze_errors,
    area_at_error,
    error_histogram,
    exploration_front,
    hypervolume,
    pareto_front,
    per_output_bit_error,
)


def _lsb_broken_adder(width):
    """Adder variant with its LSB stuck at zero."""
    b = CircuitBuilder("broken")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    s, c = b.add(a, x)
    s[0] = b.const(False)
    b.output_word("sum", s + [c])
    return b.build()


class TestErrorAnalysis:
    def test_identical_circuits_zero_errors(self):
        c = ripple_adder(6)
        report = analyze_errors(c, c, n_samples=2048)
        assert report.error_rate == 0.0
        assert report.worst_case_error == 0
        assert report.bit_error_rate == 0.0

    def test_lsb_break_statistics(self):
        c = ripple_adder(6)
        broken = _lsb_broken_adder(6)
        report = analyze_errors(c, broken, n_samples=8192)
        # LSB of a+b is 1 for half of all inputs -> ER ~ 0.5, WCE = 1.
        assert report.error_rate == pytest.approx(0.5, abs=0.05)
        assert report.worst_case_error == 1
        assert report.mean_error_distance == pytest.approx(0.5, abs=0.05)

    def test_interface_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            analyze_errors(ripple_adder(4), ripple_adder(5), n_samples=64)

    def test_histogram_mass_equals_samples(self):
        c = ripple_adder(5)
        counts, edges = error_histogram(c, _lsb_broken_adder(5), n_samples=4096)
        assert counts.sum() == 4096
        assert len(edges) == len(counts) + 1

    def test_per_bit_profile_localizes_damage(self):
        c = ripple_adder(6)
        profile = per_output_bit_error(c, _lsb_broken_adder(6), n_samples=4096)
        assert profile.shape == (7,)
        assert profile[0] == pytest.approx(0.5, abs=0.05)
        assert profile[1:].max() == 0.0

    def test_as_dict_keys(self):
        c = ripple_adder(4)
        d = analyze_errors(c, c, n_samples=256).as_dict()
        assert set(d) == {"er", "med", "nmed", "mred", "wce", "wcre", "mse", "ber"}


class TestParetoTools:
    def test_front_removes_dominated(self):
        pts = [(0.1, 0.9), (0.2, 0.8), (0.15, 0.95), (0.3, 0.7)]
        front = pareto_front(pts)
        assert front == [(0.1, 0.9), (0.2, 0.8), (0.3, 0.7)]

    def test_front_of_front_is_identity(self):
        pts = [(0.0, 1.0), (0.5, 0.5), (1.0, 0.1)]
        assert pareto_front(pareto_front(pts)) == pareto_front(pts)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 999))
    def test_front_members_mutually_nondominated(self, seed):
        rng = np.random.default_rng(seed)
        pts = [(float(e), float(c)) for e, c in rng.random((30, 2))]
        front = pareto_front(pts)
        for i, (e1, c1) in enumerate(front):
            for j, (e2, c2) in enumerate(front):
                if i != j:
                    assert not (e2 <= e1 and c2 < c1)

    def test_hypervolume_simple(self):
        front = [(0.0, 0.5)]
        assert hypervolume(front) == pytest.approx(0.5)

    def test_hypervolume_monotone_in_points(self):
        small = hypervolume([(0.2, 0.6)])
        larger = hypervolume([(0.2, 0.6), (0.5, 0.3)])
        assert larger > small

    def test_area_at_error(self):
        front = [(0.05, 0.8), (0.2, 0.5)]
        assert area_at_error(front, 0.01) == 1.0
        assert area_at_error(front, 0.1) == 0.8
        assert area_at_error(front, 0.5) == 0.5

    def test_exploration_front_integration(self):
        result = explore(
            ripple_adder(6),
            ExplorerConfig(
                n_samples=512, max_inputs=6, max_outputs=6, error_cap=0.3
            ),
        )
        front = exploration_front(result)
        assert front
        errs = [e for e, _ in front]
        costs = [c for _, c in front]
        assert errs == sorted(errs)
        assert costs == sorted(costs, reverse=True)


class TestMdlSelection:
    def test_low_rank_matrix_recovers_rank(self, rng):
        B = rng.random((64, 2)) < 0.4
        C = rng.random((2, 8)) < 0.4
        M = bool_product(B, C)
        best_f, result, costs = select_degree_mdl(M, method="asso+refine")
        assert best_f <= 3
        assert result.error == 0.0 or costs[best_f] <= costs[0]

    def test_description_length_penalizes_error(self, rng):
        M = rng.random((32, 6)) < 0.5
        exact = factorize(M, 5)
        rough = factorize(M, 1)
        dl_exact_factors = description_length(M, exact.B, exact.C)
        dl_rough = description_length(M, rough.B, rough.C)
        # the rough model has fewer factor bits but pays in error bits;
        # both costs must be positive and finite
        assert np.isfinite(dl_exact_factors) and dl_exact_factors > 0
        assert np.isfinite(dl_rough) and dl_rough > 0

    def test_costs_include_degree_zero(self, rng):
        M = rng.random((16, 4)) < 0.5
        _, _, costs = select_degree_mdl(M)
        assert 0 in costs

    def test_shape_mismatch_rejected(self, rng):
        M = rng.random((16, 4)) < 0.5
        from repro.errors import FactorizationError

        with pytest.raises(FactorizationError):
            description_length(M, np.zeros((8, 2), bool), np.zeros((2, 4), bool))


class TestEquivalence:
    def test_identical_proven(self):
        c = ripple_adder(5)
        res = equivalent(c, c.copy())
        assert res.equivalent and res.proven

    def test_differing_refuted_with_counterexample(self):
        res = equivalent(ripple_adder(5), _lsb_broken_adder(5))
        assert not res.equivalent
        assert res.counterexample is not None
        # counterexample must actually expose the difference
        from repro.circuit import simulate_patterns

        pat = res.counterexample[None, :]
        out_a = simulate_patterns(ripple_adder(5), pat)
        out_b = simulate_patterns(_lsb_broken_adder(5), pat)
        assert (out_a != out_b).any()

    def test_interface_mismatch_raises(self):
        with pytest.raises(CircuitError):
            equivalent(ripple_adder(4), ripple_adder(5))

    def test_wide_circuits_random_mode(self):
        c = mult8()  # 16 inputs: at the exhaustive boundary; widen it
        from repro.bench import mac8_32

        a = mac8_32()
        res = equivalent(a, a.copy(), n_random=4096)
        assert res.equivalent and not res.proven

    def test_miter_zero_iff_equivalent(self):
        a = ripple_adder(4)
        m = miter(a, a.copy())
        assert not truth_table(m)[:, 0].any()
        m2 = miter(a, _lsb_broken_adder(4))
        assert truth_table(m2)[:, 0].any()
