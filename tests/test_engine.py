"""Compiled exploration engine vs. the interpreted reference.

The contract under test (DESIGN.md "Exploration engine"): every compiled
path — whole-circuit gate programs, cone-scheduled sweeps, stacked
candidate gathers, delta-QoR — is **byte-identical** to the reference
interpreter, while touching only the candidate's cone."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, mult8, ripple_adder
from repro.circuit import CircuitBuilder, random_input_words
from repro.circuit.simulate import simulate_full_reference, unpack_bits
from repro.core.engine import (
    ENGINES,
    CompiledEvaluator,
    make_evaluator,
    simulate_full_compiled,
)
from repro.core.explorer import ExplorerConfig, explore
from repro.core.incremental import IncrementalEvaluator
from repro.core.profile import profile_windows
from repro.core.qor import QoREvaluator, QoRSpec
from repro.errors import ExplorationError, SimulationError
from repro.partition import decompose
from repro.runtime import RuntimeStats

from explore_fixtures import trajectory_key


def _random_circuit(rng, n_inputs=6, n_gates=40, n_outputs=5):
    b = CircuitBuilder("fuzz")
    sigs = [b.input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        op = rng.integers(0, 8)
        picks = rng.choice(len(sigs), size=3, replace=True)
        x, y, z = (sigs[int(p)] for p in picks)
        if op == 0:
            sigs.append(b.and_(x, y))
        elif op == 1:
            sigs.append(b.or_(x, y))
        elif op == 2:
            sigs.append(b.xor_(x, y))
        elif op == 3:
            sigs.append(b.not_(x))
        elif op == 4:
            sigs.append(b.mux(x, y, z))
        elif op == 5:
            sigs.append(b.nand_(x, y))
        elif op == 6:
            sigs.append(b.nor_(x, y))
        else:
            sigs.append(b.xnor_(x, y))
    for i, s in enumerate(sigs[-n_outputs:]):
        b.output(f"o{i}", s)
    return b.build()


class TestCompiledSimulateFull:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 300))
    def test_gate_program_matches_interpreter(self, seed, n):
        """Compiled SoA program == per-node interpreter, tails included."""
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng)
        words = random_input_words(circuit.n_inputs, n, rng)
        np.testing.assert_array_equal(
            simulate_full_compiled(circuit, words, n),
            simulate_full_reference(circuit, words, n),
        )

    def test_lut_and_const_nodes(self, rng):
        b = CircuitBuilder("lut")
        a, x = b.input("a"), b.input("b")
        na = b.not_(a)
        table = np.array([1, 0, 0, 1], dtype=bool)
        lut = b.lut((na, x), table)
        c1 = b.const(True)
        b.output("y0", b.and_(lut, c1))
        b.output("y1", b.const(False))
        circuit = b.build()
        n = 90
        words = random_input_words(circuit.n_inputs, n, rng)
        np.testing.assert_array_equal(
            simulate_full_compiled(circuit, words, n),
            simulate_full_reference(circuit, words, n),
        )

    def test_bench_circuits_match(self, rng):
        for circuit in (ripple_adder(8), butterfly(6), mult8()):
            words = random_input_words(circuit.n_inputs, 256, rng)
            np.testing.assert_array_equal(
                simulate_full_compiled(circuit, words, 256),
                simulate_full_reference(circuit, words, 256),
            )


class TestEvaluatorEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 200))
    def test_property_preview_commit_byte_identical(self, seed, n):
        """Property: over random circuits, windows, tables and commit
        orders, the compiled evaluator's batched previews, dirty rows and
        commits are byte-identical to the reference interpreter on every
        valid bit (full words when n % 64 == 0 — the engine does not
        reproduce the reference's unspecified gate tails, per DESIGN.md)."""
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng)
        windows = decompose(circuit, 5, 5)
        words = random_input_words(circuit.n_inputs, n, rng)
        ref = IncrementalEvaluator(circuit, windows, words, n)
        comp = CompiledEvaluator(circuit, windows, words, n)
        full_words = n % 64 == 0

        def assert_same(a, b):
            if full_words:
                np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(
                unpack_bits(a, n), unpack_bits(b, n)
            )

        np.testing.assert_array_equal(comp.exact_outputs, ref.exact_outputs)
        order = rng.permutation(len(windows))
        for wi in order:
            w = windows[int(wi)]
            tables = [
                rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
                for _ in range(3)
            ] + [w.table(circuit)]
            ref_outs = ref.preview_batch(w.index, tables)
            comp_pairs = comp.preview_batch_delta(w.index, tables)
            for ref_out, (comp_out, dirty_rows) in zip(ref_outs, comp_pairs):
                assert_same(comp_out, ref_out)
                # dirty rows are exact: a row is reported iff its valid
                # bits differ from the committed state
                cur = ref.current_outputs()
                changed = {
                    row
                    for row in range(cur.shape[0])
                    if not np.array_equal(
                        unpack_bits(ref_out[row], n), unpack_bits(cur[row], n)
                    )
                }
                assert set(dirty_rows) == changed
            commit_table = tables[int(rng.integers(0, len(tables)))]
            ref.commit(w.index, commit_table)
            comp.commit(w.index, commit_table)
            assert_same(comp.current_outputs(), ref.current_outputs())
        assert set(comp.committed) == set(ref.committed)
        for idx in ref.committed:
            np.testing.assert_array_equal(
                comp.committed_table(idx), ref.committed_table(idx)
            )

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 200))
    def test_property_preview_scan_matches_reference(self, seed, n):
        """Property: the stacked iteration scan (all windows' candidates
        in one wide pass) matches per-window reference previews on every
        valid bit, including across commits, and reuses memoized sweeps
        only where a fresh sweep would be identical."""
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng)
        windows = decompose(circuit, 5, 5)
        words = random_input_words(circuit.n_inputs, n, rng)
        ref = IncrementalEvaluator(circuit, windows, words, n)
        comp = CompiledEvaluator(circuit, windows, words, n)
        tables_by_window = {
            w.index: [
                rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
                for _ in range(2)
            ]
            for w in windows
        }
        for round_ in range(3):
            requests = [
                (w.index, tables_by_window[w.index]) for w in windows
            ]
            scans = comp.preview_scan(requests)
            for (index, tables), scanned in zip(requests, scans):
                ref_outs = ref.preview_batch(index, tables)
                assert len(scanned) == len(ref_outs)
                for ref_out, (comp_out, dirty_rows) in zip(
                    ref_outs, scanned
                ):
                    np.testing.assert_array_equal(
                        unpack_bits(comp_out, n), unpack_bits(ref_out, n)
                    )
                    cur = ref.current_outputs()
                    changed = {
                        row
                        for row in range(cur.shape[0])
                        if not np.array_equal(
                            unpack_bits(ref_out[row], n),
                            unpack_bits(cur[row], n),
                        )
                    }
                    assert set(dirty_rows) == changed
            # Commit one window (sometimes with a brand-new table) and
            # rescan: memo invalidation must keep results exact.
            w = windows[int(rng.integers(0, len(windows)))]
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            ref.commit(w.index, table)
            comp.commit(w.index, table)
            np.testing.assert_array_equal(
                unpack_bits(comp.current_outputs(), n),
                unpack_bits(ref.current_outputs(), n),
            )

    def test_recommit_and_exact_recommit(self, rng):
        circuit = ripple_adder(6)
        windows = decompose(circuit, 6, 6)
        n = 128  # multiple of 64: full-word identity must hold
        words = random_input_words(circuit.n_inputs, n, rng)
        ref = IncrementalEvaluator(circuit, windows, words, n)
        comp = CompiledEvaluator(circuit, windows, words, n)
        w = next(w for w in windows if w.n_outputs >= 2)
        low = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
        for table in (low, w.table(circuit), low):
            ref.commit(w.index, table)
            comp.commit(w.index, table)
            np.testing.assert_array_equal(
                comp.current_outputs(), ref.current_outputs()
            )

    def test_bad_table_shape_raises(self, rng):
        circuit = ripple_adder(6)
        windows = decompose(circuit, 6, 6)
        words = random_input_words(circuit.n_inputs, 64, rng)
        comp = CompiledEvaluator(circuit, windows, words, 64)
        with pytest.raises(SimulationError):
            comp.preview(windows[0].index, np.zeros((2, 1), dtype=bool))
        with pytest.raises(SimulationError):
            comp.commit(windows[0].index, np.zeros((2, 1), dtype=bool))

    def test_make_evaluator_selects_engine(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 64, rng)
        assert isinstance(
            make_evaluator(circuit, windows, words, 64, engine="compiled"),
            CompiledEvaluator,
        )
        ref = make_evaluator(circuit, windows, words, 64, engine="reference")
        assert type(ref) is IncrementalEvaluator
        with pytest.raises(SimulationError):
            make_evaluator(circuit, windows, words, 64, engine="turbo")


class TestDeltaQoR:
    @pytest.mark.parametrize("metric", ["mre", "mae", "nmae", "hamming"])
    def test_delta_bit_identical_to_full(self, metric, rng):
        """evaluate_delta == evaluate, bit for bit, for every metric."""
        circuit = butterfly(5)
        windows = decompose(circuit, 6, 6)
        n = 777  # not a multiple of 64
        words = random_input_words(circuit.n_inputs, n, rng)
        comp = CompiledEvaluator(circuit, windows, words, n)
        qor = QoREvaluator(circuit, comp.exact_outputs, n, QoRSpec(metric))
        qor.rebase(comp.exact_outputs)
        for w in windows:
            tables = [
                rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
                for _ in range(2)
            ]
            for out, dirty_rows in comp.preview_batch_delta(w.index, tables):
                assert qor.evaluate_delta(out, dirty_rows) == qor.evaluate(out)

    def test_delta_without_rebase_falls_back(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        n = 128
        words = random_input_words(circuit.n_inputs, n, rng)
        comp = CompiledEvaluator(circuit, windows, words, n)
        qor = QoREvaluator(circuit, comp.exact_outputs, n)
        w = windows[0]
        (out, dirty), = comp.preview_batch_delta(
            w.index, [~w.table(circuit)]
        )
        assert qor.evaluate_delta(out, dirty) == qor.evaluate(out)

    def test_delta_tracks_commits(self, rng):
        """After a commit + rebase, deltas stay identical to full evals."""
        circuit = butterfly(5)
        windows = decompose(circuit, 6, 6)
        n = 500
        words = random_input_words(circuit.n_inputs, n, rng)
        comp = CompiledEvaluator(circuit, windows, words, n)
        qor = QoREvaluator(circuit, comp.exact_outputs, n)
        qor.rebase(comp.exact_outputs)
        for w in windows:
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            comp.commit(w.index, table)
            qor.rebase(comp.current_outputs())
            probe = next(x for x in windows if x.n_outputs >= 2)
            t = rng.random((1 << probe.n_inputs, probe.n_outputs)) < 0.5
            (out, dirty), = comp.preview_batch_delta(probe.index, [t])
            assert qor.evaluate_delta(out, dirty) == qor.evaluate(out)


class TestExploreTrajectoryIdentity:
    @pytest.mark.parametrize("strategy", ["full", "lazy"])
    def test_trajectories_byte_identical(self, strategy, butterfly_profiled):
        """Full explore() runs agree between engines, bit for bit."""
        circuit, windows, profiles = butterfly_profiled
        base = dict(
            n_samples=700, max_inputs=8, max_outputs=8, strategy=strategy
        )
        ref = explore(
            circuit,
            ExplorerConfig(engine="reference", **base),
            windows=windows,
            profiles=profiles,
        )
        comp = explore(
            circuit,
            ExplorerConfig(engine="compiled", **base),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(ref) == trajectory_key(comp)
        assert ref.n_evaluations == comp.n_evaluations
        assert {k: id(v) for k, v in ref.chosen.items()}.keys() == {
            k: id(v) for k, v in comp.chosen.items()
        }.keys()

    def test_cone_counters(self, butterfly_profiled):
        """RuntimeStats cone/sweep accounting: the compiled engine runs
        the same number of preview sweeps but touches far fewer units."""
        circuit, windows, profiles = butterfly_profiled
        base = dict(n_samples=700, max_inputs=8, max_outputs=8)
        ref = explore(
            circuit,
            ExplorerConfig(engine="reference", **base),
            windows=windows,
            profiles=profiles,
        )
        comp = explore(
            circuit,
            ExplorerConfig(engine="compiled", **base),
            windows=windows,
            profiles=profiles,
        )
        rs, cs = ref.runtime_stats, comp.runtime_stats
        # Every candidate is either swept or served by a memoized sweep.
        assert rs.n_preview_cache_hits == 0
        assert cs.n_preview_sweeps + cs.n_preview_cache_hits == (
            rs.n_preview_sweeps
        )
        assert cs.n_preview_sweeps > 0
        assert rs.n_cones_compiled == 0
        # A cone recompiles at most once per window it contains (the
        # committed set only grows), plus the initial compile.
        n = len(windows)
        assert 0 < cs.n_cones_compiled <= n * (n + 1)
        assert rs.n_sweep_units > 0
        assert cs.n_sweep_units < rs.n_sweep_units

    def test_engine_config_validated(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(engine="turbo")
        assert ExplorerConfig().engine in ENGINES


class TestStatsThreading:
    def test_evaluator_stats_optional(self, rng):
        """Evaluators work with and without a stats accumulator."""
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 64, rng)
        stats = RuntimeStats()
        comp = CompiledEvaluator(circuit, windows, words, 64, stats=stats)
        w = windows[0]
        comp.preview_batch(w.index, [~w.table(circuit)])
        assert stats.n_preview_sweeps == 1
        assert stats.n_sweep_units >= 1
        assert "preview sweeps" in stats.summary()
