"""Runtime sanitizer: frozen hand-outs, tail asserts, unchanged trajectories.

The sanitizer contract (DESIGN.md "Static contracts"): under
``REPRO_SANITIZE=1`` / ``ExplorerConfig.sanitize`` every array a cache
hands out is read-only, packed seed/word arrays crossing engine
boundaries are asserted tail-clean, shard payloads are deep-audited at
submit time — and trajectories stay **byte-identical** to sanitize-off
runs, because the mode only adds tripwires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import (
    SANITIZE_ENV,
    assert_tail_clean,
    freeze,
    freeze_payload,
    frozen_view,
    sanitize_enabled,
)
from repro.bench import ripple_adder
from repro.circuit import random_input_words
from repro.core.engine import make_evaluator
from repro.core.explorer import ExplorerConfig, explore
from repro.core.incremental import IncrementalEvaluator
from repro.core.streaming import ChunkBaseCache
from repro.errors import ContractViolation
from repro.partition import decompose
from repro.runtime.cache import ProfileCache


# ---------------------------------------------------------------------------
# The sanitize switch.
# ---------------------------------------------------------------------------


def test_sanitize_enabled_env(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert not sanitize_enabled()
    for truthy in ("1", "true", "YES", "On"):
        monkeypatch.setenv(SANITIZE_ENV, truthy)
        assert sanitize_enabled()
    monkeypatch.setenv(SANITIZE_ENV, "0")
    assert not sanitize_enabled()


def test_sanitize_explicit_override_beats_env(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert not sanitize_enabled(False)
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert sanitize_enabled(True)


# ---------------------------------------------------------------------------
# Freezing primitives.
# ---------------------------------------------------------------------------


def test_freeze_is_in_place():
    arr = np.arange(4)
    assert freeze(arr) is arr
    with pytest.raises(ValueError):
        arr[0] = 9


def test_frozen_view_leaves_base_writable():
    arr = np.arange(4)
    view = frozen_view(arr)
    with pytest.raises(ValueError):
        view[0] = 9
    arr[0] = 9  # the owner's sanctioned repair path stays open
    assert view[0] == 9  # ...and the view sees it: same storage


def test_freeze_payload_recurses():
    payload = {
        "rows": [np.arange(3), (np.zeros(2), {np.uint64(1)})],
        "nested": {"deep": np.ones(2)},
    }
    freeze_payload(payload)
    for arr in (payload["rows"][0], payload["rows"][1][0],
                payload["nested"]["deep"]):
        with pytest.raises(ValueError):
            arr[0] = 5


def test_assert_tail_clean():
    # 70 samples in 2 words: 6 tail bits in the last word must be zero.
    words = np.zeros((3, 2), dtype=np.uint64)
    assert_tail_clean(words, 70, "fixture")
    words[1, 1] = np.uint64(1) << np.uint64(63)  # a garbage tail bit
    with pytest.raises(ContractViolation, match="tail"):
        assert_tail_clean(words, 70, "fixture")
    # Full final word (tail == 0): nothing to assert.
    assert_tail_clean(words, 128, "fixture")


# ---------------------------------------------------------------------------
# Cache hand-outs (the satellite regression: mutating a cache-returned
# array must raise under the sanitizer instead of corrupting later hits).
# ---------------------------------------------------------------------------


def test_chunk_base_cache_get_is_read_only_under_sanitize():
    cache = ChunkBaseCache(capacity=2, sanitize=True)
    values = np.arange(6, dtype=np.uint64).reshape(2, 3)
    cache.put(0, epoch=1, values=values)
    served = cache.get(0, min_epoch=0)
    with pytest.raises(ValueError):
        served[0, 0] = 7
    # The sanctioned repair path (commit folding) keeps a writable base…
    peeked = cache.peek(0)
    peeked[0, 0] = 7
    assert served[0, 0] == 7
    # …and memory accounting still recognizes the served view.
    assert cache.holds_array(served)
    assert cache.holds_array(peeked)


def test_chunk_base_cache_stays_writable_without_sanitize():
    cache = ChunkBaseCache(capacity=2, sanitize=False)
    cache.put(0, epoch=1, values=np.arange(4, dtype=np.uint64))
    cache.get(0, min_epoch=0)[0] = 9  # legal: sanitize off, no tripwire


def test_profile_cache_payload_frozen_under_sanitize(tmp_path):
    cache = ProfileCache(tmp_path, sanitize=True)
    key = ProfileCache.key_of(b"fixture")
    cache.put(key, {"tables": [np.arange(4)]})
    hit = cache.get(key)
    with pytest.raises(ValueError):
        hit["tables"][0][0] = 9


def test_profile_cache_payload_writable_without_sanitize(tmp_path):
    cache = ProfileCache(tmp_path, sanitize=False)
    key = ProfileCache.key_of(b"fixture")
    cache.put(key, {"tables": [np.arange(4)]})
    cache.get(key)["tables"][0][0] = 9


# ---------------------------------------------------------------------------
# Engine hand-outs.
# ---------------------------------------------------------------------------


@pytest.fixture
def small_setup():
    circuit = ripple_adder(4)
    windows = decompose(circuit, 6, 6)
    n = 256
    words = random_input_words(circuit.n_inputs, n, np.random.default_rng(3))
    return circuit, windows, words, n


def test_exact_outputs_handout_is_read_only(small_setup):
    # Unconditional (not just sanitize mode): exact_outputs is shared
    # reference state, and every legitimate consumer copies or reads.
    circuit, windows, words, n = small_setup
    ev = IncrementalEvaluator(circuit, windows, words, n)
    out = ev.exact_outputs
    with pytest.raises(ValueError):
        out[0, 0] = 1


@pytest.mark.parametrize("chunk_words", [None, 2])
def test_engine_runs_clean_under_sanitize(small_setup, chunk_words):
    # Engines must not trip their own tripwires: a full evaluator build
    # under sanitize exercises the frozen seed/index/memo paths.
    circuit, windows, words, n = small_setup
    ev = make_evaluator(circuit, windows, words, n,
                        chunk_words=chunk_words, sanitize=True)
    assert ev.exact_outputs.shape[0] == circuit.n_outputs


# ---------------------------------------------------------------------------
# The headline contract: sanitize changes nothing but failure modes.
# ---------------------------------------------------------------------------


def trajectory_bytes(result):
    return [
        (p.iteration, p.qor.hex(), p.est_area.hex())
        for p in result.trajectory
    ]


@pytest.mark.parametrize("chunk_words", [None, 2])
def test_trajectories_byte_identical_under_sanitize(tmp_path, chunk_words):
    circuit = ripple_adder(4)
    base = dict(max_inputs=6, max_outputs=6, n_samples=256,
                error_cap=0.2, chunk_words=chunk_words)
    plain = explore(circuit, ExplorerConfig(**base))
    sanitized = explore(circuit, ExplorerConfig(**base, sanitize=True))
    assert trajectory_bytes(plain) == trajectory_bytes(sanitized)
    assert len(plain.trajectory) > 1  # the run actually explored
