"""Contract linter: per-rule fixtures and suppression semantics.

Every shipped rule (DESIGN.md "Static contracts") gets three fixtures:
a *positive* snippet the rule must flag, the same snippet with an inline
``# contract-ok`` waiver the rule must honor, and a *clean* rewrite the
rule must not flag.  On top of that: the suppression machinery's own
findings (``bad-suppression`` / ``unused-suppression``), the static
shard-payload auditor, and the acceptance check that the shipped
package lints clean.
"""

from __future__ import annotations

import dataclasses
import typing
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import (
    AuditProblem,
    audit_payload,
    audit_payload_class,
    default_rules,
    lint_file,
    run_lint,
)
from repro.analysis.linter import module_tail
from repro.analysis.suppress import parse_suppressions
from repro.errors import ContractViolation
from repro.runtime.executor import SHARD_PAYLOAD_CLASSES, ScanShard


def lint_source(tmp_path: Path, source: str, filename: str = "fixture.py"):
    """Write ``source`` to a temp file and lint it with the full rule set."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, default_rules())


def rules_hit(findings):
    return sorted({f.rule for f in findings})


#: (rule name, positive fixture, clean rewrite).  The positive fixture
#: must produce exactly that rule; the clean rewrite must produce none.
RULE_FIXTURES = [
    (
        "set-iteration",
        "def f():\n"
        "    s = {1, 2, 3}\n"
        "    out = []\n"
        "    for x in s:\n"
        "        out.append(x)\n"
        "    return out\n",
        "def f():\n"
        "    s = {1, 2, 3}\n"
        "    out = []\n"
        "    for x in sorted(s):\n"
        "        out.append(x)\n"
        "    return out\n",
    ),
    (
        "unseeded-rng",
        "import numpy as np\n"
        "def f():\n"
        "    rng = np.random.default_rng()\n"
        "    return rng\n",
        "import numpy as np\n"
        "def f():\n"
        "    rng = np.random.default_rng(7)\n"
        "    return rng\n",
    ),
    (
        "float-reduction",
        "def f(err_rows):\n"
        "    return err_rows.sum()\n",
        "def f(err_rows):\n"
        "    return int(err_rows.sum())\n",
    ),
    (
        "cache-copy",
        "def f(cache, key):\n"
        "    return cache[key]\n",
        "def f(cache, key):\n"
        "    return cache[key].copy()\n",
    ),
    (
        "listing-order",
        "from pathlib import Path\n"
        "def f(root):\n"
        "    return [p.name for p in Path(root).glob('*.py')]\n",
        "from pathlib import Path\n"
        "def f(root):\n"
        "    return [p.name for p in sorted(Path(root).glob('*.py'))]\n",
    ),
    (
        "mutable-default",
        "def f(acc=[]):\n"
        "    return acc\n",
        "def f(acc=None):\n"
        "    return acc or []\n",
    ),
]


@pytest.mark.parametrize(
    "rule,positive,clean",
    RULE_FIXTURES,
    ids=[r for r, _, _ in RULE_FIXTURES],
)
def test_rule_positive_fixture(tmp_path, rule, positive, clean):
    findings = lint_source(tmp_path, positive)
    assert rules_hit(findings) == [rule]
    # Findings carry a DESIGN.md anchor and render as path:line:col.
    for f in findings:
        assert f.anchor.startswith("Static contracts")
        assert f"[{rule}]" in f.render()
        assert "DESIGN.md" in f.render()


@pytest.mark.parametrize(
    "rule,positive,clean",
    RULE_FIXTURES,
    ids=[r for r, _, _ in RULE_FIXTURES],
)
def test_rule_clean_fixture(tmp_path, rule, positive, clean):
    assert lint_source(tmp_path, clean) == []


@pytest.mark.parametrize(
    "rule,positive,clean",
    RULE_FIXTURES,
    ids=[r for r, _, _ in RULE_FIXTURES],
)
def test_rule_suppressed_fixture(tmp_path, rule, positive, clean):
    # Attach a trailing waiver to every flagged line; the file must then
    # lint clean (and no unused-suppression may fire either).
    findings = lint_source(tmp_path, positive)
    flagged = {f.line for f in findings}
    lines = positive.splitlines()
    for ln in flagged:
        lines[ln - 1] += f"  # contract-ok: {rule} -- fixture waiver"
    assert lint_source(tmp_path, "\n".join(lines) + "\n") == []


def test_full_line_suppression_covers_next_line(tmp_path):
    source = (
        "def f():\n"
        "    s = {1, 2}\n"
        "    # contract-ok: set-iteration -- commutative accumulation\n"
        "    for x in s:\n"
        "        print(x)\n"
    )
    assert lint_source(tmp_path, source) == []


def test_bad_suppression_missing_justification(tmp_path):
    source = (
        "def f():\n"
        "    s = {1, 2}\n"
        "    for x in s:  # contract-ok: set-iteration\n"
        "        print(x)\n"
    )
    findings = lint_source(tmp_path, source)
    # The waiver is malformed, so the original finding survives too.
    assert "bad-suppression" in rules_hit(findings)
    assert "set-iteration" in rules_hit(findings)


def test_unused_suppression_is_reported(tmp_path):
    source = (
        "def f():\n"
        "    return 1  # contract-ok: cache-copy -- nothing to waive here\n"
    )
    findings = lint_source(tmp_path, source)
    assert rules_hit(findings) == ["unused-suppression"]


def test_suppression_parses_multiple_rules():
    index = parse_suppressions(
        "x = 1  # contract-ok: cache-copy, set-iteration -- shared waiver\n"
    )
    (sup,) = index.by_line[1]
    assert sup.rules == ("cache-copy", "set-iteration")
    assert sup.justification == "shared waiver"
    assert index.matches("set-iteration", 1)
    assert index.matches("cache-copy", 1)
    assert not index.matches("listing-order", 1)


def test_syntax_error_is_a_finding(tmp_path):
    findings = lint_source(tmp_path, "def f(:\n")
    assert rules_hit(findings) == ["syntax-error"]


def test_module_tail_anchors_at_repro():
    assert module_tail(Path("/x/y/src/repro/core/qor.py")) == "repro/core/qor.py"
    assert module_tail(Path("/tmp/abc123/fixture.py")) == "tmp/abc123/fixture.py"


def test_sanctioned_rng_module_not_flagged(tmp_path):
    # flow.py is the sanctioned RNG construction site; a fixture that
    # *claims* that module tail must pass where a generic one fails.
    repro_dir = tmp_path / "repro"
    repro_dir.mkdir()
    source = (
        "import numpy as np\n"
        "def seed_everything():\n"
        "    return np.random.default_rng()\n"
    )
    assert lint_file(
        _write(repro_dir / "flow.py", source), default_rules()
    ) == []
    assert rules_hit(
        lint_file(_write(repro_dir / "other.py", source), default_rules())
    ) == ["unseeded-rng"]


def _write(path: Path, source: str) -> Path:
    path.write_text(source, encoding="utf-8")
    return path


class TestSearchPackageRngBan:
    """In ``repro/core/search/`` *any* RNG construction is flagged —
    seeded or not.  Searchers must draw from the generator the explorer
    threads in from ``ExplorerConfig.seed``; a private generator, even a
    seeded one, would fork the replay stream."""

    def test_seeded_construction_in_search_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def pick():\n"
            "    rng = np.random.default_rng(7)\n"
            "    return rng.random()\n",
            filename="repro/core/search/custom.py",
        )
        assert rules_hit(findings) == ["unseeded-rng"]
        assert "search package" in findings[0].message

    def test_unseeded_construction_in_search_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
            filename="repro/core/search/custom.py",
        )
        assert rules_hit(findings) == ["unseeded-rng"]

    def test_drawing_from_injected_rng_is_clean(self, tmp_path):
        # The sanctioned idiom: use the generator you were handed.
        assert lint_source(
            tmp_path,
            "def propose(candidates, rng):\n"
            "    return candidates[int(rng.integers(len(candidates)))]\n",
            filename="repro/core/search/custom.py",
        ) == []

    def test_seeded_construction_outside_search_still_clean(self, tmp_path):
        assert lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n",
            filename="repro/core/other.py",
        ) == []


class TestKernelPurity:
    """``@njit`` bodies in ``repro/kernels/`` must stay nopython-pure:
    no dict/set construction, no object-mode builtins, no set iteration
    (DESIGN.md "Kernel backends")."""

    DICT_IN_KERNEL = (
        "from numba import njit\n"
        "@njit(cache=True)\n"
        "def k(x):\n"
        "    table = {0: x}\n"
        "    return table[0]\n"
    )

    def test_dict_in_njit_kernel_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, self.DICT_IN_KERNEL, filename="repro/kernels/custom.py"
        )
        assert rules_hit(findings) == ["kernel-purity"]
        assert "dict construction" in findings[0].message

    def test_set_iteration_in_njit_kernel_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import numba\n"
            "@numba.njit\n"
            "def k(xs):\n"
            "    total = 0\n"
            "    for v in set(xs):\n"
            "        total += v\n"
            "    return total\n",
            filename="repro/kernels/custom.py",
        )
        assert "kernel-purity" in rules_hit(findings)

    def test_object_mode_builtin_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from numba import njit\n"
            "@njit(cache=True)\n"
            "def k(x):\n"
            "    return getattr(x, 'sum')()\n",
            filename="repro/kernels/custom.py",
        )
        assert rules_hit(findings) == ["kernel-purity"]
        assert "getattr()" in findings[0].message

    def test_undecorated_helper_is_clean(self, tmp_path):
        # Dispatch helpers in the kernels package run as ordinary
        # Python; only the nopython bodies are constrained.
        assert lint_source(
            tmp_path,
            "def dispatch(x):\n"
            "    table = {0: x}\n"
            "    return table[0]\n",
            filename="repro/kernels/custom.py",
        ) == []

    def test_same_code_outside_kernels_dir_is_clean(self, tmp_path):
        assert lint_source(
            tmp_path, self.DICT_IN_KERNEL, filename="repro/core/custom.py"
        ) == []

    def test_suppression_comment_honored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from numba import njit\n"
            "@njit(cache=True)\n"
            "def k(x):\n"
            "    table = {0: x}  # contract-ok: kernel-purity -- doc example\n"
            "    return table[0]\n",
            filename="repro/kernels/custom.py",
        )
        assert findings == []


def test_shipped_package_lints_clean():
    """Acceptance: ``blasys lint`` is clean on the shipped sources."""
    pkg_dir = Path(repro.__file__).resolve().parent
    findings = run_lint([str(pkg_dir)])
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# Static shard-payload auditor (the shard-pickle rule's engine).
# ---------------------------------------------------------------------------


def test_registered_payload_classes_audit_clean():
    for cls in SHARD_PAYLOAD_CLASSES:
        assert audit_payload_class(cls) == []


def test_auditor_rejects_function_local_class():
    @dataclasses.dataclass
    class LocalPayload:
        x: int = 0

    problems = audit_payload_class(LocalPayload)
    assert any("function-local" in p.message for p in problems)


def test_auditor_rejects_non_dataclass():
    class Bare:
        pass

    problems = audit_payload_class(Bare)
    assert any("dataclasses" in p.message for p in problems)


def test_auditor_rejects_callable_annotation():
    problems = audit_payload_class(_CallablePayload)
    assert any(
        "Callable" in p.message and p.location.endswith(".fn")
        for p in problems
    )


def test_auditor_rejects_mutable_default_factory():
    problems = audit_payload_class(_FactoryPayload)
    assert any("default_factory" in p.message for p in problems)


def test_auditor_handles_stringized_annotations():
    # Payload classes use ``from __future__ import annotations``, so
    # field.type is a *string* — the auditor must still see through it.
    problems = audit_payload_class(_StringAnnotated)
    assert any(p.location.endswith(".fn") for p in problems)


@dataclasses.dataclass
class _CallablePayload:
    # Unquoted on purpose: ``from __future__ import annotations`` (top of
    # this module) stringizes it, matching the payload classes' style.
    fn: typing.Callable[[int], int] = None  # type: ignore[assignment]


@dataclasses.dataclass
class _FactoryPayload:
    rows: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class _StringAnnotated:
    fn: "Callable[[], int]" = None  # type: ignore[assignment]  # noqa: F821


# ---------------------------------------------------------------------------
# Runtime payload walk: a lambda smuggled into a real ScanShard.
# ---------------------------------------------------------------------------


def make_shard(**overrides) -> ScanShard:
    base = dict(
        chunks=(),
        requests=((0, (np.zeros(2, dtype=np.uint64),)),),
        committed=(),
        epoch=0,
        chunk_epochs=((0, 0),),
        metric="mred",
    )
    base.update(overrides)
    return ScanShard(**base)


def test_clean_shard_passes_runtime_audit():
    assert audit_payload(make_shard(), "ScanShard[0]") == []


def test_lambda_in_shard_clone_is_rejected():
    # The static field audit cannot see this: the annotation is a plain
    # tuple, the lambda arrives dynamically.  The deep walk must.
    shard = make_shard(requests=((0, (lambda words: words,)),))
    with pytest.raises(ContractViolation, match="lambda"):
        audit_payload(shard, "ScanShard[0]")
    problems = audit_payload(shard, "ScanShard[0]", strict=False)
    assert any(isinstance(p, AuditProblem) and "lambda" in p.message
               for p in problems)


def test_generator_in_payload_is_rejected():
    shard = make_shard(committed=((0, (w for w in range(3))),))
    with pytest.raises(ContractViolation, match="GeneratorType|generator"):
        audit_payload(shard, "ScanShard[0]")
