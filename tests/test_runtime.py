"""Tests for the parallel, cache-backed profiling runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.core.explorer import ExplorerConfig, explore
from repro.core.profile import WindowTask, profile_windows
from repro.flow import run_blasys
from repro.partition import decompose
from repro.runtime import (
    ProfileCache,
    RuntimeStats,
    parallel_map,
    resolve_jobs,
    run_tasks,
)
from repro.runtime.cache import canonical_circuit_bytes


def _square(x):
    return x * x


def _assert_profiles_identical(pa, pb):
    """Byte-level equality of two profile lists (same windows, same bits)."""
    assert len(pa) == len(pb)
    for a, b in zip(pa, pb):
        assert a.window == b.window
        np.testing.assert_array_equal(a.table, b.table)
        assert a.exact_area == b.exact_area
        if a.weights is None:
            assert b.weights is None
        else:
            assert a.weights.tobytes() == b.weights.tobytes()
        assert set(a.variants) == set(b.variants)
        for f in a.variants:
            va, vb = a.variants[f], b.variants[f]
            assert len(va) == len(vb)
            for x, y in zip(va, vb):
                assert (x.f, x.kind, x.area, x.bmf_error) == (
                    y.f, y.kind, y.area, y.bmf_error
                )
                assert x.table.tobytes() == y.table.tobytes()
                assert x.B.tobytes() == y.B.tobytes()
                assert x.C.tobytes() == y.C.tobytes()
                assert type(x.replacement) is type(y.replacement)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestRunTasks:
    def test_results_in_task_order(self):
        results, stats = run_tasks([3, 1, 2], _square)
        assert results == [9, 1, 4]
        assert stats.n_tasks == 3 and stats.tasks_computed == 3

    def test_dedup_computes_unique_tasks_once(self):
        results, stats = run_tasks([2, 2, 3, 2], _square, key_fn=str)
        assert results == [4, 4, 9, 4]
        assert stats.tasks_computed == 2
        assert stats.dedup_hits == 2

    def test_cache_round_trip(self, tmp_path):
        cache = ProfileCache(tmp_path / "c")
        r1, s1 = run_tasks([4, 5], _square, key_fn=str, cache=cache)
        assert r1 == [16, 25] and s1.cache_misses == 2 and cache.stores == 2
        cache2 = ProfileCache(tmp_path / "c")
        r2, s2 = run_tasks([4, 5], _square, key_fn=str, cache=cache2)
        assert r2 == [16, 25]
        assert s2.cache_hits == 2 and s2.tasks_computed == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ProfileCache(tmp_path)
        run_tasks([7], _square, key_fn=str, cache=cache)
        for f in cache.path.glob("*.pkl"):
            f.write_bytes(b"garbage")
        results, stats = run_tasks([7], _square, key_fn=str,
                                   cache=ProfileCache(tmp_path))
        assert results == [49] and stats.tasks_computed == 1


class TestCanonicalCircuitBytes:
    def test_names_do_not_matter(self):
        a = ripple_adder(4)
        b = ripple_adder(4)
        b.name = "renamed"
        assert canonical_circuit_bytes(a) == canonical_circuit_bytes(b)

    def test_structure_matters(self):
        assert canonical_circuit_bytes(ripple_adder(4)) != canonical_circuit_bytes(
            ripple_adder(5)
        )


@pytest.fixture(scope="module")
def adder_windows():
    circuit = ripple_adder(8)
    return circuit, decompose(circuit, 8, 8)


class TestParallelProfiling:
    def test_jobs_do_not_change_profiles(self, adder_windows):
        """jobs=1 and jobs=4 must produce byte-identical WindowProfiles."""
        circuit, windows = adder_windows
        serial = profile_windows(
            circuit, windows, weight_mode="significance", jobs=1
        )
        parallel = profile_windows(
            circuit, windows, weight_mode="significance", jobs=4
        )
        _assert_profiles_identical(serial, parallel)

    def test_identical_windows_deduped(self, adder_windows):
        """Structurally identical windows (adder slices) compute once."""
        circuit, windows = adder_windows
        tables = {w.table(circuit).tobytes() for w in windows}
        stats = RuntimeStats()
        # estimate_area off: keys then depend only on table + parameters,
        # so equal-table windows must collapse onto one task.
        profile_windows(
            circuit, windows, weight_mode="uniform", estimate_area=False,
            runtime_stats=stats,
        )
        assert stats.n_tasks == len(windows)
        if len(tables) < len(windows):
            assert stats.dedup_hits > 0
            assert stats.tasks_computed < len(windows)

    def test_cache_key_independent_of_window_identity(self, adder_windows):
        circuit, windows = adder_windows
        profiles = profile_windows(circuit, windows, estimate_area=False)
        assert [p.window for p in profiles] == list(windows)


class TestProfileCacheWarmRuns:
    def test_warm_run_does_zero_bmf_work(self, adder_windows, tmp_path):
        circuit, windows = adder_windows
        cold_stats = RuntimeStats()
        cold = profile_windows(
            circuit, windows, weight_mode="significance",
            cache=ProfileCache(tmp_path), runtime_stats=cold_stats,
        )
        assert cold_stats.n_factorizations > 0
        assert cold_stats.n_syntheses > 0
        warm_stats = RuntimeStats()
        warm = profile_windows(
            circuit, windows, weight_mode="significance",
            cache=ProfileCache(tmp_path), runtime_stats=warm_stats,
        )
        assert warm_stats.tasks_computed == 0
        assert warm_stats.n_factorizations == 0
        assert warm_stats.n_syntheses == 0
        assert warm_stats.cache_hits + warm_stats.dedup_hits == len(windows)
        _assert_profiles_identical(cold, warm)

    def test_parameter_changes_miss(self, adder_windows, tmp_path):
        circuit, windows = adder_windows
        profile_windows(circuit, windows, cache=ProfileCache(tmp_path))
        stats = RuntimeStats()
        profile_windows(
            circuit, windows, selection="cone",
            cache=ProfileCache(tmp_path), runtime_stats=stats,
        )
        assert stats.cache_hits == 0


class TestExplorerIntegration:
    def test_explore_records_runtime_stats(self, tmp_path):
        circuit = butterfly(6)
        config = ExplorerConfig(
            n_samples=512, max_inputs=8, max_outputs=8, max_iterations=2,
            jobs=2, cache_dir=str(tmp_path),
        )
        result = explore(circuit, config)
        assert result.runtime_stats is not None
        assert result.runtime_stats.n_tasks == len(result.windows)

    def test_explore_jobs_deterministic_trajectory(self):
        circuit = ripple_adder(6)
        base = dict(n_samples=512, max_inputs=6, max_outputs=6, max_iterations=4)
        serial = explore(circuit, ExplorerConfig(jobs=1, **base))
        parallel = explore(circuit, ExplorerConfig(jobs=4, **base))
        assert [
            (p.window_index, p.f, p.qor, p.est_area) for p in serial.trajectory
        ] == [
            (p.window_index, p.f, p.qor, p.est_area) for p in parallel.trajectory
        ]

    def test_passed_in_profiles_skip_runtime(self, adder_windows):
        circuit, windows = adder_windows
        profiles = profile_windows(circuit, windows)
        result = explore(
            circuit,
            ExplorerConfig(
                n_samples=512, max_inputs=8, max_outputs=8, max_iterations=1
            ),
            windows=windows,
            profiles=profiles,
        )
        # Profiling was skipped entirely (no tasks, no factorizations);
        # the stats still account for the exploration engine's sweeps.
        stats = result.runtime_stats
        assert stats.n_tasks == 0
        assert stats.tasks_computed == 0
        assert stats.n_factorizations == 0
        assert stats.n_preview_sweeps > 0


class TestFlowWarmCache:
    def test_warm_run_blasys_reuses_everything(self, tmp_path):
        """A warm-cache run on a Table-2 benchmark (butterfly) performs zero
        factorizations and zero variant syntheses."""
        from repro.bench import get_benchmark

        circuit = get_benchmark("but").factory()
        config = ExplorerConfig(
            n_samples=512, max_inputs=8, max_outputs=8,
            cache_dir=str(tmp_path), jobs=1,
        )
        cold = run_blasys(
            circuit, thresholds=[0.2], config=config, final_samples=2048
        )
        warm = run_blasys(
            circuit, thresholds=[0.2], config=config, final_samples=2048
        )
        stats = warm.exploration.runtime_stats
        assert stats.tasks_computed == 0
        assert stats.n_factorizations == 0
        assert stats.n_syntheses == 0
        assert cold.designs.keys() == warm.designs.keys()
        for thr in cold.designs:
            assert (
                cold.designs[thr].metrics.area_um2
                == warm.designs[thr].metrics.area_um2
            )
        assert "runtime:" in warm.summary()

    def test_cache_key_material_covers_task_fields(self, adder_windows):
        circuit, windows = adder_windows
        w = windows[0]
        from repro.core.profile import ProfileParams

        params = ProfileParams()
        table = w.table(circuit)
        sub = w.subcircuit(circuit)
        base = WindowTask(table, None, sub, params).cache_key()
        flipped = table.copy()
        flipped[0, 0] = not flipped[0, 0]
        assert WindowTask(flipped, None, sub, params).cache_key() != base
        weights = np.ones(w.n_outputs)
        assert WindowTask(table, weights, sub, params).cache_key() != base
        assert (
            WindowTask(
                table, None, sub, ProfileParams(selection="cone")
            ).cache_key()
            != base
        )
        # library cell contents matter, not just the library name
        from dataclasses import replace as dc_replace

        from repro.synth.library import Library

        lib = params.library
        cells = list(lib.cells)
        bumped = [dc_replace(cells[0], area=cells[0].area * 2)] + cells[1:]
        relibbed = ProfileParams(library=Library(lib.name, bumped))
        assert WindowTask(table, None, sub, relibbed).cache_key() != base


class TestCorruptQuarantineRetention:
    """S2: quarantined ``*.pkl.corrupt`` files are bounded, not hoarded."""

    @staticmethod
    def _plant_corrupt(cache, n, t0=1_000_000.0):
        """Create n quarantined files with strictly increasing mtimes."""
        import os

        paths = []
        for i in range(n):
            p = cache.path / f"{i:02d}deadbeef.pkl.corrupt"
            p.write_bytes(b"garbage")
            os.utime(p, (t0 + i, t0 + i))
            paths.append(p)
        return paths

    def test_negative_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="corrupt_keep"):
            ProfileCache(tmp_path, corrupt_keep=-1)
        with pytest.raises(ValueError, match="corrupt_max_age_s"):
            ProfileCache(tmp_path, corrupt_max_age_s=-0.5)

    def test_count_bound_deletes_oldest_first(self, tmp_path):
        cache = ProfileCache(tmp_path, corrupt_keep=2)
        paths = self._plant_corrupt(cache, 5)
        assert cache.purge_corrupt() == 3
        assert cache.corrupt_purged == 3
        survivors = sorted(p.name for p in cache.path.glob("*.pkl.corrupt"))
        assert survivors == [paths[3].name, paths[4].name]  # the newest two
        # Idempotent once within bound.
        assert cache.purge_corrupt() == 0

    def test_mtime_ties_break_by_name_deterministically(self, tmp_path):
        import os

        cache = ProfileCache(tmp_path, corrupt_keep=1)
        for name in ("cc.pkl.corrupt", "aa.pkl.corrupt", "bb.pkl.corrupt"):
            p = cache.path / name
            p.write_bytes(b"garbage")
            os.utime(p, (1_000_000.0, 1_000_000.0))  # identical mtimes
        cache.purge_corrupt()
        survivors = [p.name for p in cache.path.glob("*.pkl.corrupt")]
        assert survivors == ["cc.pkl.corrupt"]  # largest name survives a tie

    def test_age_bound(self, tmp_path):
        cache = ProfileCache(tmp_path, corrupt_keep=None,
                             corrupt_max_age_s=3600.0)
        old = self._plant_corrupt(cache, 2)  # mtimes around t=1e6, ancient
        fresh = cache.path / "fresh.pkl.corrupt"
        fresh.write_bytes(b"garbage")  # mtime = now, within the hour
        assert cache.purge_corrupt() == 2
        assert not old[0].exists() and not old[1].exists()
        assert fresh.exists()

    def test_unbounded_mode_keeps_everything(self, tmp_path):
        cache = ProfileCache(tmp_path, corrupt_keep=None)
        self._plant_corrupt(cache, 4)
        assert cache.purge_corrupt() == 0
        assert len(list(cache.path.glob("*.pkl.corrupt"))) == 4

    def test_quarantine_triggers_sweep(self, tmp_path):
        # corrupt_keep=0: a corrupt entry is quarantined and immediately
        # reclaimed — get() stays a plain miss either way.
        cache = ProfileCache(tmp_path, corrupt_keep=0)
        key = cache.key_of(b"token")
        cache.put(key, {"x": 1})
        cache._file(key).write_bytes(b"garbage")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert cache.corrupt_purged == 1
        assert not list(cache.path.glob("*.pkl.corrupt"))

    def test_run_tasks_folds_purged_into_stats(self, tmp_path):
        cache = ProfileCache(tmp_path, corrupt_keep=0)
        run_tasks([7], _square, key_fn=str, cache=cache)
        for f in cache.path.glob("*.pkl"):
            f.write_bytes(b"garbage")
        results, stats = run_tasks([7], _square, key_fn=str, cache=cache)
        assert results == [49]
        assert stats.cache_corrupt == 1
        assert stats.cache_corrupt_purged == 1
        assert "1 purged" in stats.resilience_summary()


class TestServiceStats:
    def test_service_summary_and_absorb(self):
        a = RuntimeStats(jobs_admitted=2, jobs_rejected=1, jobs_completed=1,
                         jobs_failed=1, jobs_recovered=1)
        b = RuntimeStats(jobs_admitted=1, jobs_cancelled=1,
                         cache_corrupt_purged=2)
        a.absorb(b)
        assert a.jobs_admitted == 3 and a.jobs_cancelled == 1
        assert a.cache_corrupt_purged == 2
        summary = a.service_summary()
        assert "3 admitted" in summary and "1 rejected" in summary
        assert "recovered" in summary

    def test_service_summary_idle_shape(self):
        # Always reports (the daemon prints it at stop); the recovered
        # clause only appears when recovery actually happened.
        summary = RuntimeStats().service_summary()
        assert summary.startswith("service: 0 admitted")
        assert "recovered" not in summary
