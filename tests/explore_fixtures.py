"""Shared exploration-test helpers, importable from test modules.

These live outside ``conftest.py`` because test files import them
directly (``from explore_fixtures import trajectory_key``) and the bare
module name ``conftest`` is ambiguous when pytest collects the whole
repository (``benchmarks/conftest.py`` claims it first).  Fixtures stay
in ``tests/conftest.py``, which re-exports these helpers.
"""

from __future__ import annotations

from repro.core.explorer import ExplorerConfig


def trajectory_key(result):
    """Byte-comparison key over every TrajectoryPoint field.

    Includes the strategy/seed/move_id replay fields, so two runs agree
    only if the whole replay record matches — not just the QoR floats.
    """
    return [
        (p.iteration, p.window_index, p.f, p.qor, p.est_area, p.fs,
         p.strategy, p.seed, p.move_id)
        for p in result.trajectory
    ]


def explorer_config(**overrides) -> ExplorerConfig:
    """CI-sized ExplorerConfig matching the shared profiled fixtures.

    The defaults pair with ``butterfly_profiled`` / ``adder8_profiled``
    (8x8 decomposition, 700 samples: words_for(700) = 11, so
    ``chunk_words=3`` gives 4 chunks when a test goes streaming).
    """
    base = dict(n_samples=700, max_inputs=8, max_outputs=8)
    base.update(overrides)
    return ExplorerConfig(**base)
