"""Cross-module property tests: fuzzing the whole pipeline.

These tests wire several subsystems together on randomly generated
circuits and check the global invariants that the flow's correctness rests
on: lowering and resynthesis preserve function, incremental evaluation
agrees with rebuild-and-resimulate under *arbitrary* (not just factored)
window tables, realization agrees with the simulated trajectory, and the
field-algebra flow works end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, ripple_adder
from repro.circuit import (
    CircuitBuilder,
    equivalent,
    random_input_words,
    simulate_outputs,
    truth_table,
)
from repro.core.incremental import IncrementalEvaluator
from repro.core.explorer import ExplorerConfig, explore
from repro.flow import measure_error
from repro.partition import (
    TableReplacement,
    decompose,
    substitute_windows,
    validate_decomposition,
)
from repro.synth import lower_for_mapping, resynthesize


def _random_circuit(rng, n_inputs=5, n_gates=30, n_outputs=4):
    b = CircuitBuilder("fuzz")
    sigs = [b.input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        op = rng.integers(0, 6)
        picks = rng.choice(len(sigs), size=3, replace=True)
        x, y, z = (sigs[int(p)] for p in picks)
        if op == 0:
            sigs.append(b.and_(x, y))
        elif op == 1:
            sigs.append(b.or_(x, y))
        elif op == 2:
            sigs.append(b.xor_(x, y))
        elif op == 3:
            sigs.append(b.not_(x))
        elif op == 4:
            sigs.append(b.mux(x, y, z))
        else:
            sigs.append(b.nand_(x, y))
    for i, s in enumerate(sigs[-n_outputs:]):
        b.output(f"o{i}", s)
    return b.build()


class TestLoweringProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_lowering_preserves_function(self, seed):
        rng = np.random.default_rng(seed)
        c = _random_circuit(rng)
        np.testing.assert_array_equal(
            truth_table(lower_for_mapping(c)), truth_table(c)
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_resynthesis_preserves_function(self, seed):
        rng = np.random.default_rng(seed)
        c = _random_circuit(rng)
        np.testing.assert_array_equal(
            truth_table(resynthesize(c)), truth_table(c)
        )


class TestIncrementalFuzz:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_arbitrary_tables_match_rebuild(self, seed):
        """Commit *random* tables (not factored ones) to random windows in a
        random order; the incremental cache must track a full rebuild."""
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng, n_inputs=6, n_gates=40)
        if circuit.n_gates < 3:
            return
        windows = decompose(circuit, 5, 4)
        validate_decomposition(circuit, windows, 5, 4)
        n = 512
        words = random_input_words(circuit.n_inputs, n, rng)
        ev = IncrementalEvaluator(circuit, windows, words, n)
        committed = {}
        order = rng.permutation(len(windows))
        for wi in order[: min(4, len(windows))]:
            w = windows[int(wi)]
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            ev.commit(w.index, table)
            committed[w.index] = table
            rebuilt = substitute_windows(
                circuit,
                windows,
                {i: TableReplacement(t) for i, t in committed.items()},
            )
            np.testing.assert_array_equal(
                ev.current_outputs(), simulate_outputs(rebuilt, words)
            )


class TestExplorationRealization:
    @pytest.mark.parametrize("algebra", ["semiring", "field"])
    def test_realized_design_matches_committed_tables(self, algebra):
        """The realized netlist must compute exactly what the exploration
        simulated: errors measured on realization equal the trajectory's
        (same seed, same samples)."""
        circuit = ripple_adder(6)
        config = ExplorerConfig(
            n_samples=1024,
            max_inputs=6,
            max_outputs=6,
            max_iterations=5,
            algebra=algebra,
        )
        result = explore(circuit, config)
        point = result.trajectory[-1]
        realized = result.realize(point)
        # re-measure on the exploration's own sample seed
        measured = measure_error(
            circuit,
            realized,
            n_samples=config.n_samples,
            seed=config.seed,
            spec=config.qor,
        )
        assert measured["mre"] == pytest.approx(point.qor, abs=1e-12)

    def test_field_algebra_flow_end_to_end(self):
        circuit = butterfly(5)
        config = ExplorerConfig(
            n_samples=1024, max_inputs=8, max_outputs=8,
            error_cap=0.3, algebra="field",
        )
        result = explore(circuit, config)
        assert len(result.trajectory) > 2
        point = result.best_point(0.3)
        realized = result.realize(point)
        assert realized.output_names() == circuit.output_names()


class TestSubstitutionEquivalenceProof:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_exact_substitution_proven_equivalent(self, seed):
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng, n_inputs=5, n_gates=25)
        if circuit.n_gates == 0:
            return
        windows = decompose(circuit, 5, 4)
        replacements = {
            w.index: TableReplacement(w.table(circuit)) for w in windows
        }
        rebuilt = substitute_windows(circuit, windows, replacements)
        res = equivalent(circuit, rebuilt)
        assert res.equivalent and res.proven
