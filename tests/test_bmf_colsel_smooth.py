"""Tests for column-subset BMF and literal-aware smoothing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bmf import (
    bool_product,
    column_select_bmf,
    factorize,
    hamming_distance,
    numeric_weights,
    smooth_B_ties,
    update_B_exact,
    weighted_error,
)
from repro.errors import FactorizationError


class TestColumnSelect:
    def test_B_is_column_subset(self, rng):
        M = rng.random((32, 6)) < 0.5
        res = column_select_bmf(M, 3)
        assert len(res.selected) == 3
        np.testing.assert_array_equal(res.B, M[:, list(res.selected)])

    def test_kept_columns_are_exact(self, rng):
        M = rng.random((32, 6)) < 0.5
        res = column_select_bmf(M, 3)
        approx = bool_product(res.B, res.C)
        for j in res.selected:
            np.testing.assert_array_equal(approx[:, j], M[:, j])

    def test_full_degree_is_exact(self, rng):
        M = rng.random((16, 4)) < 0.5
        res = column_select_bmf(M, 4)
        assert res.error == 0.0

    def test_error_non_increasing_in_f(self, rng):
        M = rng.random((64, 6)) < 0.4
        errors = [column_select_bmf(M, f).error for f in range(1, 7)]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_error_matches_product(self, rng):
        M = rng.random((32, 5)) < 0.5
        res = column_select_bmf(M, 2)
        assert res.error == pytest.approx(
            hamming_distance(M, bool_product(res.B, res.C))
        )

    def test_weighted_selection_prefers_heavy_columns(self):
        rng = np.random.default_rng(11)
        M = rng.random((64, 4)) < 0.5
        w = numeric_weights(4)
        res = column_select_bmf(M, 1, weights=w)
        # the kept column should reproduce the heaviest column exactly
        approx = bool_product(res.B, res.C)
        np.testing.assert_array_equal(approx[:, 3], M[:, 3])

    def test_field_algebra(self, rng):
        M = rng.random((16, 4)) < 0.5
        res = column_select_bmf(M, 2, algebra="field")
        assert res.error == pytest.approx(
            hamming_distance(M, bool_product(res.B, res.C, "field"))
        )

    def test_invalid_degree(self, rng):
        M = rng.random((8, 3)) < 0.5
        with pytest.raises(FactorizationError):
            column_select_bmf(M, 0)
        with pytest.raises(FactorizationError):
            column_select_bmf(M, 4)


class TestSmoothBTies:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_zero_slack_preserves_optimal_error(self, seed):
        rng = np.random.default_rng(seed)
        M = rng.random((32, 5)) < 0.5
        C = rng.random((2, 5)) < 0.5
        opt = update_B_exact(M, C)
        smooth = smooth_B_ties(M, C, slack=0.0)
        e_opt = weighted_error(M, bool_product(opt, C))
        e_smooth = weighted_error(M, bool_product(smooth, C))
        assert e_smooth == pytest.approx(e_opt)

    def test_slack_bounds_extra_error(self, rng):
        M = rng.random((64, 5)) < 0.5
        C = rng.random((3, 5)) < 0.5
        opt_err = weighted_error(M, bool_product(update_B_exact(M, C), C))
        slack = 1.0
        smooth = smooth_B_ties(M, C, slack=slack)
        err = weighted_error(M, bool_product(smooth, C))
        assert err <= opt_err + slack * M.shape[0] + 1e-9

    def test_negative_slack_rejected(self, rng):
        M = rng.random((8, 3)) < 0.5
        C = rng.random((2, 3)) < 0.5
        with pytest.raises(FactorizationError):
            smooth_B_ties(M, C, slack=-1.0)

    def test_smoothing_reduces_column_entropy(self):
        # On a structured table the smoothed B should merge into fewer,
        # larger cubes than arbitrary tie-breaking.
        from repro.bench import ripple_adder
        from repro.circuit import truth_table
        from repro.synth import espresso

        M = truth_table(ripple_adder(3))  # 64 x 4
        result = factorize(M, 2, smooth=False)
        raw_cubes = sum(
            len(espresso(result.B[:, l])) for l in range(result.B.shape[1])
        )
        smoothed = smooth_B_ties(M, result.C)
        smooth_cubes = sum(
            len(espresso(smoothed[:, l])) for l in range(smoothed.shape[1])
        )
        assert smooth_cubes <= raw_cubes


class TestFactorizeSmoothing:
    def test_smoothing_never_hurts_error(self, rng):
        for _ in range(10):
            M = rng.random((32, 5)) < 0.5
            plain = factorize(M, 2, smooth=False)
            smoothed = factorize(M, 2, smooth=True)
            assert smoothed.error <= plain.error + 1e-9

    def test_smooth_slack_changes_product(self, rng):
        M = rng.random((64, 5)) < 0.5
        a = factorize(M, 2, smooth_slack=0.0)
        b = factorize(M, 2, smooth_slack=2.0)
        # with slack the error may grow but must stay finite and the
        # factorization valid
        np.testing.assert_array_equal(b.product, bool_product(b.B, b.C))
        assert b.error >= a.error - 1e-9
