"""Tests for the structural Verilog reader (incl. writer round-trips)."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, ripple_adder
from repro.circuit import (
    CircuitBuilder,
    read_verilog,
    truth_table,
    write_verilog,
)
from repro.errors import ParseError


def _roundtrip(circuit):
    buf = io.StringIO()
    write_verilog(circuit, buf)
    return read_verilog(io.StringIO(buf.getvalue()))


class TestRoundtrip:
    def test_full_adder(self, full_adder_circuit):
        back = _roundtrip(full_adder_circuit)
        np.testing.assert_array_equal(
            truth_table(back), truth_table(full_adder_circuit)
        )

    def test_ripple_adder(self):
        c = ripple_adder(5)
        np.testing.assert_array_equal(
            truth_table(_roundtrip(c)), truth_table(c)
        )

    def test_butterfly_with_mux_and_xor(self):
        c = butterfly(4)
        np.testing.assert_array_equal(
            truth_table(_roundtrip(c)), truth_table(c)
        )

    def test_lut_circuit(self, rng):
        b = CircuitBuilder("lutty")
        ins = [b.input(f"i{k}") for k in range(4)]
        b.output("y", b.lut(ins, rng.random(16) < 0.5))
        c = b.build()
        np.testing.assert_array_equal(
            truth_table(_roundtrip(c)), truth_table(c)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        b = CircuitBuilder("rand")
        sigs = [b.input(f"i{k}") for k in range(4)]
        for _ in range(15):
            op = rng.integers(0, 5)
            x, y, z = (sigs[int(i)] for i in rng.choice(len(sigs), 3))
            sigs.append(
                [b.and_(x, y), b.or_(x, y), b.xor_(x, y), b.not_(x),
                 b.mux(x, y, z)][op]
            )
        b.output("o", sigs[-1])
        c = b.build()
        np.testing.assert_array_equal(
            truth_table(_roundtrip(c)), truth_table(c)
        )


class TestHandwritten:
    def test_simple_module(self):
        text = """
        // a comment
        module m(a, b, y);
          input a; input b;
          output y;
          wire w0;
          assign w0 = a & ~b;
          assign y = w0 | (a ^ b);
        endmodule
        """
        c = read_verilog(io.StringIO(text))
        tt = truth_table(c)[:, 0]
        for r in range(4):
            a, b = r & 1, (r >> 1) & 1
            assert tt[r] == bool((a and not b) or (a ^ b))

    def test_ternary_semantics(self):
        text = """module m(s, a, b, y);
          input s, a, b; output y;
          assign y = s ? b : a;
        endmodule"""
        c = read_verilog(io.StringIO(text))
        tt = truth_table(c)[:, 0]
        for r in range(8):
            s, a, b = r & 1, (r >> 1) & 1, (r >> 2) & 1
            assert tt[r] == bool(b if s else a)

    def test_constants(self):
        text = """module m(a, y0, y1);
          input a; output y0, y1;
          assign y0 = a & 1'b0;
          assign y1 = a | 1'b1;
        endmodule"""
        c = read_verilog(io.StringIO(text))
        tt = truth_table(c)
        assert not tt[:, 0].any() and tt[:, 1].all()

    def test_block_comments_stripped(self):
        text = """module m(a, y); /* block
        comment */ input a; output y;
        assign y = ~a;
        endmodule"""
        c = read_verilog(io.StringIO(text))
        np.testing.assert_array_equal(truth_table(c)[:, 0], [True, False])


class TestErrors:
    def test_missing_module(self):
        with pytest.raises(ParseError):
            read_verilog(io.StringIO("assign y = a;"))

    def test_undriven_output(self):
        text = "module m(a, y); input a; output y; endmodule"
        with pytest.raises(ParseError):
            read_verilog(io.StringIO(text))

    def test_undeclared_signal_in_expr(self):
        text = "module m(a, y); input a; output y; assign y = a & ghost; endmodule"
        with pytest.raises(ParseError):
            read_verilog(io.StringIO(text))

    def test_double_drive(self):
        text = """module m(a, y); input a; output y;
        wire w; assign w = a; assign w = ~a; assign y = w; endmodule"""
        with pytest.raises(ParseError):
            read_verilog(io.StringIO(text))

    def test_unsupported_statement(self):
        text = "module m(clk, y); input clk; output y; always @(posedge clk) y <= 1; endmodule"
        with pytest.raises(ParseError):
            read_verilog(io.StringIO(text))

    def test_malformed_expression(self):
        text = "module m(a, y); input a; output y; assign y = a &; endmodule"
        with pytest.raises(ParseError):
            read_verilog(io.StringIO(text))
