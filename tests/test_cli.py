"""Tests for the command-line interface."""

from __future__ import annotations

import io
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--bench", "mult8"])
        assert args.bench == "mult8"
        assert args.thresholds == [0.05]
        assert args.k == 10 and args.m == 10
        assert args.jobs == 1 and args.cache_dir is None

    def test_default_weights_match_paper_flow(self):
        # Regression: the CLI used to default to "uniform" (Figure 4's
        # control arm) while ExplorerConfig and the paper use WQoR.
        from repro.core.explorer import ExplorerConfig

        args = build_parser().parse_args(["run", "--bench", "mult8"])
        assert args.weights == "significance"
        assert args.weights == ExplorerConfig().weight_mode

    def test_runtime_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "--bench", "mult8", "--jobs", "0", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 0
        assert args.cache_dir == "/tmp/c"

    def test_thresholds_parsed(self):
        args = build_parser().parse_args(
            ["run", "--bench", "mult8", "--thresholds", "0.05", "0.25"]
        )
        assert args.thresholds == [0.05, 0.25]


class TestCommands:
    def test_run_without_circuit_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_small_bench(self, capsys, tmp_path):
        out = tmp_path / "approx.blif"
        rc = main([
            "run", "--bench", "but", "--thresholds", "0.2",
            "--samples", "512", "--k", "8", "--m", "8", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "baseline" in captured
        assert out.exists()

    def test_run_blif_input(self, capsys, tmp_path):
        from repro.bench import ripple_adder
        from repro.circuit import write_blif

        src = tmp_path / "add.blif"
        write_blif(ripple_adder(6), str(src))
        rc = main([
            "run", "--blif", str(src), "--thresholds", "0.2",
            "--samples", "512", "--k", "6", "--m", "6",
        ])
        assert rc == 0

    def test_verilog_output(self, capsys, tmp_path):
        out = tmp_path / "approx.v"
        rc = main([
            "run", "--bench", "but", "--thresholds", "0.3",
            "--samples", "512", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "module" in out.read_text()

    def test_table1_lists_all_benchmarks(self, capsys):
        rc = main(["table1", "--samples", "256"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("Adder32", "Mult8", "BUT", "MAC", "SAD", "FIR"):
            assert name in out

    def test_run_with_cache_and_jobs(self, capsys, tmp_path):
        argv = [
            "run", "--bench", "but", "--thresholds", "0.2",
            "--samples", "512", "--k", "8", "--m", "8",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "runtime:" in cold and "runtime:" in warm
        assert " 0 factorizations" in warm and " 0 syntheses" in warm

    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--bench", "but", "--thresholds", "0.25",
            "--samples", "512", "--k", "8", "--m", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BLASYS" in out and "SALSA" in out
