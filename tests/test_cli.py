"""Tests for the command-line interface."""

from __future__ import annotations

import io
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--bench", "mult8"])
        assert args.bench == "mult8"
        assert args.thresholds == [0.05]
        assert args.k == 10 and args.m == 10
        assert args.jobs == 1 and args.cache_dir is None

    def test_default_weights_match_paper_flow(self):
        # Regression: the CLI used to default to "uniform" (Figure 4's
        # control arm) while ExplorerConfig and the paper use WQoR.
        from repro.core.explorer import ExplorerConfig

        args = build_parser().parse_args(["run", "--bench", "mult8"])
        assert args.weights == "significance"
        assert args.weights == ExplorerConfig().weight_mode

    def test_runtime_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "--bench", "mult8", "--jobs", "0", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 0
        assert args.cache_dir == "/tmp/c"

    def test_thresholds_parsed(self):
        args = build_parser().parse_args(
            ["run", "--bench", "mult8", "--thresholds", "0.05", "0.25"]
        )
        assert args.thresholds == [0.05, 0.25]


class TestCommands:
    def test_run_without_circuit_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_small_bench(self, capsys, tmp_path):
        out = tmp_path / "approx.blif"
        rc = main([
            "run", "--bench", "but", "--thresholds", "0.2",
            "--samples", "512", "--k", "8", "--m", "8", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "baseline" in captured
        assert out.exists()

    def test_run_blif_input(self, capsys, tmp_path):
        from repro.bench import ripple_adder
        from repro.circuit import write_blif

        src = tmp_path / "add.blif"
        write_blif(ripple_adder(6), str(src))
        rc = main([
            "run", "--blif", str(src), "--thresholds", "0.2",
            "--samples", "512", "--k", "6", "--m", "6",
        ])
        assert rc == 0

    def test_verilog_output(self, capsys, tmp_path):
        out = tmp_path / "approx.v"
        rc = main([
            "run", "--bench", "but", "--thresholds", "0.3",
            "--samples", "512", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "module" in out.read_text()

    def test_table1_lists_all_benchmarks(self, capsys):
        rc = main(["table1", "--samples", "256"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("Adder32", "Mult8", "BUT", "MAC", "SAD", "FIR"):
            assert name in out

    def test_run_with_cache_and_jobs(self, capsys, tmp_path):
        argv = [
            "run", "--bench", "but", "--thresholds", "0.2",
            "--samples", "512", "--k", "8", "--m", "8",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "runtime:" in cold and "runtime:" in warm
        assert " 0 factorizations" in warm and " 0 syntheses" in warm

    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--bench", "but", "--thresholds", "0.25",
            "--samples", "512", "--k", "8", "--m", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BLASYS" in out and "SALSA" in out


class TestCheckpointFlagCoherence:
    """S3: checkpoint modifiers without a checkpoint path are hard errors."""

    def test_checkpoint_every_requires_checkpoint(self):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError, match="--checkpoint-every"):
            main(["run", "--bench", "but", "--samples", "256",
                  "--checkpoint-every", "2"])

    def test_resume_requires_checkpoint(self):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError, match="--resume"):
            main(["run", "--bench", "but", "--samples", "256",
                  "--resume", "/tmp/nowhere.ckpt"])

    def test_checkpoint_alone_still_works(self, capsys, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        rc = main([
            "run", "--bench", "but", "--thresholds", "0.2",
            "--samples", "512", "--k", "8", "--m", "8",
            "--checkpoint", str(ckpt),
        ])
        assert rc == 0

    def test_compare_validates_too(self):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError, match="--checkpoint-every"):
            main(["compare", "--bench", "but", "--samples", "256",
                  "--checkpoint-every", "3"])


class TestServiceParser:
    def test_serve_requires_socket_and_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/b.sock", "--journal", "/tmp/j",
             "--max-queue", "4", "--max-concurrent", "2",
             "--max-memory-mb", "64", "--pool-workers", "4",
             "--drain-on-term"]
        )
        assert args.max_queue == 4 and args.max_concurrent == 2
        assert args.max_memory_mb == 64.0 and args.pool_workers == 4
        assert args.drain_on_term

    def test_submit_builds_sparse_config(self):
        args = build_parser().parse_args(
            ["submit", "--socket", "/tmp/b.sock", "--bench", "but",
             "--samples", "700", "--k", "8", "--deadline", "30", "--wait"]
        )
        assert args.samples == 700 and args.k == 8
        assert args.m is None  # unset flags stay out of the job config
        assert args.deadline == 30.0 and args.wait

    def test_client_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(
            ["jobs", "--socket", "/tmp/b.sock"]).fn is not None
        job = parser.parse_args(
            ["job", "job-0001", "--socket", "/tmp/b.sock", "--cancel"])
        assert job.job_id == "job-0001" and job.cancel
        down = parser.parse_args(
            ["shutdown", "--socket", "/tmp/b.sock", "--drain"])
        assert down.drain


class TestSignalHandling:
    """S1: SIGINT/SIGTERM interrupt a plain run cleanly — pools closed,
    final checkpoint flushed, ``128 + signum`` exit code."""

    def test_sigterm_flushes_checkpoint_then_resume_completes(self, tmp_path):
        import signal
        import subprocess
        import sys
        import time

        ckpt = tmp_path / "run.ckpt"
        argv = [
            sys.executable, "-m", "repro.cli", "run", "--bench", "mult8",
            "--samples", "1024", "--k", "8", "--m", "8",
            "--thresholds", "0.2", "--checkpoint", str(ckpt),
        ]
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 120
        while not ckpt.exists():
            if time.monotonic() > deadline or proc.poll() is not None:
                proc.kill()
                pytest.fail("checkpoint never appeared")
            time.sleep(0.02)
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 128 + signal.SIGTERM
        assert "interrupted by SIGTERM" in err
        assert "checkpoint flushed" in err
        assert ckpt.exists()

        resumed = subprocess.run(
            argv + ["--resume", str(ckpt)], env=env,
            capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == 0
        assert "thr=" in resumed.stdout
