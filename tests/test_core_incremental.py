"""Tests for the incremental evaluator: previews/commits must agree with
full substitution + resimulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, ripple_adder
from repro.circuit import CircuitBuilder, random_input_words, simulate_outputs
from repro.circuit.simulate import unpack_bits
from repro.core.bmf import factorize
from repro.core.incremental import IncrementalEvaluator
from repro.errors import SimulationError
from repro.partition import TableReplacement, Window, decompose, substitute_windows


@pytest.fixture
def setup(rng):
    circuit = ripple_adder(8)
    windows = decompose(circuit, 8, 8)
    n = 1024
    words = random_input_words(circuit.n_inputs, n, rng)
    ev = IncrementalEvaluator(circuit, windows, words, n)
    return circuit, windows, words, ev, n


def _reference_outputs(circuit, windows, replacements, words):
    rebuilt = substitute_windows(
        circuit,
        windows,
        {i: TableReplacement(t) for i, t in replacements.items()},
    )
    return simulate_outputs(rebuilt, words)


class TestPreview:
    def test_exact_table_preview_is_identity(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        np.testing.assert_array_equal(
            ev.preview(w.index, w.table(circuit)), ev.exact_outputs
        )

    def test_preview_matches_full_rebuild(self, setup):
        circuit, windows, words, ev, n = setup
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), w.n_outputs - 1).product
            got = ev.preview(w.index, table)
            expect = _reference_outputs(circuit, windows, {w.index: table}, words)
            np.testing.assert_array_equal(got, expect)

    def test_preview_does_not_mutate_state(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        table = factorize(w.table(circuit), 1).product
        before = ev.current_outputs()
        ev.preview(w.index, table)
        np.testing.assert_array_equal(ev.current_outputs(), before)

    def test_bad_table_shape_raises(self, setup):
        circuit, windows, words, ev, n = setup
        with pytest.raises(SimulationError):
            ev.preview(windows[0].index, np.zeros((2, 1), dtype=bool))


class TestCommit:
    def test_commit_then_outputs_match_rebuild(self, setup):
        circuit, windows, words, ev, n = setup
        committed = {}
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), w.n_outputs - 1).product
            ev.commit(w.index, table)
            committed[w.index] = table
            expect = _reference_outputs(circuit, windows, committed, words)
            np.testing.assert_array_equal(ev.current_outputs(), expect)

    def test_preview_on_top_of_commits(self, setup):
        circuit, windows, words, ev, n = setup
        multi = [w for w in windows if w.n_outputs >= 2]
        first, second = multi[0], multi[1]
        t1 = factorize(first.table(circuit), 1).product
        ev.commit(first.index, t1)
        t2 = factorize(second.table(circuit), 1).product
        got = ev.preview(second.index, t2)
        expect = _reference_outputs(
            circuit, windows, {first.index: t1, second.index: t2}, words
        )
        np.testing.assert_array_equal(got, expect)

    def test_recommit_overrides(self, setup):
        circuit, windows, words, ev, n = setup
        w = [w for w in windows if w.n_outputs >= 3][0]
        t_low = factorize(w.table(circuit), 1).product
        t_high = factorize(w.table(circuit), w.n_outputs - 1).product
        ev.commit(w.index, t_low)
        ev.commit(w.index, t_high)
        expect = _reference_outputs(circuit, windows, {w.index: t_high}, words)
        np.testing.assert_array_equal(ev.current_outputs(), expect)

    def test_committed_map_exposed(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        table = factorize(w.table(circuit), 1).product
        ev.commit(w.index, table)
        assert w.index in ev.committed
        np.testing.assert_array_equal(ev.committed_table(w.index), table)


def _inverted_inputs_circuit():
    """Three NOT-fed gates in one window.

    The window's inputs are inverters, so the packed tail bits of its fanins
    are *ones* (NOT of the zero padding) — the adversarial case for LUT
    tail-bit handling: the tail indexes table row ``2^k - 1``, not row 0.
    """
    b = CircuitBuilder("inv")
    a, x, y = b.input("a"), b.input("b"), b.input("c")
    na, nx, ny = b.not_(a), b.not_(x), b.not_(y)
    g1 = b.and_(na, nx)
    g2 = b.xor_(nx, ny)
    b.output("y0", g1)
    b.output("y1", g2)
    circuit = b.build()
    window = Window(
        0,
        members=(g1, g2),
        inputs=tuple(sorted((na, nx, ny))),
        outputs=(g1, g2),
    )
    return circuit, window


class TestTailBitInvariant:
    """Regressions for the packed-word tail-bit bug (see DESIGN.md):
    table rows indexed by garbage tail bits must never leak into dirty
    tracking or preview/commit results."""

    def test_tail_only_table_change_is_clean(self):
        circuit, window = _inverted_inputs_circuit()
        n = 40  # not a multiple of 64 -> 24 garbage tail bits
        rng = np.random.default_rng(3)
        # keep the all-zero primary pattern out of the valid samples, so
        # table row 7 (all window inputs high) is reachable *only* via the
        # tail garbage
        patterns = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
        patterns[(patterns.sum(axis=1) == 0), rng.integers(0, 3)] = 1
        from repro.circuit import patterns_to_words

        words = patterns_to_words(patterns)
        ev = IncrementalEvaluator(circuit, [window], words, n)
        table = window.table(circuit).copy()
        table[7] = ~table[7]  # visible only through tail bits
        preview = ev.preview(0, table)
        np.testing.assert_array_equal(preview, ev.exact_outputs)
        ev.commit(0, table)
        np.testing.assert_array_equal(ev.current_outputs(), ev.exact_outputs)

    def test_lut_table0_one_preview_matches_resimulation(self):
        """table[0] = 1 with a non-multiple-of-64 sample count: valid bits
        of preview/commit match a from-scratch resimulation bit-exactly."""
        circuit = ripple_adder(6)
        windows = decompose(circuit, 6, 6)
        n = 100
        rng = np.random.default_rng(11)
        words = random_input_words(circuit.n_inputs, n, rng)
        ev = IncrementalEvaluator(circuit, windows, words, n)
        w = next(w for w in windows if w.n_outputs >= 2)
        table = ~w.table(circuit)  # inverted: table[0] == ~exact[0]
        assert table[0].any()
        got = unpack_bits(ev.preview(w.index, table), n)
        rebuilt = substitute_windows(
            circuit, windows, {w.index: TableReplacement(table)}
        )
        expect = unpack_bits(simulate_outputs(rebuilt, words, n_samples=n), n)
        np.testing.assert_array_equal(got, expect)
        ev.commit(w.index, table)
        np.testing.assert_array_equal(
            unpack_bits(ev.current_outputs(), n), expect
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 200))
    def test_property_preview_commit_match_resimulation(self, seed, n):
        """Property: for arbitrary sample counts (including n % 64 != 0)
        and arbitrary replacement tables (table[0] free to be 1), preview
        and commit agree with simulate_full-style resimulation on every
        valid bit."""
        rng = np.random.default_rng(seed)
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, n, rng)
        ev = IncrementalEvaluator(circuit, windows, words, n)
        committed = {}
        for w in windows:
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            got = unpack_bits(ev.preview(w.index, table), n)
            trial = dict(committed)
            trial[w.index] = table
            rebuilt = substitute_windows(
                circuit,
                windows,
                {i: TableReplacement(t) for i, t in trial.items()},
            )
            expect = unpack_bits(
                simulate_outputs(rebuilt, words, n_samples=n), n
            )
            np.testing.assert_array_equal(got, expect)
            ev.commit(w.index, table)
            committed[w.index] = table
            np.testing.assert_array_equal(
                unpack_bits(ev.current_outputs(), n), expect
            )


class TestPreviewBatch:
    def test_batch_matches_individual_previews(self, setup):
        circuit, windows, words, ev, n = setup
        w = next(w for w in windows if w.n_outputs >= 3)
        exact = w.table(circuit)
        tables = [
            factorize(exact, f).product for f in range(1, w.n_outputs)
        ] + [exact, ~exact]
        batch = ev.preview_batch(w.index, tables)
        assert len(batch) == len(tables)
        for table, out in zip(tables, batch):
            np.testing.assert_array_equal(out, ev.preview(w.index, table))

    def test_batch_on_top_of_commits(self, setup):
        circuit, windows, words, ev, n = setup
        multi = [w for w in windows if w.n_outputs >= 2]
        first, second = multi[0], multi[1]
        ev.commit(first.index, factorize(first.table(circuit), 1).product)
        tables = [
            factorize(second.table(circuit), f).product
            for f in range(1, second.n_outputs)
        ]
        batch = ev.preview_batch(second.index, tables)
        for table, out in zip(tables, batch):
            np.testing.assert_array_equal(out, ev.preview(second.index, table))

    def test_batch_does_not_mutate_state(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        before = ev.current_outputs()
        ev.preview_batch(w.index, [factorize(w.table(circuit), 1).product])
        np.testing.assert_array_equal(ev.current_outputs(), before)


class TestInterleavedWindows:
    def test_butterfly_cross_window_dependencies(self, rng):
        # Butterfly windows interleave adder/subtractor logic; this is the
        # regression case for quotient-order propagation.
        circuit = butterfly(6)
        windows = decompose(circuit, 8, 8)
        n = 512
        words = random_input_words(circuit.n_inputs, n, rng)
        ev = IncrementalEvaluator(circuit, windows, words, n)
        committed = {}
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), max(1, w.n_outputs - 2)).product
            ev.commit(w.index, table)
            committed[w.index] = table
        expect = _reference_outputs(circuit, windows, committed, words)
        np.testing.assert_array_equal(ev.current_outputs(), expect)
