"""Tests for the incremental evaluator: previews/commits must agree with
full substitution + resimulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.circuit import random_input_words, simulate_outputs
from repro.core.bmf import factorize
from repro.core.incremental import IncrementalEvaluator
from repro.errors import SimulationError
from repro.partition import TableReplacement, decompose, substitute_windows


@pytest.fixture
def setup(rng):
    circuit = ripple_adder(8)
    windows = decompose(circuit, 8, 8)
    n = 1024
    words = random_input_words(circuit.n_inputs, n, rng)
    ev = IncrementalEvaluator(circuit, windows, words, n)
    return circuit, windows, words, ev, n


def _reference_outputs(circuit, windows, replacements, words):
    rebuilt = substitute_windows(
        circuit,
        windows,
        {i: TableReplacement(t) for i, t in replacements.items()},
    )
    return simulate_outputs(rebuilt, words)


class TestPreview:
    def test_exact_table_preview_is_identity(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        np.testing.assert_array_equal(
            ev.preview(w.index, w.table(circuit)), ev.exact_outputs
        )

    def test_preview_matches_full_rebuild(self, setup):
        circuit, windows, words, ev, n = setup
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), w.n_outputs - 1).product
            got = ev.preview(w.index, table)
            expect = _reference_outputs(circuit, windows, {w.index: table}, words)
            np.testing.assert_array_equal(got, expect)

    def test_preview_does_not_mutate_state(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        table = factorize(w.table(circuit), 1).product
        before = ev.current_outputs()
        ev.preview(w.index, table)
        np.testing.assert_array_equal(ev.current_outputs(), before)

    def test_bad_table_shape_raises(self, setup):
        circuit, windows, words, ev, n = setup
        with pytest.raises(SimulationError):
            ev.preview(windows[0].index, np.zeros((2, 1), dtype=bool))


class TestCommit:
    def test_commit_then_outputs_match_rebuild(self, setup):
        circuit, windows, words, ev, n = setup
        committed = {}
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), w.n_outputs - 1).product
            ev.commit(w.index, table)
            committed[w.index] = table
            expect = _reference_outputs(circuit, windows, committed, words)
            np.testing.assert_array_equal(ev.current_outputs(), expect)

    def test_preview_on_top_of_commits(self, setup):
        circuit, windows, words, ev, n = setup
        multi = [w for w in windows if w.n_outputs >= 2]
        first, second = multi[0], multi[1]
        t1 = factorize(first.table(circuit), 1).product
        ev.commit(first.index, t1)
        t2 = factorize(second.table(circuit), 1).product
        got = ev.preview(second.index, t2)
        expect = _reference_outputs(
            circuit, windows, {first.index: t1, second.index: t2}, words
        )
        np.testing.assert_array_equal(got, expect)

    def test_recommit_overrides(self, setup):
        circuit, windows, words, ev, n = setup
        w = [w for w in windows if w.n_outputs >= 3][0]
        t_low = factorize(w.table(circuit), 1).product
        t_high = factorize(w.table(circuit), w.n_outputs - 1).product
        ev.commit(w.index, t_low)
        ev.commit(w.index, t_high)
        expect = _reference_outputs(circuit, windows, {w.index: t_high}, words)
        np.testing.assert_array_equal(ev.current_outputs(), expect)

    def test_committed_map_exposed(self, setup):
        circuit, windows, words, ev, n = setup
        w = windows[0]
        table = factorize(w.table(circuit), 1).product
        ev.commit(w.index, table)
        assert w.index in ev.committed
        np.testing.assert_array_equal(ev.committed_table(w.index), table)


class TestInterleavedWindows:
    def test_butterfly_cross_window_dependencies(self, rng):
        # Butterfly windows interleave adder/subtractor logic; this is the
        # regression case for quotient-order propagation.
        circuit = butterfly(6)
        windows = decompose(circuit, 8, 8)
        n = 512
        words = random_input_words(circuit.n_inputs, n, rng)
        ev = IncrementalEvaluator(circuit, windows, words, n)
        committed = {}
        for w in windows:
            if w.n_outputs < 2:
                continue
            table = factorize(w.table(circuit), max(1, w.n_outputs - 2)).product
            ev.commit(w.index, table)
            committed[w.index] = table
        expect = _reference_outputs(circuit, windows, committed, words)
        np.testing.assert_array_equal(ev.current_outputs(), expect)
