"""Tests for the external-tool bridge (skip heavy paths without binaries)."""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.bench import ripple_adder
from repro.circuit import equivalent
from repro.errors import SynthesisError
from repro.synth.external import (
    abc_optimize,
    find_tool,
    optimize_via_tool,
    yosys_optimize,
)


class TestToolDiscovery:
    def test_find_existing_tool(self):
        # python itself is guaranteed to be on PATH in the test env
        assert find_tool("python") or find_tool("python3")

    def test_find_missing_tool(self):
        assert find_tool("definitely-not-a-real-binary-2026") is None


class TestErrorPaths:
    def test_abc_missing_raises(self):
        if find_tool("abc"):
            pytest.skip("abc actually installed")
        with pytest.raises(SynthesisError):
            abc_optimize(ripple_adder(3))

    def test_yosys_missing_raises(self):
        if find_tool("yosys"):
            pytest.skip("yosys actually installed")
        with pytest.raises(SynthesisError):
            yosys_optimize(ripple_adder(3))

    def test_nonexistent_command(self):
        with pytest.raises(SynthesisError):
            optimize_via_tool(
                ripple_adder(3), ["/no/such/binary", "{in}", "{out}"]
            )

    def test_failing_command(self):
        with pytest.raises(SynthesisError):
            optimize_via_tool(
                ripple_adder(3),
                [sys.executable, "-c", "import sys; sys.exit(3)"],
            )

    def test_command_without_output(self):
        with pytest.raises(SynthesisError):
            optimize_via_tool(
                ripple_adder(3), [sys.executable, "-c", "pass"]
            )


class TestRoundtripViaPython:
    def test_identity_tool_roundtrips(self):
        """A 'tool' that just copies the BLIF must preserve the function."""
        circuit = ripple_adder(4)
        copier = [
            sys.executable,
            "-c",
            "import shutil, sys; shutil.copy(sys.argv[1], sys.argv[2])",
            "{in}",
            "{out}",
        ]
        back = optimize_via_tool(circuit, copier)
        res = equivalent(circuit, back)
        assert res.equivalent and res.proven

    @pytest.mark.skipif(find_tool("abc") is None, reason="abc not installed")
    def test_abc_preserves_function(self):  # pragma: no cover - env-specific
        circuit = ripple_adder(5)
        optimized = abc_optimize(circuit)
        res = equivalent(circuit, optimized)
        assert res.equivalent
