"""Tests for QoR metrics (Eq. 1 / Eq. 2 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import ripple_adder
from repro.circuit import (
    CircuitBuilder,
    patterns_to_words,
    simulate_outputs,
)
from repro.core.qor import METRICS, QoREvaluator, QoRSpec, circuit_words
from repro.errors import SimulationError


def _make_evaluator(circuit, patterns, spec=QoRSpec()):
    words = patterns_to_words(patterns)
    exact = simulate_outputs(circuit, words)
    return QoREvaluator(circuit, exact, patterns.shape[0], spec), exact


class TestQoRSpec:
    def test_valid_metrics(self):
        for m in METRICS:
            QoRSpec(m)

    def test_invalid_metric(self):
        with pytest.raises(SimulationError):
            QoRSpec("rmse")


class TestCircuitWords:
    def test_words_from_attrs(self):
        c = ripple_adder(4)
        words = circuit_words(c)
        assert len(words) == 1
        assert words[0].name == "sum"
        assert words[0].width == 5

    def test_fallback_single_word(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("y0", a)
        b.output("y1", b.not_(a))
        c = b.build()
        c.attrs.pop("words", None)
        words = circuit_words(c)
        assert len(words) == 1
        assert words[0].width == 2


class TestQoREvaluator:
    def test_zero_error_on_identical(self, rng):
        c = ripple_adder(4)
        pats = rng.integers(0, 2, size=(200, 8), dtype=np.uint8)
        ev, exact = _make_evaluator(c, pats)
        metrics = ev.metrics(exact)
        assert all(v == 0.0 for v in metrics.values())

    def test_known_absolute_error(self):
        # adder sum vs sum with LSB forced to 0: abs error = lsb value
        c = ripple_adder(4)
        pats = np.array(
            [[1, 0, 0, 0, 0, 0, 0, 0],  # a=1, b=0 -> sum=1
             [0, 0, 0, 0, 1, 0, 0, 0]],  # a=0, b=1 -> sum=1
            dtype=np.uint8,
        )
        ev, exact = _make_evaluator(c, pats)
        approx = exact.copy()
        approx[0] = 0  # clear output bit 0 (sum[0]) for all samples
        m = ev.metrics(approx)
        assert m["mae"] == pytest.approx(1.0)  # both samples lose their LSB
        assert m["mre"] == pytest.approx(1.0)  # |1-0|/1 for both
        assert m["hamming"] == pytest.approx(1.0)

    def test_relative_error_uses_max_denominator(self):
        # exact result 0 must not divide by zero
        c = ripple_adder(2)
        pats = np.zeros((1, 4), dtype=np.uint8)  # a=0,b=0 -> sum=0
        ev, exact = _make_evaluator(c, pats)
        approx = exact.copy()
        approx[1] = 1  # flip bit 1 -> approx=2
        m = ev.metrics(approx)
        assert np.isfinite(m["mre"])
        assert m["mre"] == pytest.approx(2.0)  # |0-2|/max(0,1)

    def test_nmae_normalized_by_word_range(self):
        c = ripple_adder(4)  # sum word is 5 bits, max 31
        pats = np.zeros((1, 8), dtype=np.uint8)
        ev, exact = _make_evaluator(c, pats)
        approx = exact.copy()
        approx[4] = 1  # MSB flip: abs err 16
        m = ev.metrics(approx)
        assert m["nmae"] == pytest.approx(16 / 31)

    def test_evaluate_matches_metrics(self, rng):
        c = ripple_adder(4)
        pats = rng.integers(0, 2, size=(500, 8), dtype=np.uint8)
        for metric in METRICS:
            ev, exact = _make_evaluator(c, pats, QoRSpec(metric))
            approx = exact.copy()
            approx[2] ^= np.uint64(0xF0F0F0F0)
            assert ev.evaluate(approx) == pytest.approx(ev.metrics(approx)[metric])

    def test_multi_word_average(self, rng):
        from repro.bench import butterfly

        c = butterfly(4)
        pats = rng.integers(0, 2, size=(300, 8), dtype=np.uint8)
        ev, exact = _make_evaluator(c, pats)
        # flip one bit of word x only
        approx = exact.copy()
        approx[0] = ~approx[0]
        m = ev.metrics(approx)
        assert m["mae"] > 0
        # errors averaged over both words: half the terms are zero
        approx_both = exact.copy()
        approx_both[0] = ~approx_both[0]
        x_idx = [w for w in c.attrs["words"] if w.name == "y"][0].indices[0]
        approx_both[x_idx] = ~approx_both[x_idx]
        m2 = ev.metrics(approx_both)
        assert m2["mae"] > m["mae"]
