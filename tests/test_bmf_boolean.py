"""Tests for boolean matrix algebra primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bmf import (
    bool_product,
    check_weights,
    factorization_error,
    hamming_distance,
    numeric_weights,
    uniform_weights,
    weighted_error,
)
from repro.errors import FactorizationError

bool_matrix = lambda r, c: arrays(bool, (r, c))


class TestBoolProduct:
    def test_semiring_example(self):
        B = np.array([[1, 0], [1, 1], [0, 0]], dtype=bool)
        C = np.array([[1, 0, 1], [0, 1, 1]], dtype=bool)
        P = bool_product(B, C, "semiring")
        expect = np.array([[1, 0, 1], [1, 1, 1], [0, 0, 0]], dtype=bool)
        np.testing.assert_array_equal(P, expect)

    def test_field_example(self):
        B = np.array([[1, 1]], dtype=bool)
        C = np.array([[1, 0], [1, 1]], dtype=bool)
        P = bool_product(B, C, "field")
        # row = C0 XOR C1 = (0, 1)
        np.testing.assert_array_equal(P, [[False, True]])

    def test_shape_mismatch(self):
        with pytest.raises(FactorizationError):
            bool_product(np.zeros((2, 3), bool), np.zeros((2, 3), bool))

    def test_bad_algebra(self):
        with pytest.raises(FactorizationError):
            bool_product(np.zeros((2, 2), bool), np.zeros((2, 2), bool), "ring")

    @settings(max_examples=30, deadline=None)
    @given(B=bool_matrix(4, 3), C=bool_matrix(3, 5))
    def test_semiring_matches_naive(self, B, C):
        P = bool_product(B, C, "semiring")
        for r in range(4):
            for j in range(5):
                expect = any(B[r, l] and C[l, j] for l in range(3))
                assert P[r, j] == expect

    @settings(max_examples=30, deadline=None)
    @given(B=bool_matrix(4, 3), C=bool_matrix(3, 5))
    def test_field_matches_naive(self, B, C):
        P = bool_product(B, C, "field")
        for r in range(4):
            for j in range(5):
                expect = sum(B[r, l] and C[l, j] for l in range(3)) % 2 == 1
                assert P[r, j] == expect

    def test_identity_is_neutral(self, rng):
        M = rng.random((8, 5)) < 0.5
        I = np.eye(5, dtype=bool)
        for algebra in ("semiring", "field"):
            np.testing.assert_array_equal(bool_product(M, I, algebra), M)


class TestWeights:
    def test_uniform(self):
        np.testing.assert_array_equal(uniform_weights(3), [1.0, 1.0, 1.0])

    def test_numeric_is_increasing(self):
        w = numeric_weights(5)
        assert (np.diff(w) > 0).all()

    def test_numeric_normalized_to_m(self):
        w = numeric_weights(7)
        assert w.sum() == pytest.approx(7.0)

    def test_numeric_ratio_is_base(self):
        w = numeric_weights(4, base=2.0)
        np.testing.assert_allclose(w[1:] / w[:-1], 2.0)

    def test_check_weights_default(self):
        np.testing.assert_array_equal(check_weights(None, 3), [1, 1, 1])

    def test_check_weights_shape(self):
        with pytest.raises(FactorizationError):
            check_weights(np.ones(4), 3)

    def test_check_weights_negative(self):
        with pytest.raises(FactorizationError):
            check_weights(np.array([1.0, -1.0]), 2)

    def test_zero_columns_rejected(self):
        with pytest.raises(FactorizationError):
            numeric_weights(0)


class TestErrors:
    def test_hamming(self):
        M = np.array([[1, 0], [0, 1]], dtype=bool)
        A = np.array([[1, 1], [0, 1]], dtype=bool)
        assert hamming_distance(M, A) == 1

    def test_weighted_counts_columns(self):
        M = np.array([[1, 0]], dtype=bool)
        A = np.array([[0, 1]], dtype=bool)
        w = np.array([1.0, 4.0])
        assert weighted_error(M, A, w) == pytest.approx(5.0)

    def test_uniform_weight_equals_hamming(self, rng):
        M = rng.random((16, 6)) < 0.5
        A = rng.random((16, 6)) < 0.5
        assert weighted_error(M, A) == pytest.approx(hamming_distance(M, A))

    def test_shape_mismatch(self):
        with pytest.raises(FactorizationError):
            hamming_distance(np.zeros((2, 2), bool), np.zeros((3, 2), bool))

    def test_factorization_error_zero_for_exact(self, rng):
        M = rng.random((8, 4)) < 0.5
        I = np.eye(4, dtype=bool)
        assert factorization_error(M, M, I) == 0.0
