"""Formal verification of the technology mapper.

``MappedNetlist.to_circuit()`` expands every cell instance back into
primitive gates; the result must be provably equivalent to the original
circuit.  This closes the loop on covering-based mapping (macro matching,
pin orders, AOI/OAI polarity) — any mapper bug becomes a counterexample.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    array_multiplier,
    butterfly,
    carry_lookahead_adder,
    ripple_adder,
    sad,
)
from repro.circuit import CircuitBuilder, equivalent
from repro.synth import tech_map


def _check(circuit, match_macros=True):
    mapped = tech_map(circuit, match_macros=match_macros)
    back = mapped.to_circuit()
    res = equivalent(circuit, back)
    assert res.equivalent, f"counterexample: {res.counterexample}"
    return mapped


class TestMapperProvenCorrect:
    @pytest.mark.parametrize("match_macros", [True, False])
    def test_ripple_adder(self, match_macros):
        _check(ripple_adder(7), match_macros)

    def test_full_adder_macro(self, full_adder_circuit):
        mapped = _check(full_adder_circuit)
        assert "FA" in mapped.cell_histogram()

    def test_multiplier_with_macros(self):
        mapped = _check(array_multiplier(5))
        assert mapped.cell_histogram().get("FA", 0) > 0

    def test_butterfly_with_muxes(self):
        _check(butterfly(5))

    def test_cla_with_wide_gates(self):
        # CLA produces 3- and 4-input AND/OR chains exercising NAND3/4 paths
        _check(carry_lookahead_adder(8))

    def test_sad_with_aoi_candidates(self):
        _check(sad(5, 6))

    def test_constant_cells(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("zero", b.const(False))
        b.output("one", b.const(True))
        b.output("pass", a)
        _check(b.build())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        b = CircuitBuilder("fuzz")
        sigs = [b.input(f"i{k}") for k in range(5)]
        for _ in range(30):
            op = rng.integers(0, 8)
            x, y, z = (sigs[int(i)] for i in rng.choice(len(sigs), 3))
            sigs.append(
                [
                    b.and_(x, y), b.or_(x, y), b.xor_(x, y), b.not_(x),
                    b.mux(x, y, z), b.nand_(x, y), b.nor_(x, y),
                    b.xnor_(x, y),
                ][op]
            )
        for i, s in enumerate(sigs[-3:]):
            b.output(f"o{i}", s)
        _check(b.build())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_wide_gates(self, seed):
        rng = np.random.default_rng(seed)
        b = CircuitBuilder("wide")
        ins = [b.input(f"i{k}") for k in range(int(rng.integers(5, 9)))]
        b.output("a", b.and_(*ins))
        b.output("o", b.or_(*ins))
        b.output("x", b.xor_(*ins))
        b.output("na", b.nand_(*ins))
        _check(b.build())
