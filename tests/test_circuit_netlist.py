"""Unit tests for the netlist core (gate.py, netlist.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, CircuitBuilder, Node, Op
from repro.errors import CircuitError


class TestNode:
    def test_arity_enforced_for_not(self):
        with pytest.raises(CircuitError):
            Node(Op.NOT, (1, 2))

    def test_arity_enforced_for_and(self):
        with pytest.raises(CircuitError):
            Node(Op.AND, (1,))

    def test_mux_requires_three_fanins(self):
        with pytest.raises(CircuitError):
            Node(Op.MUX, (0, 1))

    def test_lut_requires_table(self):
        with pytest.raises(CircuitError):
            Node(Op.LUT, (0, 1))

    def test_lut_table_length_checked(self):
        with pytest.raises(CircuitError):
            Node(Op.LUT, (0, 1), table=np.zeros(3, dtype=bool))

    def test_non_lut_rejects_table(self):
        with pytest.raises(CircuitError):
            Node(Op.AND, (0, 1), table=np.zeros(4, dtype=bool))

    def test_source_ops_have_no_fanins(self):
        assert Op.INPUT.is_source
        assert Op.CONST0.is_source
        assert not Op.AND.is_source


class TestCircuit:
    def test_topological_invariant_enforced(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_node(Node(Op.NOT, (5,)))

    def test_output_must_reference_existing_node(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_output("y", 3)

    def test_gate_count_excludes_sources(self, tiny_and_or):
        assert tiny_and_or.n_inputs == 3
        assert tiny_and_or.n_gates == 2

    def test_same_node_can_drive_two_outputs(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("y0", a)
        c.add_output("y1", a)
        assert c.n_outputs == 2
        assert c.output_nodes() == [a, a]

    def test_op_histogram(self, tiny_and_or):
        hist = tiny_and_or.op_histogram()
        assert hist[Op.INPUT] == 3
        assert hist[Op.AND] == 1
        assert hist[Op.OR] == 1

    def test_validate_passes_on_wellformed(self, tiny_and_or):
        tiny_and_or.validate()

    def test_copy_is_independent(self, tiny_and_or):
        c2 = tiny_and_or.copy()
        c2.add_input("extra")
        assert c2.n_inputs == tiny_and_or.n_inputs + 1

    def test_input_and_output_names(self, tiny_and_or):
        assert tiny_and_or.input_names() == ["a", "b", "c"]
        assert tiny_and_or.output_names() == ["y0", "y1"]


class TestPruning:
    def test_dead_gate_removed(self):
        b = CircuitBuilder()
        a = b.input("a")
        x = b.input("b")
        b.and_(a, x)  # dead
        b.output("y", b.or_(a, x))
        c = b.build(prune=False)
        assert c.n_gates == 2
        pruned = c.pruned()
        assert pruned.n_gates == 1

    def test_inputs_survive_pruning(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.input("unused")
        b.output("y", b.not_(a))
        c = b.build()  # build prunes by default
        assert c.n_inputs == 2
        assert c.input_names() == ["a", "unused"]

    def test_pruning_preserves_function(self, rng):
        from repro.circuit import simulate_patterns

        b = CircuitBuilder()
        a = b.input("a")
        x = b.input("b")
        b.xor_(a, x)  # dead
        b.output("y", b.and_(a, x))
        c = b.build(prune=False)
        patterns = rng.integers(0, 2, size=(100, 2))
        np.testing.assert_array_equal(
            simulate_patterns(c, patterns), simulate_patterns(c.pruned(), patterns)
        )
