"""Integration tests for the end-to-end BLASYS flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.core.explorer import ExplorerConfig
from repro.core.qor import QoRSpec
from repro.errors import ExplorationError
from repro.flow import FlowResult, measure_error, run_blasys


@pytest.fixture(scope="module")
def adder_flow():
    circuit = ripple_adder(8)
    config = ExplorerConfig(n_samples=2048, max_inputs=8, max_outputs=8)
    return circuit, run_blasys(
        circuit, thresholds=[0.05, 0.25], config=config, final_samples=8192
    )


class TestRunBlasys:
    def test_returns_flow_result(self, adder_flow):
        _, result = adder_flow
        assert isinstance(result, FlowResult)
        assert result.baseline.area_um2 > 0

    def test_designs_realized_per_threshold(self, adder_flow):
        _, result = adder_flow
        assert set(result.designs) <= {0.05, 0.25}
        assert 0.25 in result.designs

    def test_area_savings_positive_at_loose_threshold(self, adder_flow):
        _, result = adder_flow
        design = result.designs[0.25]
        assert design.savings["area"] > 0

    def test_savings_monotone_in_threshold(self, adder_flow):
        _, result = adder_flow
        if 0.05 in result.designs:
            assert (
                result.designs[0.25].savings["area"]
                >= result.designs[0.05].savings["area"] - 1e-9
            )

    def test_measured_error_respects_regime(self, adder_flow):
        _, result = adder_flow
        for thr, design in result.designs.items():
            # Independent re-measurement should be in the same regime as the
            # exploration threshold (sampling noise allowed).
            assert design.measured["mre"] <= 2.0 * thr + 0.02

    def test_summary_mentions_thresholds(self, adder_flow):
        _, result = adder_flow
        text = result.summary()
        assert "baseline" in text
        assert "thr" in text

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ExplorationError):
            run_blasys(ripple_adder(4), thresholds=[])

    def test_interface_preserved(self, adder_flow):
        circuit, result = adder_flow
        for design in result.designs.values():
            assert design.circuit.input_names() == circuit.input_names()
            assert design.circuit.output_names() == circuit.output_names()


class TestQoRSpecHonored:
    """Regression: run_blasys used to re-measure and report with the
    default mre spec even when config.qor drove exploration with another
    metric."""

    def test_hamming_driven_flow_reports_hamming(self):
        circuit = ripple_adder(6)
        config = ExplorerConfig(
            n_samples=1024, max_inputs=6, max_outputs=6,
            qor=QoRSpec("hamming"),
        )
        # thresholds are in the explorer's metric: mean flipped bits/sample
        result = run_blasys(
            circuit, thresholds=[1.5], config=config, final_samples=2048
        )
        assert result.qor_metric == "hamming"
        assert result.designs, "hamming-driven exploration found no design"
        for design in result.designs.values():
            assert design.measured["qor"] == design.measured["hamming"]
            # the filter must have applied to the driving metric
            assert design.point.qor <= 1.5
        assert "hamming" in result.summary()

    def test_measure_error_exposes_spec_metric_as_qor(self):
        circuit = butterfly(5)
        for metric in ("mre", "mae", "hamming"):
            measured = measure_error(
                circuit, circuit, n_samples=512, spec=QoRSpec(metric)
            )
            assert measured["qor"] == measured[metric]


class TestThresholdConsistency:
    """Regression: a config.threshold below max(thresholds) used to stop
    exploration early and silently realize nothing at larger thresholds."""

    def test_too_small_config_threshold_rejected(self):
        config = ExplorerConfig(
            n_samples=256, max_inputs=6, max_outputs=6, threshold=0.05
        )
        with pytest.raises(ExplorationError, match="below the largest"):
            run_blasys(ripple_adder(6), thresholds=[0.05, 0.25], config=config)

    def test_matching_config_threshold_accepted(self):
        config = ExplorerConfig(
            n_samples=512, max_inputs=6, max_outputs=6, threshold=0.25
        )
        result = run_blasys(
            ripple_adder(6), thresholds=[0.25], config=config,
            final_samples=1024,
        )
        assert isinstance(result, FlowResult)

    def test_error_cap_sweeps_unaffected(self):
        config = ExplorerConfig(
            n_samples=512, max_inputs=6, max_outputs=6, error_cap=0.5,
            max_iterations=3,
        )
        result = run_blasys(
            ripple_adder(6), thresholds=[0.25], config=config,
            final_samples=1024,
        )
        assert isinstance(result, FlowResult)


class TestMeasureError:
    def test_zero_for_identical(self):
        circuit = butterfly(5)
        metrics = measure_error(circuit, circuit, n_samples=4096)
        assert metrics["mre"] == 0.0
        assert metrics["hamming"] == 0.0

    def test_input_mismatch_rejected(self):
        with pytest.raises(ExplorationError):
            measure_error(ripple_adder(4), ripple_adder(5), n_samples=128)

    def test_deterministic_given_seed(self):
        circuit = ripple_adder(6)
        from repro.core.explorer import ExplorerConfig, explore

        res = explore(
            circuit,
            ExplorerConfig(n_samples=512, max_inputs=6, max_outputs=6, max_iterations=4),
        )
        approx = res.realize(res.trajectory[-1])
        a = measure_error(circuit, approx, n_samples=2048, seed=9)
        b = measure_error(circuit, approx, n_samples=2048, seed=9)
        assert a == b
