"""Streaming (chunked) engine vs. resident execution.

The contract under test (DESIGN.md "Streaming execution"): chunked
execution is **byte-identical** to resident execution — per-candidate
error floats, dirty-row sets, committed outputs, and whole exploration
trajectories — for every word-aligned chunk size, while peak
sample-matrix memory stays bounded by the chunk budget.  Chunk sizes are
exercised across the shapes that break naive accumulation: one word, a
prime word count, an exact divisor of the word axis, and a chunk larger
than the whole axis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, ripple_adder
from repro.circuit import CircuitBuilder, random_input_words
from repro.circuit.simulate import (
    Chunk,
    plan_chunks,
    simulate_outputs,
    unpack_bits,
    words_for,
)
from repro.core.engine import CompiledEvaluator, make_evaluator
from repro.core.explorer import ExplorerConfig, explore
from repro.core.profile import profile_windows
from repro.core.qor import METRICS, QoREvaluator, QoRSpec
from repro.core.streaming import StreamingEvaluator, auto_chunk_words
from repro.errors import ExplorationError, SimulationError
from repro.flow import run_blasys
from repro.partition import decompose
from repro.runtime import RuntimeStats

from explore_fixtures import trajectory_key

#: The chunk-size shapes every identity test sweeps: a single word, a
#: prime word count, an exact divisor of the axis, and larger-than-axis.
CHUNK_SHAPES = ("one", "prime", "divisor", "over")


def chunk_sizes(total_words: int):
    divisor = next(
        (d for d in range(2, total_words + 1) if total_words % d == 0),
        1,
    )
    return {
        "one": 1,
        "prime": 7,
        "divisor": divisor,
        "over": total_words + 13,
    }


class TestPlanChunks:
    def test_partitions_word_axis(self):
        chunks = plan_chunks(700, 3)
        assert chunks[0].start == 0 and chunks[-1].stop == words_for(700)
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start
        assert all(c.n_words <= 3 for c in chunks)

    def test_interior_chunks_fully_valid(self):
        chunks = plan_chunks(64 * 10, 4)
        assert [c.n_valid for c in chunks] == [256, 256, 128]

    def test_tail_clamp_last_chunk(self):
        chunks = plan_chunks(130, 1)
        assert [c.n_valid for c in chunks] == [64, 64, 2]

    def test_padded_total_words_clamps_to_zero_not_negative(self):
        # Chunks entirely past n_samples hold 0 valid patterns.
        chunks = plan_chunks(70, 2, total_words=8)
        assert [c.n_valid for c in chunks] == [70, 0, 0, 0]

    def test_chunk_larger_than_axis(self):
        chunks = plan_chunks(100, 1000)
        assert chunks == [Chunk(0, 2, 100)]

    def test_no_sample_count(self):
        chunks = plan_chunks(None, 2, total_words=5)
        assert [c.n_valid for c in chunks] == [None, None, None]

    def test_invalid_inputs_raise(self):
        with pytest.raises(SimulationError):
            plan_chunks(100, 0)
        with pytest.raises(SimulationError):
            plan_chunks(None, 4)

    def test_simulate_outputs_rides_the_plan(self, rng):
        circuit = ripple_adder(6)
        n = 500
        words = random_input_words(circuit.n_inputs, n, rng)
        full = simulate_outputs(circuit, words, n_samples=n)
        for cw in (1, 3, 7):
            chunked = simulate_outputs(
                circuit, words, chunk_words=cw, n_samples=n
            )
            np.testing.assert_array_equal(chunked, full)


class TestQoRChunkedPartials:
    @pytest.mark.parametrize("metric", METRICS)
    def test_partials_are_chunk_invariant(self, metric, rng):
        """Concatenated chunk partials == full-width partials, byte for
        byte, so any word-aligned accumulation reproduces evaluate()."""
        circuit = butterfly(5)
        n = 777
        words = random_input_words(circuit.n_inputs, n, rng)
        exact = simulate_outputs(circuit, words, n_samples=n)
        qor = QoREvaluator(circuit, exact, n, QoRSpec(metric))
        approx = exact.copy()
        approx ^= rng.integers(
            0, 1 << 63, size=approx.shape, dtype=np.uint64
        )
        total_w = words_for(n)
        if metric == "hamming":
            full = qor.row_hamming(approx)
            for cw in chunk_sizes(total_w).values():
                acc = np.zeros_like(full)
                for c in plan_chunks(n, cw):
                    acc += qor.row_hamming(
                        approx[:, c.start : c.stop], None, c.start, c.n_valid
                    )
                np.testing.assert_array_equal(acc, full)
            return
        for pos in range(len(qor.words)):
            full = qor.word_partials(pos, approx)
            for cw in chunk_sizes(total_w).values():
                parts = [
                    qor.word_partials(
                        pos, approx[:, c.start : c.stop], c.start, c.n_valid
                    )
                    for c in plan_chunks(n, cw)
                ]
                np.testing.assert_array_equal(np.concatenate(parts), full)
            assert float(full.sum()) == qor._word_sum(
                qor.words[pos], approx, metric
            )

    def test_spliced_requires_rebase(self, rng):
        circuit = ripple_adder(4)
        n = 64
        words = random_input_words(circuit.n_inputs, n, rng)
        exact = simulate_outputs(circuit, words, n_samples=n)
        qor = QoREvaluator(circuit, exact, n)
        with pytest.raises(SimulationError):
            qor.evaluate_spliced({})
        with pytest.raises(SimulationError):
            qor.base_partials(0)
        qor.rebase(exact)
        assert qor.evaluate_spliced({}) == 0.0
        with pytest.raises(SimulationError):
            qor.evaluate_spliced_hamming({})


def _random_circuit(rng, n_inputs=6, n_gates=40, n_outputs=5):
    b = CircuitBuilder("fuzz")
    sigs = [b.input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        op = rng.integers(0, 8)
        picks = rng.choice(len(sigs), size=3, replace=True)
        x, y, z = (sigs[int(p)] for p in picks)
        sigs.append(
            [
                lambda: b.and_(x, y),
                lambda: b.or_(x, y),
                lambda: b.xor_(x, y),
                lambda: b.not_(x),
                lambda: b.mux(x, y, z),
                lambda: b.nand_(x, y),
                lambda: b.nor_(x, y),
                lambda: b.xnor_(x, y),
            ][int(op)]()
        )
    for i, s in enumerate(sigs[-n_outputs:]):
        b.output(f"o{i}", s)
    return b.build()


class TestScanErrorIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 200),
        shape=st.sampled_from(CHUNK_SHAPES),
    )
    def test_property_scan_errors_byte_identical(self, seed, n, shape):
        """Property: over random circuits, windows, tables, chunk shapes
        and commit interleavings, every streamed candidate error float
        and dirty-row set equals the resident delta-QoR path exactly."""
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng)
        windows = decompose(circuit, 5, 5)
        words = random_input_words(circuit.n_inputs, n, rng)
        cw = chunk_sizes(words_for(n))[shape]
        res = CompiledEvaluator(circuit, windows, words, n)
        stream = StreamingEvaluator(circuit, windows, words, n, chunk_words=cw)
        np.testing.assert_array_equal(
            stream.exact_outputs, res.exact_outputs
        )
        q_res = QoREvaluator(circuit, res.exact_outputs, n)
        q_str = QoREvaluator(circuit, stream.exact_outputs, n)
        q_res.rebase(res.exact_outputs)
        q_str.rebase(stream.exact_outputs)
        for round_ in range(3):
            requests = [
                (
                    w.index,
                    [
                        rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
                        for _ in range(2)
                    ],
                )
                for w in windows
            ]
            scanned = stream.scan_errors(requests, q_str)
            for (index, tables), got in zip(requests, scanned):
                expect = res.preview_batch_delta(index, tables)
                assert len(got) == len(expect)
                for (err, rows), (out, dirty) in zip(got, expect):
                    assert err == q_res.evaluate_delta(out, dirty)
                    assert rows == tuple(sorted(dirty))
            # Memoized replay serves the identical floats.
            assert stream.scan_errors(requests, q_str) == scanned
            w = windows[int(rng.integers(0, len(windows)))]
            table = rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5
            res.commit(w.index, table)
            stream.commit(w.index, table)
            q_res.rebase(res.current_outputs())
            q_str.rebase(stream.current_outputs())
            np.testing.assert_array_equal(
                unpack_bits(stream.current_outputs(), n),
                unpack_bits(res.current_outputs(), n),
            )

    def test_memo_invalidation_across_mid_chunk_commit(self, rng):
        """Regression: a commit whose sample tail lands mid-chunk (the
        pattern axis ends inside the final 3-word chunk) must invalidate
        exactly the stale memo entries — the rescan after the commit has
        to match a fresh resident evaluation, not the cached floats."""
        circuit = butterfly(5)
        windows = decompose(circuit, 6, 6)
        n = 300  # words_for = 5; chunk_words=3 -> commit spans chunks
        words = random_input_words(circuit.n_inputs, n, rng)
        res = CompiledEvaluator(circuit, windows, words, n)
        stream = StreamingEvaluator(circuit, windows, words, n, chunk_words=3)
        q_res = QoREvaluator(circuit, res.exact_outputs, n)
        q_str = QoREvaluator(circuit, stream.exact_outputs, n)
        q_res.rebase(res.exact_outputs)
        q_str.rebase(stream.exact_outputs)
        tables = {
            w.index: [rng.random((1 << w.n_inputs, w.n_outputs)) < 0.5]
            for w in windows
        }
        requests = [(w.index, tables[w.index]) for w in windows]
        first = stream.scan_errors(requests, q_str)
        assert stream.scan_errors(requests, q_str) == first  # memo primed
        victim = windows[0]
        res.commit(victim.index, tables[victim.index][0])
        stream.commit(victim.index, tables[victim.index][0])
        q_res.rebase(res.current_outputs())
        q_str.rebase(stream.current_outputs())
        rescanned = stream.scan_errors(requests, q_str)
        for (index, tbls), got in zip(requests, rescanned):
            for (err, rows), (out, dirty) in zip(
                got, res.preview_batch_delta(index, tbls)
            ):
                assert err == q_res.evaluate_delta(out, dirty)
                assert rows == tuple(sorted(dirty))

    def test_resident_preview_apis_raise(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 64, rng)
        stream = StreamingEvaluator(circuit, windows, words, 64, chunk_words=1)
        w = windows[0]
        with pytest.raises(SimulationError):
            stream.preview_batch(w.index, [w.table(circuit)])
        with pytest.raises(SimulationError):
            stream.preview_batch_delta(w.index, [w.table(circuit)])
        with pytest.raises(SimulationError):
            stream.preview_scan([(w.index, [w.table(circuit)])])

    def test_make_evaluator_selects_streaming(self, rng):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 4, 4)
        words = random_input_words(circuit.n_inputs, 64, rng)
        ev = make_evaluator(
            circuit, windows, words, 64, engine="compiled", chunk_words=1
        )
        assert isinstance(ev, StreamingEvaluator)
        with pytest.raises(SimulationError):
            make_evaluator(
                circuit, windows, words, 64, engine="reference", chunk_words=1
            )
        with pytest.raises(SimulationError):
            StreamingEvaluator(circuit, windows, words, 64, chunk_words=0)




class TestStreamingTrajectoryIdentity:
    @pytest.mark.parametrize("strategy", ["full", "lazy"])
    @pytest.mark.parametrize("shape", CHUNK_SHAPES)
    def test_trajectories_byte_identical(
        self, strategy, shape, butterfly_profiled
    ):
        """Full explore() runs agree between resident and every chunked
        configuration, bit for bit — the streaming acceptance bar."""
        circuit, windows, profiles = butterfly_profiled
        n = 700
        base = dict(
            n_samples=n, max_inputs=8, max_outputs=8, strategy=strategy
        )
        resident = explore(
            circuit, ExplorerConfig(**base), windows=windows, profiles=profiles
        )
        cw = chunk_sizes(words_for(n))[shape]
        chunked = explore(
            circuit,
            ExplorerConfig(chunk_words=cw, **base),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(chunked) == trajectory_key(resident)
        assert chunked.n_evaluations == resident.n_evaluations

    def test_memory_bounded_by_chunk_budget(self, butterfly_profiled):
        """The streaming engine's recorded peak sample-matrix bytes obey
        the documented 2 × 8 × n_nodes × chunk_words bound and undercut
        the resident matrix."""
        circuit, windows, profiles = butterfly_profiled
        n = 1024
        cw = 2
        chunked = explore(
            circuit,
            ExplorerConfig(
                n_samples=n, max_inputs=8, max_outputs=8, chunk_words=cw
            ),
            windows=windows,
            profiles=profiles,
        )
        stats = chunked.runtime_stats
        assert stats.chunk_words == cw
        assert stats.n_chunk_passes > 0
        assert 0 < stats.peak_sample_matrix_bytes <= (
            2 * 8 * circuit.n_nodes * cw
        )
        resident = explore(
            circuit,
            ExplorerConfig(n_samples=n, max_inputs=8, max_outputs=8),
            windows=windows,
            profiles=profiles,
        )
        assert (
            stats.peak_sample_matrix_bytes
            < resident.runtime_stats.peak_sample_matrix_bytes
        )

    def test_auto_chunk_from_budget(self, butterfly_profiled):
        circuit, windows, profiles = butterfly_profiled
        n = 4096
        budget_mb = circuit.n_nodes * 16 * 4 / 1e6  # fits 4 chunk words
        result = explore(
            circuit,
            ExplorerConfig(
                n_samples=n,
                max_inputs=8,
                max_outputs=8,
                chunk_budget_mb=budget_mb,
            ),
            windows=windows,
            profiles=profiles,
        )
        stats = result.runtime_stats
        assert stats.chunk_words == 4
        assert stats.peak_sample_matrix_bytes <= budget_mb * 1e6
        resident = explore(
            circuit,
            ExplorerConfig(n_samples=n, max_inputs=8, max_outputs=8),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(result) == trajectory_key(resident)

    def test_auto_chunk_words_helper(self):
        # Budget covering the whole axis -> resident (None).
        assert auto_chunk_words(100, 10**9, 64) is None
        # Tiny budget -> at least one word.
        assert auto_chunk_words(100, 1, 64) == 1
        assert auto_chunk_words(100, 16 * 100 * 7, 64) == 7
        # Budget between 1x and 2x the resident matrix: chunking would
        # *grow* the working set, so stay resident.
        resident = 8 * 100 * 64
        assert auto_chunk_words(100, resident, 64) is None
        assert auto_chunk_words(100, int(1.5 * resident), 64) is None
        assert auto_chunk_words(100, resident - 1, 64) == (resident - 1) // (16 * 100)

    def test_config_validation(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(chunk_words=0)
        with pytest.raises(ExplorationError):
            ExplorerConfig(chunk_budget_mb=-1.0)
        with pytest.raises(ExplorationError):
            ExplorerConfig(engine="reference", chunk_words=4)
        with pytest.raises(ExplorationError):
            ExplorerConfig(engine="reference", chunk_budget_mb=1.0)


class TestFlowMemoryReporting:
    def test_summary_reports_peak_matrix_and_chunk(self):
        circuit = ripple_adder(4)
        config = ExplorerConfig(
            n_samples=512, max_inputs=4, max_outputs=4, chunk_words=2
        )
        result = run_blasys(
            circuit, thresholds=[0.25], config=config, final_samples=1024
        )
        text = result.summary()
        assert "peak sample matrix" in text
        assert "chunk size 2 words" in text

    def test_summary_reports_resident_mode(self):
        circuit = ripple_adder(4)
        config = ExplorerConfig(n_samples=512, max_inputs=4, max_outputs=4)
        result = run_blasys(
            circuit, thresholds=[0.25], config=config, final_samples=1024
        )
        assert "resident (unchunked)" in result.summary()


class TestStreamingStats:
    def test_chunk_counters(self, rng):
        circuit = ripple_adder(6)
        windows = decompose(circuit, 6, 6)
        n = 320
        words = random_input_words(circuit.n_inputs, n, rng)
        stats = RuntimeStats()
        stream = StreamingEvaluator(
            circuit, windows, words, n, chunk_words=2, stats=stats
        )
        qor = QoREvaluator(circuit, stream.exact_outputs, n)
        qor.rebase(stream.exact_outputs)
        w = windows[0]
        stream.scan_errors([(w.index, [~w.table(circuit)])], qor)
        assert stats.chunk_words == 2
        assert stats.n_chunk_passes >= 3  # words_for(320)=5 -> 3 chunks
        assert stats.n_preview_sweeps == 1
        assert stats.peak_sample_matrix_bytes > 0
        assert "chunk=2 words" in stats.summary()
