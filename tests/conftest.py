"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, CircuitBuilder


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xB1A5)


@pytest.fixture
def tiny_and_or() -> Circuit:
    """y0 = a & b, y1 = a | c — a 3-input, 2-output toy circuit."""
    b = CircuitBuilder("tiny")
    a = b.input("a")
    bb = b.input("b")
    c = b.input("c")
    b.output("y0", b.and_(a, bb))
    b.output("y1", b.or_(a, c))
    return b.build()


@pytest.fixture
def full_adder_circuit() -> Circuit:
    """One-bit full adder with (sum, carry) outputs."""
    b = CircuitBuilder("fa")
    a = b.input("a")
    x = b.input("b")
    c = b.input("cin")
    s, carry = b.full_adder(a, x, c)
    b.output("sum", s)
    b.output("cout", carry)
    return b.build()
