"""Shared fixtures for the test suite.

The exploration-facing files (test_core_explorer / test_engine /
test_streaming / test_executor / test_faults / test_search) all drive
the same profiled circuits; the builders live here once.  The
module-level helpers (``trajectory_key`` / ``explorer_config``) live in
``explore_fixtures.py`` — import them from there, not from here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, mult8, ripple_adder
from repro.circuit import Circuit, CircuitBuilder
from repro.core.profile import profile_windows
from repro.partition.decompose import decompose


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xB1A5)


@pytest.fixture
def tiny_and_or() -> Circuit:
    """y0 = a & b, y1 = a | c — a 3-input, 2-output toy circuit."""
    b = CircuitBuilder("tiny")
    a = b.input("a")
    bb = b.input("b")
    c = b.input("c")
    b.output("y0", b.and_(a, bb))
    b.output("y1", b.or_(a, c))
    return b.build()


@pytest.fixture
def full_adder_circuit() -> Circuit:
    """One-bit full adder with (sum, carry) outputs."""
    b = CircuitBuilder("fa")
    a = b.input("a")
    x = b.input("b")
    c = b.input("cin")
    s, carry = b.full_adder(a, x, c)
    b.output("sum", s)
    b.output("cout", carry)
    return b.build()


@pytest.fixture(scope="session")
def mult8_circuit() -> Circuit:
    """The paper's 8x8 array multiplier benchmark."""
    return mult8()


@pytest.fixture(scope="session")
def adder8_circuit() -> Circuit:
    """8-bit ripple-carry adder benchmark."""
    return ripple_adder(8)


@pytest.fixture(scope="session")
def butterfly_profiled():
    """(circuit, windows, profiles) of butterfly(6) at an 8x8 budget.

    The workhorse of the engine/streaming/executor/fault/search suites:
    small enough for CI, rich enough for multi-window trajectories.
    """
    circuit = butterfly(6)
    windows = decompose(circuit, 8, 8)
    profiles = profile_windows(circuit, windows)
    return circuit, windows, profiles


@pytest.fixture(scope="session")
def adder8_profiled(adder8_circuit):
    """(circuit, windows, profiles) of the 8-bit adder at an 8x8 budget."""
    windows = decompose(adder8_circuit, 8, 8)
    profiles = profile_windows(adder8_circuit, windows)
    return adder8_circuit, windows, profiles
