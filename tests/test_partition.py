"""Tests for k×m decomposition and window substitution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import butterfly, mult8, ripple_adder, array_multiplier
from repro.circuit import (
    CircuitBuilder,
    simulate_patterns,
    truth_table,
)
from repro.core.bmf import factorize, identity_result
from repro.errors import DecompositionError
from repro.partition import (
    FactoredReplacement,
    TableReplacement,
    Window,
    decompose,
    substitute_windows,
    validate_decomposition,
)


class TestDecompose:
    @pytest.mark.parametrize("factory,k,m", [
        (lambda: ripple_adder(8), 10, 10),
        (lambda: ripple_adder(8), 6, 6),
        (lambda: butterfly(6), 8, 8),
        (lambda: array_multiplier(5), 10, 10),
    ])
    def test_valid_partition(self, factory, k, m):
        circuit = factory()
        windows = decompose(circuit, k, m)
        validate_decomposition(circuit, windows, k, m)

    def test_covers_every_gate_once(self):
        circuit = ripple_adder(8)
        windows = decompose(circuit)
        members = [v for w in windows for v in w.members]
        assert sorted(members) == sorted(circuit.gate_ids())

    def test_respects_small_budgets(self):
        circuit = array_multiplier(4)
        windows = decompose(circuit, max_inputs=4, max_outputs=3)
        for w in windows:
            assert w.n_inputs <= 4
            assert w.n_outputs <= 3

    def test_bad_budget_rejected(self):
        with pytest.raises(DecompositionError):
            decompose(ripple_adder(4), max_inputs=0)

    def test_refinement_does_not_break_validity(self):
        circuit = array_multiplier(5)
        windows = decompose(circuit, 8, 8, refine_passes=3)
        validate_decomposition(circuit, windows, 8, 8)

    def test_refinement_does_not_increase_cut(self):
        circuit = array_multiplier(5)
        raw = decompose(circuit, 8, 8, refine_passes=0)
        refined = decompose(circuit, 8, 8, refine_passes=2)
        cut = lambda ws: sum(w.n_inputs for w in ws)
        assert cut(refined) <= cut(raw)

    def test_windows_are_multi_output(self):
        # On arithmetic circuits the clustering should produce genuinely
        # multi-output windows (that is what BLASYS exploits vs SALSA).
        circuit = mult8()
        windows = decompose(circuit)
        assert max(w.n_outputs for w in windows) >= 3

    def test_single_gate_circuit(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.and_(x, y))
        circuit = b.build()
        windows = decompose(circuit)
        assert len(windows) == 1
        assert windows[0].n_outputs == 1


class TestWindowExtraction:
    def test_window_table_matches_parent_function(self):
        circuit = ripple_adder(6)
        windows = decompose(circuit, 8, 8)
        # pick the largest window and verify its table against resimulation
        w = max(windows, key=lambda w: w.n_members)
        sub = w.subcircuit(circuit)
        assert sub.n_inputs == w.n_inputs
        assert sub.n_outputs == w.n_outputs
        table = w.table(circuit)
        assert table.shape == (1 << w.n_inputs, w.n_outputs)
        np.testing.assert_array_equal(table, truth_table(sub))


class TestSubstitution:
    def _exact_roundtrip(self, circuit, k=8, m=8):
        windows = decompose(circuit, k, m)
        replacements = {
            w.index: TableReplacement(w.table(circuit)) for w in windows
        }
        rebuilt = substitute_windows(circuit, windows, replacements)
        assert rebuilt.input_names() == circuit.input_names()
        assert rebuilt.output_names() == circuit.output_names()
        rng = np.random.default_rng(0)
        pats = rng.integers(0, 2, size=(300, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(rebuilt, pats), simulate_patterns(circuit, pats)
        )

    def test_exact_tables_preserve_function_adder(self):
        self._exact_roundtrip(ripple_adder(8))

    def test_exact_tables_preserve_function_butterfly(self):
        self._exact_roundtrip(butterfly(6))

    def test_exact_tables_preserve_function_multiplier(self):
        self._exact_roundtrip(array_multiplier(5))

    def test_partial_substitution(self):
        circuit = ripple_adder(8)
        windows = decompose(circuit, 6, 6)
        # replace only the first window, exactly
        w = windows[0]
        rebuilt = substitute_windows(
            circuit, windows, {w.index: TableReplacement(w.table(circuit))}
        )
        rng = np.random.default_rng(1)
        pats = rng.integers(0, 2, size=(200, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(rebuilt, pats), simulate_patterns(circuit, pats)
        )

    def test_factored_replacement_identity_is_exact(self):
        circuit = ripple_adder(6)
        windows = decompose(circuit, 8, 8)
        replacements = {}
        for w in windows:
            ident = identity_result(w.table(circuit))
            replacements[w.index] = FactoredReplacement(ident.B, ident.C)
        rebuilt = substitute_windows(circuit, windows, replacements)
        rng = np.random.default_rng(2)
        pats = rng.integers(0, 2, size=(200, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(rebuilt, pats), simulate_patterns(circuit, pats)
        )

    def test_factored_replacement_matches_bmf_product(self):
        circuit = butterfly(5)
        windows = decompose(circuit, 8, 8)
        w = max(windows, key=lambda w: w.n_outputs)
        table = w.table(circuit)
        result = factorize(table, max(1, w.n_outputs - 1))
        # Build both forms; they must agree with B∘C's table.
        lut = substitute_windows(
            circuit, windows, {w.index: TableReplacement(result.product)}
        )
        gates = substitute_windows(
            circuit, windows, {w.index: FactoredReplacement(result.B, result.C)}
        )
        rng = np.random.default_rng(3)
        pats = rng.integers(0, 2, size=(300, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(lut, pats), simulate_patterns(gates, pats)
        )

    def test_bad_table_shape_rejected(self):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 6, 6)
        w = windows[0]
        bad = np.zeros((2, w.n_outputs), dtype=bool)
        with pytest.raises(DecompositionError):
            substitute_windows(circuit, windows, {w.index: TableReplacement(bad)})

    def test_unknown_window_rejected(self):
        circuit = ripple_adder(4)
        windows = decompose(circuit, 6, 6)
        with pytest.raises(DecompositionError):
            substitute_windows(
                circuit,
                windows,
                {999: TableReplacement(np.zeros((4, 1), dtype=bool))},
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_random_circuits_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        b = CircuitBuilder("rand")
        sigs = [b.input(f"i{k}") for k in range(5)]
        for _ in range(25):
            op = rng.integers(0, 4)
            x, y = (sigs[int(i)] for i in rng.choice(len(sigs), 2))
            if op == 0:
                sigs.append(b.and_(x, y))
            elif op == 1:
                sigs.append(b.or_(x, y))
            elif op == 2:
                sigs.append(b.xor_(x, y))
            else:
                sigs.append(b.not_(x))
        for i, s in enumerate(sigs[-4:]):
            b.output(f"o{i}", s)
        circuit = b.build()
        if circuit.n_gates == 0:
            return
        windows = decompose(circuit, 5, 4)
        validate_decomposition(circuit, windows, 5, 4)
        replacements = {
            w.index: TableReplacement(w.table(circuit)) for w in windows
        }
        rebuilt = substitute_windows(circuit, windows, replacements)
        np.testing.assert_array_equal(
            truth_table(rebuilt), truth_table(circuit)
        )
