"""Property tests: packed-bitset kernels == dense references, bit for bit.

The dense references here follow the kernel determinism contract of
DESIGN.md ("BMF kernel"): integer mismatch counts combined with weights in
one ``np.dot``, subset weight sums left-associated in increasing column
order, first-max tie breaking.  Weight strategies use integer-valued (and
power-of-two) floats so that every float sum in *any* association order is
exact — which upgrades "close" to "bit-for-bit" and makes the equality
assertions legitimate against independently-written formulas.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.simulate import (
    _bit_count_lut,
    bit_count,
    pack_bits,
    popcount_words,
    unpack_bits,
)
from repro.core.bmf import bool_product, weighted_error
from repro.core.bmf.packed import (
    MAX_MASK_BITS,
    PackedColumns,
    candidate_gains_masks,
    combine_columns,
    fit_C_packed,
    mismatch_counts,
    packed_bool_product,
    packed_weighted_error,
    row_masks,
    weight_table,
    weighted_counts_error,
)
from repro.errors import FactorizationError


def _random_matrix(seed: int, n: int, m: int, density: float = 0.5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, m)) < density


def _random_weights(seed: int, m: int) -> np.ndarray:
    """Integer-valued float weights: every partial sum is exact in float64."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 9, m).astype(float)


class TestBitCount:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_matches_python_bitcount(self, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 1 << 64, size=17, dtype=np.uint64)
        expected = np.array([int(v).bit_count() for v in words])
        np.testing.assert_array_equal(bit_count(words), expected)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_lut_fallback_matches_primary(self, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 1 << 64, size=(3, 5), dtype=np.uint64)
        np.testing.assert_array_equal(_bit_count_lut(words), bit_count(words))

    def test_shape_preserved(self):
        words = np.full((2, 3), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        counts = bit_count(words)
        assert counts.shape == (2, 3)
        assert (counts == 64).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999), n=st.integers(1, 200))
    def test_popcount_words_no_unpack_matches_bits(self, seed, n):
        rng = np.random.default_rng(seed)
        bits = (rng.random(n) < 0.5).astype(np.uint8)
        words = pack_bits(bits)
        assert popcount_words(words) == int(bits.sum())
        # Garbage tails must be masked out when n is given.
        dirty = ~words
        assert popcount_words(dirty, n=n) == int((1 - bits).sum())


class TestPackedColumns:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999), n=st.integers(1, 100), m=st.integers(1, 9))
    def test_round_trip(self, seed, n, m):
        M = _random_matrix(seed, n, m)
        P = PackedColumns.from_dense(M)
        assert P.n_rows == n and P.m == m
        np.testing.assert_array_equal(P.to_dense(), M)

    def test_tail_bits_zero(self):
        M = np.ones((70, 2), dtype=bool)
        P = PackedColumns.from_dense(M)
        # 70 rows -> 2 words; 58 tail bits must be zero for exact popcounts.
        assert int(bit_count(P.words).sum()) == 140

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_weighted_error_bitwise_equal(self, seed):
        M = _random_matrix(seed, 100, 6)
        A = _random_matrix(seed + 1, 100, 6)
        for w in (None, _random_weights(seed, 6), np.power(2.0, np.arange(6))):
            dense = weighted_error(M, A, w)
            ww = np.ones(6) if w is None else w
            packed = packed_weighted_error(
                PackedColumns.from_dense(M), PackedColumns.from_dense(A), ww
            )
            assert dense == packed  # bit-for-bit, not approx

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        algebra=st.sampled_from(["semiring", "field"]),
    )
    def test_bool_product_equal(self, seed, algebra):
        rng = np.random.default_rng(seed)
        B = rng.random((80, 4)) < 0.4
        C = rng.random((4, 7)) < 0.4
        dense = bool_product(B, C, algebra)
        packed = packed_bool_product(PackedColumns.from_dense(B), C, algebra)
        np.testing.assert_array_equal(packed.to_dense(), dense)

    def test_mismatch_counts_shape_check(self):
        P = PackedColumns.from_dense(np.zeros((8, 3), dtype=bool))
        Q = PackedColumns.from_dense(np.zeros((8, 4), dtype=bool))
        with pytest.raises(FactorizationError):
            mismatch_counts(P, Q)


class TestRowMasksAndWeightTable:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999), m=st.integers(1, 16))
    def test_row_masks_bits(self, seed, m):
        M = _random_matrix(seed, 20, m)
        masks = row_masks(M)
        for r in range(20):
            expected = sum(1 << j for j in range(m) if M[r, j])
            assert int(masks[r]) == expected

    def test_row_masks_width_limit(self):
        with pytest.raises(FactorizationError):
            row_masks(np.zeros((2, 65), dtype=bool))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999), m=st.integers(1, 10))
    def test_weight_table_left_associated_sums(self, seed, m):
        # Arbitrary float weights: the table must equal the left-associated
        # increasing-index sum *exactly* (the canonical order contract).
        rng = np.random.default_rng(seed)
        w = rng.random(m)
        table = weight_table(w)
        for s in rng.integers(0, 1 << m, size=20):
            acc = 0.0
            for j in range(m):
                if (s >> j) & 1:
                    acc = acc + w[j]
            assert table[s] == acc

    def test_weight_table_width_limit(self):
        with pytest.raises(FactorizationError):
            weight_table(np.ones(MAX_MASK_BITS + 1))


def _dense_gains(M, covered, candidates, w, bonus, penalty):
    """The dense ASSO scoring (the pre-packed formulation)."""
    good = (M & ~covered).astype(float)
    bad = (~M & ~covered).astype(float)
    cand_w = candidates.astype(float) * w[None, :]
    gain = bonus * (good @ cand_w.T) - penalty * (bad @ cand_w.T)
    usage = gain > 0
    totals = np.where(usage, gain, 0.0).sum(axis=0)
    return totals, usage


class TestCandidateGains:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999), m=st.integers(2, 10))
    def test_packed_equals_dense_matmul(self, seed, m):
        rng = np.random.default_rng(seed)
        n = 64
        M = rng.random((n, m)) < 0.5
        covered = rng.random((n, m)) < 0.2
        candidates = rng.random((5, m)) < 0.4
        w = _random_weights(seed, m)  # exact-sum weights
        totals_d, usage_d = _dense_gains(M, covered, candidates, w, 1.0, 1.0)

        wtab = weight_table(w)
        good = row_masks(M & ~covered)
        bad = row_masks(~M & ~covered)
        totals_p, usage_p = candidate_gains_masks(
            good, bad, row_masks(candidates), wtab, 1.0, 1.0
        )
        np.testing.assert_array_equal(totals_p, totals_d)
        np.testing.assert_array_equal(usage_p, usage_d)


def _fit_C_dense(M, B, weights, algebra):
    """Dense greedy decompressor fit, canonical per-column errors.

    Candidate errors are ``weights[j] * mismatch_count`` (DESIGN.md: count
    comparisons stand in for weighted comparisons within one column; the
    pre-packed formulation summed ``weights[j]`` once per mismatch row,
    whose pairwise-summation tree could break exact ties sub-ulp).
    """
    n, m = M.shape
    f = B.shape[1]
    C = np.zeros((f, m), dtype=bool)
    for j in range(m):
        target = M[:, j]
        cur = np.zeros(n, dtype=bool)
        err = weights[j] * int((target != cur).sum())
        while True:
            best_l, best_err, best_vec = None, err, None
            for l in range(f):
                if C[l, j]:
                    continue
                trial = (cur | B[:, l]) if algebra == "semiring" else (cur ^ B[:, l])
                trial_err = weights[j] * int((target != trial).sum())
                if trial_err < best_err:
                    best_l, best_err, best_vec = l, trial_err, trial
            if best_l is None:
                break
            C[best_l, j] = True
            err, cur = best_err, best_vec
    return C


class TestFitC:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        algebra=st.sampled_from(["semiring", "field"]),
    )
    def test_packed_fit_matches_dense_decisions(self, seed, algebra):
        rng = np.random.default_rng(seed)
        n, m, f = 64, 6, 3
        M = rng.random((n, m)) < 0.5
        B = rng.random((n, f)) < 0.5
        # Arbitrary float weights (plus a zero): decisions are per-column
        # count comparisons, so equality must hold for ANY weights.
        w = rng.random(m)
        w[0] = 0.0
        dense_C = _fit_C_dense(M, B, w, algebra)
        packed_C = fit_C_packed(
            PackedColumns.from_dense(M),
            PackedColumns.from_dense(B).words,
            w,
            algebra,
        )
        np.testing.assert_array_equal(packed_C, dense_C)


class TestCombineColumns:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        algebra=st.sampled_from(["semiring", "field"]),
    )
    def test_accumulation_matches_dense(self, seed, algebra):
        rng = np.random.default_rng(seed)
        n, f = 100, 5
        B = rng.random((n, f)) < 0.5
        sel = rng.random(f) < 0.5
        words = combine_columns(PackedColumns.from_dense(B).words, sel, algebra)
        if sel.any():
            cols = B[:, sel]
            expected = (
                cols.any(axis=1) if algebra == "semiring"
                else (cols.sum(axis=1) % 2).astype(bool)
            )
        else:
            expected = np.zeros(n, dtype=bool)
        np.testing.assert_array_equal(unpack_bits(words, n).astype(bool), expected)


class TestCanonicalError:
    def test_counts_dot_definition(self):
        counts = np.array([3, 0, 2])
        w = np.array([0.5, 10.0, 2.0])
        assert weighted_counts_error(counts, w) == float(np.dot([3.0, 0.0, 2.0], w))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_dense_weighted_error_uses_counts(self, seed):
        # weighted_error must equal dot(mismatch counts, w) bit-for-bit even
        # for messy float weights — that IS its definition now.
        rng = np.random.default_rng(seed)
        M = rng.random((50, 5)) < 0.5
        A = rng.random((50, 5)) < 0.5
        w = rng.random(5) * 3
        counts = (M ^ A).sum(axis=0)
        assert weighted_error(M, A, w) == weighted_counts_error(counts, w)
