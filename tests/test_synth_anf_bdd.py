"""Tests for the multi-level synthesis paths: ANF and shared BDDs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import ripple_adder
from repro.circuit import CircuitBuilder, truth_table
from repro.errors import SynthesisError
from repro.synth import (
    anf_coefficients,
    anf_cost,
    anf_terms,
    anf_to_gates,
    bdd_cost,
    bdd_to_gates,
    build_shared_bdd,
    synthesize_output,
    synthesize_outputs_shared,
    synthesize_table,
    tech_map,
)


def _parity_table(k):
    idx = np.arange(1 << k)
    out = np.zeros(1 << k, dtype=bool)
    for i in range(k):
        out ^= ((idx >> i) & 1).astype(bool)
    return out


class TestAnf:
    def test_xor_anf_is_linear(self):
        terms = anf_terms(_parity_table(4))
        assert sorted(terms) == [1, 2, 4, 8]

    def test_and_anf_single_term(self):
        table = np.zeros(8, dtype=bool)
        table[7] = True  # a & b & c
        assert anf_terms(table) == [7]

    def test_constant_one(self):
        assert anf_terms(np.ones(4, dtype=bool)) == [0]

    def test_constant_zero(self):
        assert anf_terms(np.zeros(4, dtype=bool)) == []

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999), k=st.integers(1, 6))
    def test_moebius_roundtrip(self, seed, k):
        """Evaluating the ANF must reproduce the truth table."""
        rng = np.random.default_rng(seed)
        table = rng.random(1 << k) < 0.5
        terms = anf_terms(table)
        idx = np.arange(1 << k)
        recon = np.zeros(1 << k, dtype=bool)
        for t in terms:
            recon ^= (idx & t) == t
        np.testing.assert_array_equal(recon, table)

    def test_anf_gates_equivalent(self, rng):
        table = rng.random(32) < 0.5
        b = CircuitBuilder()
        ins = [b.input(f"x{i}") for i in range(5)]
        b.output("y", anf_to_gates(b, anf_terms(table), ins))
        got = truth_table(b.build())[:, 0]
        np.testing.assert_array_equal(got, table)

    def test_cost_prefers_parity(self):
        k = 6
        assert anf_cost(anf_terms(_parity_table(k))) < 20

    def test_bad_length_rejected(self):
        with pytest.raises(SynthesisError):
            anf_coefficients(np.zeros(6, dtype=bool))


class TestSharedBdd:
    def test_adder_tables_have_compact_shared_bdd(self):
        tt = truth_table(ripple_adder(4))
        bdd = build_shared_bdd(tt)
        # carry-chain sharing: far fewer nodes than the 2^k bound
        assert bdd.n_internal < 40

    def test_single_output_xor(self):
        bdd = build_shared_bdd(_parity_table(5))
        assert bdd.n_internal == 9  # parity BDD: 2 per level except top

    def test_roots_per_output(self, rng):
        tables = rng.random((16, 3)) < 0.5
        bdd = build_shared_bdd(tables)
        assert len(bdd.roots) == 3

    def test_constant_column(self):
        tables = np.zeros((8, 2), dtype=bool)
        tables[:, 1] = True
        bdd = build_shared_bdd(tables)
        assert bdd.n_internal == 0
        assert bdd.roots[0] == -1 and bdd.roots[1] == -2

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 9999), k=st.integers(1, 6), m=st.integers(1, 4))
    def test_gates_equivalent(self, seed, k, m):
        rng = np.random.default_rng(seed)
        tables = rng.random((1 << k, m)) < 0.5
        bdd = build_shared_bdd(tables)
        b = CircuitBuilder()
        ins = [b.input(f"x{i}") for i in range(k)]
        for j, sig in enumerate(bdd_to_gates(b, bdd, ins)):
            b.output(f"y{j}", sig)
        got = truth_table(b.build())
        np.testing.assert_array_equal(got, tables)

    def test_bad_length_rejected(self):
        with pytest.raises(SynthesisError):
            build_shared_bdd(np.zeros((6, 2), dtype=bool))

    def test_cost_counts_nodes(self, rng):
        tables = rng.random((32, 2)) < 0.5
        bdd = build_shared_bdd(tables)
        assert bdd_cost(bdd) == pytest.approx(2.88 * bdd.n_internal)


class TestBestOfSynthesis:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9999), k=st.integers(1, 6))
    def test_single_output_equivalence(self, seed, k):
        rng = np.random.default_rng(seed)
        table = rng.random(1 << k) < 0.5
        b = CircuitBuilder()
        ins = [b.input(f"x{i}") for i in range(k)]
        b.output("y", synthesize_output(b, table, ins))
        got = truth_table(b.build())[:, 0]
        np.testing.assert_array_equal(got, table)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_shared_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        tables = rng.random((32, 4)) < 0.5
        b = CircuitBuilder()
        ins = [b.input(f"x{i}") for i in range(5)]
        for j, sig in enumerate(synthesize_outputs_shared(b, tables, ins)):
            b.output(f"y{j}", sig)
        np.testing.assert_array_equal(truth_table(b.build()), tables)

    def test_parity_synthesizes_compactly(self):
        # The ANF/BDD paths must avoid the exponential SOP for XOR-8.
        table = _parity_table(8)
        circuit = synthesize_table(table, "xor8")
        mapped = tech_map(circuit, match_macros=False)
        assert mapped.area < 40  # a 7-gate XOR tree, not a 128-cube cover

    def test_adder_slice_beats_flat_sop(self):
        tt = truth_table(ripple_adder(4))
        circuit = synthesize_table(tt, "add4")
        mapped = tech_map(circuit, match_macros=False)
        # flat SOP of a 9-output adder table would be hundreds of µm²
        assert mapped.area < 150
