"""Functional tests for the benchmark generators against golden models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    get_benchmark,
    input_patterns_from_words,
    random_input_word_values,
)
from repro.circuit import simulate_patterns


#: Paper Table 1 I/O pin counts.
EXPECTED_IO = {
    "adder32": (64, 33),
    "mult8": (16, 16),
    "but": (16, 18),
    "mac": (48, 33),
    "sad": (48, 33),
    "fir": (64, 16),
}


def _check_against_golden(name, n_samples=200, seed=1):
    bench = get_benchmark(name)
    circuit = bench.factory()
    rng = np.random.default_rng(seed)
    values = random_input_word_values(circuit, n_samples, rng)
    patterns = input_patterns_from_words(circuit, values)
    out_bits = simulate_patterns(circuit, patterns)
    expected = bench.golden(values)
    for spec in circuit.attrs["words"]:
        got = spec.to_ints(out_bits)
        np.testing.assert_array_equal(
            got, expected[spec.name], err_msg=f"{name}:{spec.name}"
        )


class TestTable1IO:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_io_counts_match_paper(self, name):
        circuit = get_benchmark(name).factory()
        assert (circuit.n_inputs, circuit.n_outputs) == EXPECTED_IO[name]

    def test_registry_complete(self):
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)
        assert len(BENCHMARK_ORDER) == 6

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nonesuch")

    def test_lookup_case_insensitive(self):
        assert get_benchmark("MAC").name == "MAC"


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_monte_carlo_against_golden(self, name):
        _check_against_golden(name)

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    def test_adder32_exact(self, a, b):
        from repro.bench import adder32

        circuit = adder32()
        values = {"a": np.array([a]), "b": np.array([b])}
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        spec = circuit.attrs["words"][0]
        assert spec.to_ints(bits)[0] == a + b

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_mult8_exact(self, a, b):
        from repro.bench import mult8

        circuit = mult8()
        values = {"a": np.array([a]), "b": np.array([b])}
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        spec = circuit.attrs["words"][0]
        assert spec.to_ints(bits)[0] == a * b

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_butterfly_signed_difference(self, a, b):
        from repro.bench import but

        circuit = but()
        values = {"a": np.array([a]), "b": np.array([b])}
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        specs = {w.name: w for w in circuit.attrs["words"]}
        assert specs["x"].to_ints(bits)[0] == a + b
        assert specs["y"].to_ints(bits)[0] == a - b

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        acc=st.integers(0, 2**32 - 1),
    )
    def test_mac_exact(self, a, b, acc):
        from repro.bench import mac8_32

        circuit = mac8_32()
        values = {
            "a": np.array([a]),
            "b": np.array([b]),
            "acc": np.array([acc]),
        }
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        spec = circuit.attrs["words"][0]
        assert spec.to_ints(bits)[0] == a * b + acc

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        acc=st.integers(0, 2**32 - 1),
    )
    def test_sad_exact(self, a, b, acc):
        from repro.bench import sad8_32

        circuit = sad8_32()
        values = {
            "a": np.array([a]),
            "b": np.array([b]),
            "acc": np.array([acc]),
        }
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        spec = circuit.attrs["words"][0]
        assert spec.to_ints(bits)[0] == abs(a - b) + acc


class TestParameterizedGenerators:
    def test_small_fir_matches_golden(self):
        from repro.bench import fir
        from repro.bench.generators import golden_fir

        circuit = fir(taps=2, width=4, out_width=8)
        rng = np.random.default_rng(3)
        values = random_input_word_values(circuit, 100, rng)
        patterns = input_patterns_from_words(circuit, values)
        bits = simulate_patterns(circuit, patterns)
        xs = np.stack([values["x0"], values["x1"]], axis=-1)
        cs = np.stack([values["c0"], values["c1"]], axis=-1)
        spec = circuit.attrs["words"][0]
        np.testing.assert_array_equal(spec.to_ints(bits), golden_fir(xs, cs))

    def test_ripple_adder_widths(self):
        from repro.bench import ripple_adder

        for width in (1, 2, 5):
            c = ripple_adder(width)
            assert c.n_inputs == 2 * width
            assert c.n_outputs == width + 1

    def test_gate_counts_reasonable(self):
        # Array multiplier should dwarf the adder of the same width.
        from repro.bench import array_multiplier, ripple_adder

        assert array_multiplier(8).n_gates > 3 * ripple_adder(8).n_gates
