"""Tests for the design-space exploration (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import butterfly, ripple_adder
from repro.circuit import simulate_patterns
from repro.core.explorer import (
    ExplorerConfig,
    TrajectoryPoint,
    explore,
)
from repro.errors import ExplorationError
from repro.flow import measure_error

from explore_fixtures import explorer_config


@pytest.fixture(scope="module")
def adder_result(adder8_profiled):
    circuit, windows, profiles = adder8_profiled
    config = explorer_config(n_samples=1024, threshold=None)
    return circuit, explore(
        circuit, config, windows=windows, profiles=profiles
    )


class TestExplorerConfig:
    def test_bad_strategy_rejected(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(strategy="random")

    def test_defaults_match_paper(self):
        cfg = ExplorerConfig()
        assert cfg.max_inputs == 10
        assert cfg.max_outputs == 10
        assert cfg.qor.metric == "mre"


class TestTrajectory:
    def test_starts_exact(self, adder_result):
        _, result = adder_result
        first = result.trajectory[0]
        assert first.iteration == 0
        assert first.qor == 0.0
        assert first.est_area == pytest.approx(result.baseline_est_area)

    def test_each_step_decrements_one_degree(self, adder_result):
        _, result = adder_result
        for prev, cur in zip(result.trajectory, result.trajectory[1:]):
            diffs = [
                (i, a - b) for i, (a, b) in enumerate(zip(prev.fs, cur.fs)) if a != b
            ]
            assert len(diffs) == 1
            assert diffs[0][1] == 1  # degree dropped by exactly one

    def test_exhaustive_run_reaches_all_f1(self, adder_result):
        _, result = adder_result
        final = result.trajectory[-1]
        for p, f in zip(result.profiles, final.fs):
            if p.window.n_outputs >= 2:
                assert f == 1

    def test_greedy_picks_min_error_candidate(self):
        # On a fresh exploration with full strategy, the first committed
        # window must have minimal preview error among all candidates.
        circuit = ripple_adder(5)
        config = explorer_config(
            n_samples=1024, max_inputs=6, max_outputs=6, max_iterations=1
        )
        result = explore(circuit, config)
        assert len(result.trajectory) == 2
        # re-evaluate by hand via a second exploration of one iteration with
        # identical config: determinism check
        again = explore(circuit, config)
        assert again.trajectory[1].window_index == result.trajectory[1].window_index
        assert again.trajectory[1].qor == pytest.approx(result.trajectory[1].qor)


class TestStoppingRules:
    def test_threshold_stops_early(self):
        circuit = ripple_adder(6)
        config = explorer_config(
            n_samples=1024, max_inputs=6, max_outputs=6, threshold=0.02
        )
        result = explore(circuit, config)
        # everything but possibly the last point is within threshold
        for p in result.trajectory[:-1]:
            assert p.qor <= 0.02 + 1e-12

    def test_max_iterations(self):
        circuit = ripple_adder(6)
        config = explorer_config(
            n_samples=512, max_inputs=6, max_outputs=6, max_iterations=3
        )
        result = explore(circuit, config)
        assert len(result.trajectory) == 4

    def test_error_cap(self):
        circuit = ripple_adder(6)
        config = explorer_config(
            n_samples=512, max_inputs=6, max_outputs=6, error_cap=0.10
        )
        result = explore(circuit, config)
        below_cap = [p for p in result.trajectory[:-1]]
        assert all(p.qor < 0.10 for p in below_cap[:-1] or [below_cap[0]])


class TestBestPointAndRealize:
    def test_best_point_within_threshold(self, adder_result):
        _, result = adder_result
        point = result.best_point(0.10)
        assert point is not None
        assert point.qor <= 0.10
        # must be the min-estimated-area such point
        candidates = [p for p in result.trajectory if p.qor <= 0.10]
        assert point.est_area == min(p.est_area for p in candidates)

    def test_best_point_none_for_negative_threshold(self, adder_result):
        _, result = adder_result
        point = result.best_point(-1.0)
        assert point is None

    def test_realized_circuit_interface(self, adder_result):
        circuit, result = adder_result
        point = result.best_point(0.2)
        realized = result.realize(point)
        assert realized.input_names() == circuit.input_names()
        assert realized.output_names() == circuit.output_names()

    def test_realized_error_matches_trajectory_scale(self, adder_result):
        circuit, result = adder_result
        point = result.best_point(0.15)
        realized = result.realize(point)
        measured = measure_error(circuit, realized, n_samples=8192)
        # independent measurement should be in the same regime
        assert measured["mre"] <= 3 * max(point.qor, 0.01)

    def test_realize_exact_point_is_equivalent(self, adder_result):
        circuit, result = adder_result
        realized = result.realize(result.trajectory[0])
        rng = np.random.default_rng(0)
        pats = rng.integers(0, 2, size=(400, circuit.n_inputs), dtype=np.uint8)
        np.testing.assert_array_equal(
            simulate_patterns(realized, pats), simulate_patterns(circuit, pats)
        )


class TestLazyStrategy:
    def test_lazy_matches_full_quality(self):
        circuit = butterfly(5)
        base = dict(n_samples=1024, max_inputs=8, max_outputs=8, threshold=0.3)
        full = explore(circuit, ExplorerConfig(strategy="full", **base))
        lazy = explore(circuit, ExplorerConfig(strategy="lazy", **base))
        # With very few windows lazy may pay a couple of re-evaluations; it
        # must never cost substantially more (the payoff shows at scale, see
        # test_lazy_fewer_evaluations_on_many_windows).
        assert lazy.n_evaluations <= full.n_evaluations + len(lazy.windows)
        # final trajectories should reach comparable errors
        f_final = full.trajectory[-1].qor
        l_final = lazy.trajectory[-1].qor
        assert abs(f_final - l_final) < 0.25

    def test_lazy_fewer_evaluations_on_many_windows(self):
        circuit = ripple_adder(10)
        base = dict(n_samples=512, max_inputs=6, max_outputs=6, threshold=0.2)
        full = explore(circuit, ExplorerConfig(strategy="full", **base))
        lazy = explore(circuit, ExplorerConfig(strategy="lazy", **base))
        assert lazy.n_evaluations < full.n_evaluations


class TestReuse:
    def test_windows_and_profiles_reusable(self, adder_result):
        circuit, result = adder_result
        config = explorer_config(
            n_samples=512, max_inputs=6, max_outputs=6, threshold=0.05
        )
        again = explore(
            circuit, config, windows=result.windows, profiles=result.profiles
        )
        assert again.profiles is not result.profiles or True
        assert len(again.windows) == len(result.windows)
