"""Seeded-replay harness for the search-strategy portfolio.

The stochastic searchers (anneal / bo / ranker) extend the repo's
byte-identical determinism discipline: for a fixed seed the trajectory —
including the ``strategy`` / ``seed`` / ``move_id`` replay fields — must
be identical across engines (compiled resident, streaming, sharded,
interpreted reference) and across every checkpoint/resume interruption
point, whether the interruption is a polite ``max_iterations`` stop or a
cancellation surfacing mid-preview (DESIGN.md "Search strategies").

Also here: the lazy-greedy heap checkpoint regression — before the
peek-don't-pop fix, a cancellation inside a streaming preview flushed a
checkpoint missing the popped heap entries, and resuming it silently
dropped those windows from the rest of the search.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.explorer import ExplorerConfig, explore
from repro.core.search import (
    SEARCHER_STRATEGIES,
    AnnealSearcher,
    make_searcher,
)
from repro.errors import ExplorationError, JobCancelled
from repro.runtime import CancelToken, RunContext, load_checkpoint

from explore_fixtures import explorer_config, trajectory_key

#: Execution shapes the replay matrix sweeps: resident compiled engine,
#: serial streaming (words_for(700)=11 / chunk_words=3 -> 4 chunks), and
#: streaming fanned over a 2-worker shard pool.
ENGINE_SHAPES = [
    pytest.param(dict(), id="resident"),
    pytest.param(dict(chunk_words=3), id="streaming"),
    pytest.param(dict(chunk_words=3, shard_jobs=2), id="sharded"),
]


class TripAfter(CancelToken):
    """Cancel token that trips on the Nth cooperative check.

    Streaming scans check the token at every chunk/dispatch boundary, so
    sweeping N lands interruptions *inside* previews — the hostile
    half of the checkpoint contract that ``max_iterations`` never hits.
    """

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.count = 0

    def check(self) -> None:
        self.count += 1
        if self.count > self.n:
            raise JobCancelled("injected trip")


@pytest.fixture(scope="module")
def searcher_references(butterfly_profiled):
    """Per-strategy resident reference runs: (trajectory key, evals)."""
    circuit, windows, profiles = butterfly_profiled
    refs = {}
    for strategy in SEARCHER_STRATEGIES:
        result = explore(
            circuit,
            explorer_config(strategy=strategy),
            windows=windows,
            profiles=profiles,
        )
        refs[strategy] = (trajectory_key(result), result.n_evaluations)
    return refs


class TestSeededReplayMatrix:
    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    @pytest.mark.parametrize("overrides", ENGINE_SHAPES)
    def test_byte_identical_across_execution_shapes(
        self, strategy, overrides, butterfly_profiled, searcher_references
    ):
        circuit, windows, profiles = butterfly_profiled
        ref_key, ref_evals = searcher_references[strategy]
        result = explore(
            circuit,
            explorer_config(strategy=strategy, **overrides),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(result) == ref_key
        assert result.n_evaluations == ref_evals

    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_reference_engine_matches_compiled(
        self, strategy, butterfly_profiled, searcher_references
    ):
        circuit, windows, profiles = butterfly_profiled
        ref_key, ref_evals = searcher_references[strategy]
        result = explore(
            circuit,
            explorer_config(strategy=strategy, engine="reference"),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(result) == ref_key
        assert result.n_evaluations == ref_evals

    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_trajectory_carries_replay_fields(
        self, strategy, butterfly_profiled, searcher_references
    ):
        ref_key, _ = searcher_references[strategy]
        moves = []
        for _, _, _, _, _, _, strat, seed, move_id in ref_key:
            assert strat == strategy
            assert seed == 7  # ExplorerConfig default
            moves.append(move_id)
        assert moves[0] == -1  # the exact-design point predates any move
        committed = moves[1:]
        assert committed, "searcher committed nothing"
        assert all(m >= 0 for m in committed)
        # move ids are the proposal ordinals that committed: strictly
        # increasing, with gaps exactly where proposals were rejected.
        assert committed == sorted(committed)
        assert len(set(committed)) == len(committed)

    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_different_seeds_are_independent_runs(
        self, strategy, butterfly_profiled
    ):
        """A different seed must at minimum be recorded as such — and the
        same seed must reproduce the identical trajectory object-for-
        object (the weaker half is what the replay fields guarantee;
        stochastic walks *may* coincide across seeds on a small circuit).
        """
        circuit, windows, profiles = butterfly_profiled
        one = explore(
            circuit,
            explorer_config(strategy=strategy, seed=12345),
            windows=windows,
            profiles=profiles,
        )
        two = explore(
            circuit,
            explorer_config(strategy=strategy, seed=12345),
            windows=windows,
            profiles=profiles,
        )
        assert trajectory_key(one) == trajectory_key(two)
        assert all(p.seed == 12345 for p in one.trajectory)


class TestCheckpointResume:
    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_interrupt_every_iteration_resumes_identically(
        self, strategy, tmp_path, butterfly_profiled, searcher_references
    ):
        """The PR 7 harness extended to the searchers: stop after k
        committed iterations for every k, resume, and demand the final
        trajectory *and* evaluation count match the uninterrupted run."""
        circuit, windows, profiles = butterfly_profiled
        ref_key, ref_evals = searcher_references[strategy]
        n_iter = len(ref_key) - 1
        assert n_iter >= 2, "reference run too short to interrupt"
        for k in range(1, n_iter):
            ck = tmp_path / f"{strategy}-{k}.ckpt"
            explore(
                circuit,
                explorer_config(
                    strategy=strategy,
                    max_iterations=k,
                    checkpoint_path=str(ck),
                ),
                windows=windows,
                profiles=profiles,
            )
            resumed = explore(
                circuit,
                explorer_config(
                    strategy=strategy,
                    checkpoint_path=str(ck),
                    resume=str(ck),
                ),
                windows=windows,
                profiles=profiles,
            )
            assert trajectory_key(resumed) == ref_key, f"iteration {k}"
            assert resumed.n_evaluations == ref_evals, f"iteration {k}"

    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_cancellation_mid_preview_resumes_identically(
        self, strategy, tmp_path, butterfly_profiled
    ):
        """Trip the cancel token at every cooperative check point of a
        streaming run.  Interruptions land inside chunked previews, where
        the searcher has a *pending* proposal whose evaluation never
        finished; the checkpointed searcher state must replay it."""
        circuit, windows, profiles = butterfly_profiled
        base = dict(strategy=strategy, chunk_words=3)
        reference = explore(
            circuit, explorer_config(**base), windows=windows,
            profiles=profiles,
        )
        ref_key = trajectory_key(reference)
        tested = 0
        for trip in range(2, 2000, 3):
            ck = tmp_path / f"{strategy}-trip{trip}.ckpt"
            token = TripAfter(trip)
            try:
                explore(
                    circuit,
                    explorer_config(**base, checkpoint_path=str(ck)),
                    windows=windows,
                    profiles=profiles,
                    context=RunContext(cancel=token),
                )
                break  # ran to completion: past the last check point
            except JobCancelled:
                pass
            if not ck.exists():
                continue  # tripped before the first checkpoint flush
            resumed = explore(
                circuit,
                explorer_config(
                    **base, checkpoint_path=str(ck), resume=str(ck)
                ),
                windows=windows,
                profiles=profiles,
            )
            tested += 1
            assert trajectory_key(resumed) == ref_key, f"trip {trip}"
            assert resumed.n_evaluations == reference.n_evaluations, (
                f"trip {trip}"
            )
        assert tested >= 3, "cancellation sweep never landed mid-run"

    @pytest.mark.parametrize("strategy", SEARCHER_STRATEGIES)
    def test_checkpoint_carries_searcher_state(
        self, strategy, tmp_path, butterfly_profiled
    ):
        circuit, windows, profiles = butterfly_profiled
        ck = tmp_path / f"{strategy}.ckpt"
        explore(
            circuit,
            explorer_config(
                strategy=strategy, max_iterations=2, checkpoint_path=str(ck)
            ),
            windows=windows,
            profiles=profiles,
        )
        snapshot = load_checkpoint(ck)
        state = snapshot.searcher_state
        assert state is not None
        assert state["strategy"] == strategy
        assert state["move"] >= 2
        # Must be plain picklable data (it already survived one pickle
        # round trip inside the checkpoint; assert it stays so).
        assert pickle.loads(pickle.dumps(state)) == state
        for row in snapshot.trajectory:
            assert len(row) == 9


class TestLazyHeapCheckpoint:
    """Regression: the lazy heap must round-trip *exactly* through
    ExploreCheckpoint, for both interruption styles."""

    def test_heap_round_trips_exactly_through_resume_chain(
        self, tmp_path, butterfly_profiled
    ):
        """Checkpoints written by a resumed run at iteration k must equal
        the checkpoint a direct run writes at iteration k — heap, counter
        and all loop state, not just the trajectory."""
        circuit, windows, profiles = butterfly_profiled
        cfg = dict(strategy="lazy")
        full = explore(
            circuit, explorer_config(**cfg), windows=windows,
            profiles=profiles,
        )
        n_iter = len(full.trajectory) - 1
        chain = tmp_path / "chain.ckpt"
        explore(
            circuit,
            explorer_config(
                **cfg, max_iterations=1, checkpoint_path=str(chain)
            ),
            windows=windows,
            profiles=profiles,
        )
        for k in range(2, n_iter + 1):
            direct = tmp_path / f"direct-{k}.ckpt"
            explore(
                circuit,
                explorer_config(
                    **cfg, max_iterations=k, checkpoint_path=str(direct)
                ),
                windows=windows,
                profiles=profiles,
            )
            # Step the chain forward one committed iteration via resume.
            explore(
                circuit,
                explorer_config(
                    **cfg,
                    max_iterations=k,
                    checkpoint_path=str(chain),
                    resume=str(chain),
                ),
                windows=windows,
                profiles=profiles,
            )
            a = load_checkpoint(direct)
            b = load_checkpoint(chain)
            assert b.heap == a.heap, f"iteration {k}"
            assert b.counter == a.counter, f"iteration {k}"
            assert b.fs == a.fs, f"iteration {k}"
            assert b.chosen == a.chosen, f"iteration {k}"
            assert b.trajectory == a.trajectory, f"iteration {k}"
            assert b.n_evaluations == a.n_evaluations, f"iteration {k}"
            assert b.current_qor == a.current_qor, f"iteration {k}"

    def test_lazy_cancellation_mid_preview_resumes_identically(
        self, tmp_path, butterfly_profiled
    ):
        """The bug this guards: a cancellation inside a streaming preview
        used to flush a checkpoint whose heap was missing the entries the
        selection loop had already popped; resuming dropped those windows
        for good (shorter trajectories, wrong picks).  Peek-don't-pop
        keeps the heap checkpoint-complete at every cancellation point."""
        circuit, windows, profiles = butterfly_profiled
        base = dict(strategy="lazy", chunk_words=3)
        reference = explore(
            circuit, explorer_config(**base), windows=windows,
            profiles=profiles,
        )
        ref_key = trajectory_key(reference)
        tested = 0
        for trip in range(2, 2000, 3):
            ck = tmp_path / f"lazy-trip{trip}.ckpt"
            try:
                explore(
                    circuit,
                    explorer_config(**base, checkpoint_path=str(ck)),
                    windows=windows,
                    profiles=profiles,
                    context=RunContext(cancel=TripAfter(trip)),
                )
                break
            except JobCancelled:
                pass
            if not ck.exists():
                continue
            resumed = explore(
                circuit,
                explorer_config(
                    **base, checkpoint_path=str(ck), resume=str(ck)
                ),
                windows=windows,
                profiles=profiles,
            )
            tested += 1
            assert trajectory_key(resumed) == ref_key, f"trip {trip}"
            assert resumed.n_evaluations == reference.n_evaluations, (
                f"trip {trip}"
            )
        assert tested >= 3, "cancellation sweep never landed mid-run"


class TestSearcherUnit:
    """Protocol-level checks that need no exploration run."""

    def test_config_validation(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(strategy="metropolis")
        with pytest.raises(ExplorationError):
            ExplorerConfig(anneal_alpha=1.5)
        with pytest.raises(ExplorationError):
            ExplorerConfig(anneal_t0=0.0)
        with pytest.raises(ExplorationError):
            ExplorerConfig(ranker_epsilon=1.5)
        with pytest.raises(ExplorationError):
            ExplorerConfig(bo_init=0)
        with pytest.raises(ExplorationError):
            ExplorerConfig(max_evaluations=0)

    def test_max_evaluations_caps_every_strategy(self, butterfly_profiled):
        circuit, windows, profiles = butterfly_profiled
        for strategy in ("full", "lazy") + SEARCHER_STRATEGIES:
            result = explore(
                circuit,
                explorer_config(strategy=strategy, max_evaluations=10),
                windows=windows,
                profiles=profiles,
            )
            # The cap is checked at step boundaries, so one step may
            # finish past it — but never a step more.
            per_step = max(
                len(p.variants.get(f, ()))
                for p in profiles
                for f in p.variants
            )
            slack = per_step * (
                len(profiles) if strategy in ("full", "lazy") else 1
            )
            assert result.n_evaluations <= 10 + slack, strategy

    def test_pending_proposal_survives_state_dict(self, butterfly_profiled):
        import numpy as np

        _, _, profiles = butterfly_profiled
        config = explorer_config(strategy="anneal")
        rng = np.random.default_rng(config.seed)
        searcher = make_searcher(config, profiles, rng)
        fs = {p.window.index: p.max_degree for p in profiles}
        idx = searcher.propose(fs, lambda w: True, 0.0)
        assert idx is not None
        # Re-proposing without observe() must return the same pending
        # move and draw nothing from the RNG.
        state_before = rng.bit_generator.state
        assert searcher.propose(fs, lambda w: True, 0.0) == idx
        assert rng.bit_generator.state == state_before
        # A fresh searcher loaded from state_dict continues the pending
        # proposal instead of redrawing.
        clone = make_searcher(
            config, profiles, np.random.default_rng(config.seed)
        )
        clone.load_state_dict(searcher.state_dict())
        assert clone.propose(fs, lambda w: True, 0.0) == idx

    def test_observe_without_proposal_rejected(self, butterfly_profiled):
        import numpy as np

        _, _, profiles = butterfly_profiled
        config = explorer_config(strategy="ranker")
        searcher = make_searcher(
            config, profiles, np.random.default_rng(config.seed)
        )
        fs = {p.window.index: p.max_degree for p in profiles}
        with pytest.raises(ExplorationError):
            searcher.observe(0, 0.1, 0.0, fs)

    def test_anneal_temperature_schedule_is_deterministic(
        self, butterfly_profiled
    ):
        import numpy as np

        _, _, profiles = butterfly_profiled
        config = explorer_config(
            strategy="anneal", anneal_t0=0.1, anneal_alpha=0.5
        )
        searcher = make_searcher(
            config, profiles, np.random.default_rng(0)
        )
        assert isinstance(searcher, AnnealSearcher)
        assert searcher.temperature(0) == pytest.approx(0.1)
        assert searcher.temperature(3) == pytest.approx(0.1 * 0.5**3)
