"""Edge-case coverage for API surfaces not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import ripple_adder
from repro.circuit import CircuitBuilder, simulate_patterns, truth_table
from repro.core.explorer import ExplorerConfig, explore
from repro.errors import CircuitError


class TestBuilderEdges:
    def test_sign_extension(self):
        b = CircuitBuilder()
        a = b.input_word("a", 3, signed=True)
        b.output_word("y", b.extend(a, 5, signed=True), signed=True)
        c = b.build()
        tt = truth_table(c)
        spec = c.attrs["words"][0]
        for r in range(8):
            val = r - 8 if r >= 4 else r
            got = int(spec.to_ints(tt[r : r + 1])[0])
            assert got == val

    def test_truncation_via_extend(self):
        b = CircuitBuilder()
        a = b.input_word("a", 4)
        b.output_word("y", b.extend(a, 2))
        c = b.build()
        spec = c.attrs["words"][0]
        tt = truth_table(c)
        for r in range(16):
            assert int(spec.to_ints(tt[r : r + 1])[0]) == r & 0b11

    def test_equals_width_mismatch(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.equals(b.input_word("a", 2), b.input_word("b", 3))

    def test_mux_word_width_mismatch(self):
        b = CircuitBuilder()
        s = b.input("s")
        with pytest.raises(CircuitError):
            b.mux_word(s, b.input_word("a", 2), b.input_word("b", 3))

    def test_empty_mul(self):
        b = CircuitBuilder()
        assert b.mul([], []) == []

    def test_const_word_wraps_negative(self):
        b = CircuitBuilder()
        b.input("d")
        b.output_word("y", b.const_word(-1, 4))
        c = b.build()
        spec = c.attrs["words"][0]
        assert int(spec.to_ints(truth_table(c)[0:1])[0]) == 15


class TestExplorerChosenMap:
    def test_chosen_variants_recorded(self):
        circuit = ripple_adder(6)
        config = ExplorerConfig(
            n_samples=512, max_inputs=6, max_outputs=6, max_iterations=4
        )
        result = explore(circuit, config)
        committed = [p for p in result.trajectory if p.iteration > 0]
        assert len(result.chosen) == len(committed)
        for p in committed:
            assert (p.window_index, p.f) in result.chosen

    def test_variant_at_falls_back_to_first(self):
        circuit = ripple_adder(5)
        config = ExplorerConfig(
            n_samples=256, max_inputs=6, max_outputs=6, max_iterations=0
        )
        result = explore(circuit, config)
        profile = result.profiles[0]
        if profile.variants:
            f = min(profile.variants)
            v = result.variant_at(profile.window.index, f)
            assert v is profile.variants[f][0]


class TestTieToleranceConfig:
    def test_zero_scale_behaves(self):
        circuit = ripple_adder(5)
        config = ExplorerConfig(
            n_samples=256, max_inputs=6, max_outputs=6,
            max_iterations=3, tie_epsilon=0.0, tie_epsilon_scale=0.0,
        )
        result = explore(circuit, config)
        assert len(result.trajectory) == 4

    def test_large_epsilon_prefers_cheap_variants(self):
        circuit = ripple_adder(8)
        base = dict(n_samples=1024, max_inputs=8, max_outputs=8, error_cap=0.3)
        tight = explore(
            circuit, ExplorerConfig(tie_epsilon=1e-9, tie_epsilon_scale=0.0, **base)
        )
        loose = explore(
            circuit, ExplorerConfig(tie_epsilon=0.05, tie_epsilon_scale=0.0, **base)
        )
        # With a generous tie window the area-driven choice cannot be worse
        # in final estimated area.
        assert (
            loose.trajectory[-1].est_area
            <= tight.trajectory[-1].est_area * 1.25
        )


class TestCircuitMisc:
    def test_repr_smoke(self):
        c = ripple_adder(3)
        assert "inputs=6" in repr(c)

    def test_pruned_keeps_attrs(self):
        c = ripple_adder(3)
        c.attrs["custom"] = 42
        assert c.pruned().attrs["custom"] == 42

    def test_simulate_empty_pattern_set(self):
        c = ripple_adder(2)
        out = simulate_patterns(c, np.zeros((0, 4), dtype=np.uint8))
        assert out.shape == (0, 3)
