"""Unit + property tests for the bit-parallel simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CircuitBuilder,
    exhaustive_input_words,
    pack_bits,
    patterns_to_words,
    popcount_words,
    random_input_words,
    simulate_full,
    simulate_outputs,
    simulate_patterns,
    truth_table,
    unpack_bits,
    words_for,
    words_to_patterns,
)
from repro.circuit.simulate import tail_mask
from repro.errors import SimulationError


class TestPacking:
    def test_words_for(self):
        assert words_for(0) == 0
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2

    def test_pack_unpack_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(3, 130), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (3, 3)
        np.testing.assert_array_equal(unpack_bits(words, 130), bits)

    def test_pack_bit_order_is_little_endian(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = 1
        assert pack_bits(bits)[0] == np.uint64(1)
        bits = np.zeros(64, dtype=np.uint8)
        bits[63] = 1
        assert pack_bits(bits)[0] == np.uint64(1) << np.uint64(63)

    def test_tail_mask(self):
        assert tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert tail_mask(1) == np.uint64(1)
        assert tail_mask(65) == np.uint64(1)

    def test_popcount_respects_pattern_count(self):
        words = np.array([[0xFFFFFFFFFFFFFFFF]], dtype=np.uint64)
        assert popcount_words(words, n=10) == 10
        assert popcount_words(words) == 64

    def test_patterns_words_roundtrip(self, rng):
        pats = rng.integers(0, 2, size=(77, 5), dtype=np.uint8)
        words = patterns_to_words(pats)
        np.testing.assert_array_equal(words_to_patterns(words, 77), pats)

    def test_patterns_must_be_2d(self):
        with pytest.raises(SimulationError):
            patterns_to_words(np.zeros(4))


class TestExhaustivePatterns:
    def test_row_ordering_matches_truth_table_convention(self):
        words = exhaustive_input_words(3)
        pats = words_to_patterns(words, 8)
        # Row r: input i is bit i of r; input 0 toggles fastest.
        for r in range(8):
            for i in range(3):
                assert pats[r, i] == (r >> i) & 1

    def test_zero_inputs(self):
        words = exhaustive_input_words(0)
        assert words.shape == (0, 1)

    def test_random_inputs_masked_beyond_n(self, rng):
        words = random_input_words(4, 70, rng)
        assert words.shape == (4, 2)
        # bits 70..127 must be zero
        bits = unpack_bits(words, 128)
        assert not bits[:, 70:].any()


def _golden_eval(op_name, rows):
    """Reference evaluation of tiny gates by python semantics."""
    out = []
    for bits in rows:
        a = bits
        if op_name == "and":
            out.append(all(a))
        elif op_name == "or":
            out.append(any(a))
        elif op_name == "xor":
            out.append(sum(a) % 2 == 1)
    return np.array(out, dtype=np.uint8)


class TestGateSemantics:
    @pytest.mark.parametrize("op_name", ["and", "or", "xor"])
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_nary_gates(self, op_name, arity, rng):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(arity)]
        fn = {"and": b.and_, "or": b.or_, "xor": b.xor_}[op_name]
        b.output("y", fn(*ins))
        c = b.build()
        pats = rng.integers(0, 2, size=(200, arity), dtype=np.uint8)
        got = simulate_patterns(c, pats)[:, 0]
        np.testing.assert_array_equal(got, _golden_eval(op_name, pats))

    def test_not_and_buf(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.output("n", b.not_(a))
        b.output("bf", b.buf(a))
        c = b.build()
        pats = np.array([[0], [1]], dtype=np.uint8)
        out = simulate_patterns(c, pats)
        np.testing.assert_array_equal(out[:, 0], [1, 0])
        np.testing.assert_array_equal(out[:, 1], [0, 1])

    def test_mux_semantics(self):
        b = CircuitBuilder()
        s, a, x = b.input("s"), b.input("a"), b.input("b")
        b.output("y", b.mux(s, a, x))
        c = b.build()
        tt = truth_table(c)
        # inputs ordered s, a, b; row index bit0=s, bit1=a, bit2=b
        for r in range(8):
            s_v, a_v, b_v = r & 1, (r >> 1) & 1, (r >> 2) & 1
            expect = b_v if s_v else a_v
            assert tt[r, 0] == bool(expect)

    def test_lut_node(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        # table for XOR: rows 01 and 10 set
        table = np.array([0, 1, 1, 0], dtype=bool)
        b.output("z", b.lut([x, y], table))
        c = b.build()
        tt = truth_table(c)
        np.testing.assert_array_equal(tt[:, 0], table)

    def test_constants(self):
        b = CircuitBuilder()
        b.input("a")
        b.output("zero", b.const(False))
        b.output("one", b.const(True))
        c = b.build()
        tt = truth_table(c)
        assert not tt[:, 0].any()
        assert tt[:, 1].all()


class TestSimulatorEquivalence:
    def test_chunked_matches_full(self, full_adder_circuit, rng):
        words = random_input_words(3, 64 * 10, rng)
        full = simulate_full(full_adder_circuit, words)
        chunked = simulate_outputs(full_adder_circuit, words, chunk_words=2)
        np.testing.assert_array_equal(
            full[full_adder_circuit.output_nodes()], chunked
        )

    def test_input_count_mismatch_raises(self, full_adder_circuit):
        with pytest.raises(SimulationError):
            simulate_full(full_adder_circuit, np.zeros((2, 1), dtype=np.uint64))

    def test_chunked_tail_masking_with_padded_words(self, rng):
        """Regression: ``n_samples`` far below the padded word count.

        Chunks that start past ``n_samples`` used to compute a *negative*
        valid count (``min(n, stop*64) - start*64``), which reaches
        ``tail_mask`` through Python's negative modulo and produces a wrong
        mask — leaving LUT garbage in the padded region where the
        unchunked path guarantees zeros.  Chunked and unchunked must be
        byte-identical, padding included."""
        b = CircuitBuilder("lutpad")
        a, x = b.input("a"), b.input("b")
        na = b.not_(a)  # inverted tails: garbage indexes a nonzero row
        table = np.array([1, 0, 1, 1], dtype=bool)  # table[0] == 1
        b.output("y", b.lut((na, x), table))
        circuit = b.build()
        n = 70  # valid bits end mid-word-2 of 6 padded words
        words = np.zeros((2, 6), dtype=np.uint64)
        words[:, :2] = random_input_words(2, n, rng)[:, :2]
        unchunked = simulate_outputs(circuit, words, n_samples=n)
        chunked = simulate_outputs(
            circuit, words, chunk_words=1, n_samples=n
        )
        np.testing.assert_array_equal(chunked, unchunked)
        # every bit past n_samples is zero (the LUT tail-mask contract)
        assert popcount_words(chunked) == popcount_words(chunked, n)

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 1), b=st.integers(0, 1), cin=st.integers(0, 1))
    def test_full_adder_matches_arithmetic(self, a, b, cin):
        builder = CircuitBuilder("fa")
        ai, bi, ci = builder.input("a"), builder.input("b"), builder.input("cin")
        s, carry = builder.full_adder(ai, bi, ci)
        builder.output("sum", s)
        builder.output("cout", carry)
        circuit = builder.build()
        out = simulate_patterns(circuit, np.array([[a, b, cin]], dtype=np.uint8))[0]
        total = a + b + cin
        assert out[0] == total % 2
        assert out[1] == total // 2


class TestTruthTable:
    def test_full_adder_table(self, full_adder_circuit):
        tt = truth_table(full_adder_circuit)
        assert tt.shape == (8, 2)
        for r in range(8):
            total = (r & 1) + ((r >> 1) & 1) + ((r >> 2) & 1)
            assert tt[r, 0] == bool(total % 2)
            assert tt[r, 1] == bool(total // 2)

    def test_input_limit_enforced(self):
        b = CircuitBuilder()
        ins = [b.input(f"i{k}") for k in range(25)]
        b.output("y", b.or_(*ins))
        with pytest.raises(SimulationError):
            truth_table(b.build())
