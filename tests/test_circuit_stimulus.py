"""Tests for stimulus generation with per-word magnitude control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import mac8_32, mult8, sad8_32
from repro.circuit import (
    CircuitBuilder,
    stimulus_input_words,
    unpack_bits,
    words_for,
)


def _word_values(circuit, words, name, n):
    spec = {w.name: w for w in circuit.attrs["input_words"]}[name]
    bits = unpack_bits(words, n)
    vals = np.zeros(n, dtype=np.int64)
    for pos, port in enumerate(spec.indices):
        vals |= bits[port].astype(np.int64) << pos
    return vals


class TestStimulus:
    def test_defaults_to_uniform_without_attribute(self, rng):
        circuit = mult8()
        assert "stimulus" not in circuit.attrs
        words = stimulus_input_words(circuit, 512, rng)
        assert words.shape == (16, words_for(512))
        vals = _word_values(circuit, words, "a", 512)
        assert vals.max() > 200  # full 8-bit range exercised

    def test_mac_accumulator_limited(self, rng):
        circuit = mac8_32()
        n = 2048
        words = stimulus_input_words(circuit, n, rng)
        acc = _word_values(circuit, words, "acc", n)
        limit = 1 << circuit.attrs["stimulus"]["acc"]
        assert acc.max() < limit
        assert acc.max() > limit // 4  # actually exercises the range

    def test_sad_accumulator_limited(self, rng):
        circuit = sad8_32()
        n = 2048
        words = stimulus_input_words(circuit, n, rng)
        acc = _word_values(circuit, words, "acc", n)
        assert acc.max() < (1 << circuit.attrs["stimulus"]["acc"])

    def test_operands_stay_uniform(self, rng):
        circuit = mac8_32()
        n = 2048
        words = stimulus_input_words(circuit, n, rng)
        a = _word_values(circuit, words, "a", n)
        assert a.max() > 240  # uniform 8-bit

    def test_unworded_inputs_random(self, rng):
        b = CircuitBuilder()
        x = b.input("loose")  # not part of any input word
        w = b.input_word("w", 4)
        b.output("y", b.xor_(x, w[0]))
        circuit = b.build()
        circuit.attrs["stimulus"] = {"w": 2}
        n = 1024
        words = stimulus_input_words(circuit, n, rng)
        loose = unpack_bits(words, n)[0]
        assert 0.3 < loose.mean() < 0.7

    def test_deterministic_per_seed(self):
        circuit = mac8_32()
        a = stimulus_input_words(circuit, 256, np.random.default_rng(3))
        b = stimulus_input_words(circuit, 256, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
