"""Ladder == per-degree equivalence (the cache-compatibility contract).

``factorize_ladder(M, F)[f]`` must be byte-identical to
``factorize(M, f)`` for every degree, algebra, method and weight rail —
likewise for the ASSO sweep and the column-subset kernel — and the
ladder-based profiling worker must reproduce the legacy per-degree worker
bit for bit on real circuit windows.  See DESIGN.md "BMF kernel".
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import get_benchmark
from repro.core.bmf import (
    association_candidates,
    asso_ladder,
    asso_sweep,
    column_select_bmf,
    column_select_ladder,
    factorize,
    factorize_ladder,
    numeric_weights,
)
from repro.core.profile import (
    ProfileParams,
    WindowTask,
    output_significance,
    profile_window_task,
    profile_window_task_reference,
    window_weights,
)
from repro.errors import FactorizationError
from repro.partition import decompose


def _matrix_and_weights(seed: int):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 6))
    m = int(rng.integers(2, 7))
    M = rng.random((1 << k, m)) < rng.uniform(0.2, 0.8)
    weights = [None, numeric_weights(m), rng.random(m) * 2]
    return M, m, weights[int(rng.integers(0, 3))]


def _assert_bmf_equal(a, b):
    np.testing.assert_array_equal(a.B, b.B)
    np.testing.assert_array_equal(a.C, b.C)
    assert a.f == b.f and a.algebra == b.algebra and a.method == b.method
    assert a.error == b.error  # bit-for-bit
    assert a.hamming == b.hamming


class TestFactorizeLadder:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        algebra=st.sampled_from(["semiring", "field"]),
        method=st.sampled_from(["asso", "asso+refine"]),
    )
    def test_every_degree_matches_per_degree_call(self, seed, algebra, method):
        M, m, weights = _matrix_and_weights(seed)
        ladder = factorize_ladder(M, m - 1, weights, algebra, method)
        assert sorted(ladder) == list(range(1, m))
        for f in range(1, m):
            _assert_bmf_equal(ladder[f], factorize(M, f, weights, algebra, method))

    def test_exhaustive_fallback(self, rng):
        M = rng.random((8, 3)) < 0.5
        ladder = factorize_ladder(M, 2, method="exhaustive")
        for f in (1, 2):
            _assert_bmf_equal(ladder[f], factorize(M, f, method="exhaustive"))

    def test_invalid_degree_rejected(self, rng):
        M = rng.random((8, 3)) < 0.5
        with pytest.raises(FactorizationError):
            factorize_ladder(M, 0)
        with pytest.raises(FactorizationError):
            factorize_ladder(M, 2, method="nope")


class TestAssoLadder:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_matches_sweep_including_tau(self, seed):
        M, m, weights = _matrix_and_weights(seed)
        ladder = asso_ladder(M, m - 1, weights=weights)
        for f in range(1, m):
            swept = asso_sweep(M, f, weights=weights)
            snap = ladder[f]
            np.testing.assert_array_equal(snap.B, swept.B)
            np.testing.assert_array_equal(snap.C, swept.C)
            assert snap.error == swept.error
            assert snap.tau == swept.tau

    def test_empty_taus_rejected(self, rng):
        M = rng.random((8, 3)) < 0.5
        with pytest.raises(FactorizationError):
            asso_ladder(M, 2, taus=())


class TestColumnSelectLadder:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        algebra=st.sampled_from(["semiring", "field"]),
    )
    def test_matches_per_degree_call(self, seed, algebra):
        M, m, weights = _matrix_and_weights(seed)
        ladder = column_select_ladder(M, m, weights, algebra)
        assert sorted(ladder) == list(range(1, m + 1))
        for f in range(1, m + 1):
            per = column_select_bmf(M, f, weights, algebra)
            lad = ladder[f]
            assert lad.selected == per.selected
            np.testing.assert_array_equal(lad.B, per.B)
            np.testing.assert_array_equal(lad.C, per.C)
            assert lad.error == per.error

    def test_selection_is_prefix_stable(self, rng):
        M = rng.random((32, 5)) < 0.5
        full = column_select_bmf(M, 5).selected
        for f in range(1, 5):
            assert column_select_bmf(M, f).selected == full[:f]


class TestCandidateDedup:
    def test_dedup_keeps_first_occurrence_order(self):
        M = np.array(
            [[1, 1, 0], [1, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=bool
        )
        full = association_candidates(M, 0.6)
        deduped = association_candidates(M, 0.6, dedup=True)
        # No duplicates, no all-zero rows, first-occurrence order kept.
        assert deduped.shape[0] == len({r.tobytes() for r in deduped})
        assert deduped.any(axis=1).all()
        kept = [r.tobytes() for r in deduped]
        seen = []
        for row in full:
            if row.any() and row.tobytes() not in seen:
                seen.append(row.tobytes())
        assert kept == seen

    def test_dense_shape_contract_unchanged(self, rng):
        M = rng.random((16, 4)) < 0.5
        assert association_candidates(M, 0.7).shape == (4, 4)


def _variants_equal(a, b) -> bool:
    if a.exact_area != b.exact_area or list(a.variants) != list(b.variants):
        return False
    for f in a.variants:
        if len(a.variants[f]) != len(b.variants[f]):
            return False
        for x, y in zip(a.variants[f], b.variants[f]):
            if not (
                np.array_equal(x.table, y.table)
                and np.array_equal(x.B, y.B)
                and np.array_equal(x.C, y.C)
                and x.area == y.area
                and x.bmf_error == y.bmf_error
                and x.kind == y.kind
                and type(x.replacement) is type(y.replacement)
            ):
                return False
    return True


class TestProfileLadderEquivalence:
    """The acceptance contract: ladder profiles == legacy per-degree profiles."""

    @pytest.mark.parametrize("bench,window", [("mult8", 6), ("adder32", 5)])
    def test_bench_circuit_profiles_byte_identical(self, bench, window):
        circuit = get_benchmark(bench).factory()
        windows = decompose(circuit, window, window)[:3]
        sig = output_significance(circuit)
        params = ProfileParams(estimate_area=True)
        for w in windows:
            task = WindowTask(
                w.table(circuit),
                window_weights(circuit, w, "significance", sig),
                w.subcircuit(circuit),
                params,
            )
            ladder = profile_window_task(task)
            legacy = profile_window_task_reference(task)
            assert _variants_equal(ladder, legacy)
            assert ladder.n_syntheses == legacy.n_syntheses
            # Ladder accounting: same degree coverage, far fewer descents.
            assert ladder.n_ladder_levels == legacy.n_ladder_levels
            if w.n_outputs > 2:
                assert ladder.n_factorizations < legacy.n_factorizations

    def test_uniform_rail_single_ladder(self):
        # A task with uniform weights runs one rail; selection="cone" runs
        # one ladder family -> exactly one descent.
        circuit = get_benchmark("adder32").factory()
        w = decompose(circuit, 5, 5)[0]
        task = WindowTask(
            w.table(circuit),
            None,
            None,
            ProfileParams(selection="cone", estimate_area=False),
        )
        result = profile_window_task(task)
        assert result.n_factorizations == 1
        assert result.n_ladder_levels == w.n_outputs - 1
        assert _variants_equal(result, profile_window_task_reference(task))
