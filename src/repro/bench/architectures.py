"""Alternative micro-architectures for the arithmetic benchmarks.

The paper evaluates one implementation per function; a natural follow-up
question (and a classic synthesis study) is how much the BLASYS savings
depend on the *architecture* of the accurate design — a carry-lookahead
adder exposes different window structure than a ripple chain, a Wallace
tree different structure than a carry-propagate array.  These generators
feed the architecture ablation benchmark.

All generators carry the same word metadata as their ripple/array siblings,
so golden models and QoR evaluation apply unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit.builder import CircuitBuilder, Sig, Word
from ..circuit.netlist import Circuit


def carry_lookahead_adder(width: int, block: int = 4, name: Optional[str] = None) -> Circuit:
    """Block carry-lookahead adder: ``sum = a + b`` with width+1 outputs.

    Within each ``block``, generate/propagate terms produce all carries in
    two gate levels; blocks are chained ripple-style (the common
    block-CLA organization).
    """
    b = CircuitBuilder(name or f"cla{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    g = [b.and_(ai, xi) for ai, xi in zip(a, x)]
    p = [b.xor_(ai, xi) for ai, xi in zip(a, x)]
    carry: Sig = b.const(False)
    sums: Word = []
    for start in range(0, width, block):
        stop = min(start + block, width)
        carries: List[Sig] = [carry]
        for i in range(start, stop):
            # c_{i+1} = g_i | p_i & g_{i-1} | ... | p_i..p_start & c_in
            terms: List[Sig] = []
            for j in range(i, start - 1, -1):
                lits = [g[j]] + [p[t] for t in range(j + 1, i + 1)]
                terms.append(b.and_(*lits) if len(lits) > 1 else lits[0])
            chain = [p[t] for t in range(start, i + 1)] + [carries[0]]
            terms.append(b.and_(*chain) if len(chain) > 1 else chain[0])
            carries.append(b.or_(*terms) if len(terms) > 1 else terms[0])
        for i in range(start, stop):
            sums.append(b.xor_(p[i], carries[i - start]))
        carry = carries[-1]
    b.output_word("sum", sums + [carry])
    return b.build()


def carry_select_adder(width: int, block: int = 4, name: Optional[str] = None) -> Circuit:
    """Carry-select adder: per block, both carry assumptions precomputed."""
    b = CircuitBuilder(name or f"csel{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    carry: Sig = b.const(False)
    sums: Word = []
    for start in range(0, width, block):
        stop = min(start + block, width)
        a_blk, x_blk = a[start:stop], x[start:stop]
        s0, c0 = b.add(a_blk, x_blk, cin=b.const(False))
        s1, c1 = b.add(a_blk, x_blk, cin=b.const(True))
        sums.extend(b.mux_word(carry, s0, s1))
        carry = b.mux(carry, c0, c1)
    b.output_word("sum", sums + [carry])
    return b.build()


def wallace_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """Wallace-tree multiplier: CSA reduction of the partial products.

    Partial products are reduced column-wise with full/half adders until
    every column holds at most two bits; a final ripple adder merges the
    two operands.  Shallower and more irregular than the carry-propagate
    array — exactly the structural contrast the ablation probes.
    """
    b = CircuitBuilder(name or f"wallace{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    out_width = 2 * width
    columns: List[List[Sig]] = [[] for _ in range(out_width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(b.and_(a[i], x[j]))

    while any(len(col) > 2 for col in columns):
        nxt: List[List[Sig]] = [[] for _ in range(out_width)]
        for pos, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                s, c = b.full_adder(col[idx], col[idx + 1], col[idx + 2])
                nxt[pos].append(s)
                if pos + 1 < out_width:
                    nxt[pos + 1].append(c)
                idx += 3
            if len(col) - idx == 2:
                s, c = b.half_adder(col[idx], col[idx + 1])
                nxt[pos].append(s)
                if pos + 1 < out_width:
                    nxt[pos + 1].append(c)
                idx += 2
            nxt[pos].extend(col[idx:])
        columns = nxt

    zero = b.const(False)
    op_a = [col[0] if len(col) > 0 else zero for col in columns]
    op_b = [col[1] if len(col) > 1 else zero for col in columns]
    total, _ = b.add(op_a, op_b)
    b.output_word("p", total)
    return b.build()
