"""Benchmark circuit generators (paper Table 1).

Each generator elaborates the natural gate-level micro-architecture of one
of the six evaluation circuits and attaches word metadata so QoR can be
measured on numbers (Eq. 1/2 of the paper).  I/O pin counts match Table 1:

=========  ==========================================  =======
Name       Function                                    I/O
=========  ==========================================  =======
Adder32    32-bit adder                                64/33
Mult8      8-bit multiplier                            16/16
BUT        butterfly structure (radix-2: a+b, a-b)     16/18
MAC        8x8 multiply + 32-bit accumulate            48/33
SAD        |a-b| + 32-bit accumulate                   48/33
FIR        4-tap 8-bit FIR filter                      64/16
=========  ==========================================  =======

Every generator has a matching ``golden_*`` numpy model used by tests and
by Monte-Carlo QoR validation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit

#: Bits dropped from the FIR accumulator; the 18-bit sum of four 16-bit
#: products is scaled down to the 16 output pins of Table 1.
FIR_SHIFT = 2


def ripple_adder(width: int, name: str = None) -> Circuit:
    """``sum = a + b`` with full carry: ``width`` + 1 output bits."""
    b = CircuitBuilder(name or f"adder{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    s, carry = b.add(a, x)
    b.output_word("sum", s + [carry])
    return b.build()


def array_multiplier(width: int, name: str = None) -> Circuit:
    """``p = a * b`` as a carry-propagate array multiplier."""
    b = CircuitBuilder(name or f"mult{width}")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    b.output_word("p", b.mul(a, x))
    return b.build()


def butterfly(width: int = 8, name: str = None) -> Circuit:
    """Radix-2 butterfly: ``x = a + b`` and ``y = a - b`` (signed).

    With ``width=8`` this is the paper's BUT: 16 inputs, 18 outputs.
    """
    b = CircuitBuilder(name or "butterfly")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    s = b.add_expand(a, x)  # width+1 bits, unsigned
    ext_a = b.extend(a, width + 1)
    ext_b = b.extend(x, width + 1)
    d, _ = b.sub(ext_a, ext_b)  # width+1 bits, two's complement
    b.output_word("x", s)
    b.output_word("y", d, signed=True)
    return b.build()


#: Active accumulator bits in the MAC/SAD Monte-Carlo stimulus: the
#: magnitude of an accumulator a few terms into its sum.  A uniform
#: full-width accumulator would make the arithmetic core numerically
#: invisible under relative error (see repro.circuit.stimulus).
MAC_ACC_STIMULUS_BITS = 18
SAD_ACC_STIMULUS_BITS = 11


def mac(mul_width: int = 8, acc_width: int = 32, name: str = None) -> Circuit:
    """Multiply-accumulate: ``out = a * b + acc`` (paper's MAC at 8/32)."""
    b = CircuitBuilder(name or "mac")
    a = b.input_word("a", mul_width)
    x = b.input_word("b", mul_width)
    acc = b.input_word("acc", acc_width)
    product = b.extend(b.mul(a, x), acc_width)
    total, carry = b.add(product, acc)
    b.output_word("out", total + [carry])
    circuit = b.build()
    circuit.attrs["stimulus"] = {
        "acc": min(MAC_ACC_STIMULUS_BITS, acc_width)
    }
    return circuit


def sad(width: int = 8, acc_width: int = 32, name: str = None) -> Circuit:
    """Sum of absolute differences: ``out = |a - b| + acc``."""
    b = CircuitBuilder(name or "sad")
    a = b.input_word("a", width)
    x = b.input_word("b", width)
    acc = b.input_word("acc", acc_width)
    diff = b.extend(b.abs_diff(a, x), acc_width)
    total, carry = b.add(diff, acc)
    b.output_word("out", total + [carry])
    circuit = b.build()
    circuit.attrs["stimulus"] = {
        "acc": min(SAD_ACC_STIMULUS_BITS, acc_width)
    }
    return circuit


def fir(
    taps: int = 4, width: int = 8, out_width: int = 16, name: str = None
) -> Circuit:
    """FIR filter: ``y = (sum_i x_i * c_i) >> FIR_SHIFT``.

    Inputs are ``taps`` samples and ``taps`` coefficients of ``width`` bits
    each; the accumulator is truncated to ``out_width`` pins (Table 1's FIR
    is 64 inputs / 16 outputs at the defaults).
    """
    b = CircuitBuilder(name or "fir")
    xs = [b.input_word(f"x{i}", width) for i in range(taps)]
    cs = [b.input_word(f"c{i}", width) for i in range(taps)]
    acc_width = 2 * width + max(taps - 1, 1).bit_length() + 1
    acc = b.const_word(0, acc_width)
    for xi, ci in zip(xs, cs):
        product = b.extend(b.mul(xi, ci), acc_width)
        acc, _ = b.add(acc, product)
    b.output_word("y", acc[FIR_SHIFT : FIR_SHIFT + out_width])
    return b.build()


# ----------------------------------------------------------------------
# Table 1 entry points
# ----------------------------------------------------------------------

def adder32() -> Circuit:
    """Paper benchmark: 32-bit adder (64 inputs / 33 outputs)."""
    return ripple_adder(32, "Adder32")


def mult8() -> Circuit:
    """Paper benchmark: 8-bit multiplier (16 inputs / 16 outputs)."""
    return array_multiplier(8, "Mult8")


def but() -> Circuit:
    """Paper benchmark: butterfly structure (16 inputs / 18 outputs)."""
    return butterfly(8, "BUT")


def mac8_32() -> Circuit:
    """Paper benchmark: MAC with 32-bit accumulator (48/33)."""
    return mac(8, 32, "MAC")


def sad8_32() -> Circuit:
    """Paper benchmark: SAD with 32-bit accumulator (48/33)."""
    return sad(8, 32, "SAD")


def fir4_8() -> Circuit:
    """Paper benchmark: 4-tap FIR filter (64/16)."""
    return fir(4, 8, 16, "FIR")


# ----------------------------------------------------------------------
# Golden models (numpy, vectorized over sample axes)
# ----------------------------------------------------------------------

def golden_adder(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) + b.astype(np.int64)

def golden_mult(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) * b.astype(np.int64)

def golden_butterfly(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a64, b64 = a.astype(np.int64), b.astype(np.int64)
    return a64 + b64, a64 - b64

def golden_mac(a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) * b.astype(np.int64) + acc.astype(np.int64)

def golden_sad(a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> np.ndarray:
    return np.abs(a.astype(np.int64) - b.astype(np.int64)) + acc.astype(np.int64)

def golden_fir(xs: np.ndarray, cs: np.ndarray) -> np.ndarray:
    """``xs``/``cs`` of shape (n, taps); returns the shifted accumulator."""
    acc = (xs.astype(np.int64) * cs.astype(np.int64)).sum(axis=-1)
    return acc >> FIR_SHIFT
