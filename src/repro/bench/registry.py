"""Registry of the paper's six evaluation benchmarks.

Maps benchmark names to generator factories, golden numpy models and the
descriptions of Table 1, so harness code (benchmarks/, examples/, CLI) can
iterate "for each application" exactly like the paper's §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from . import generators as g


@dataclass(frozen=True)
class Benchmark:
    """One evaluation circuit.

    Attributes:
        name: Table 1 name.
        function: Table 1 description.
        factory: Zero-argument circuit generator.
        golden: Maps a dict of input-word arrays to a dict of expected
            output-word values (both keyed by word name).
    """

    name: str
    function: str
    factory: Callable[[], Circuit]
    golden: Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]]


def _golden_adder32(ins):
    return {"sum": g.golden_adder(ins["a"], ins["b"])}

def _golden_mult8(ins):
    return {"p": g.golden_mult(ins["a"], ins["b"])}

def _golden_but(ins):
    x, y = g.golden_butterfly(ins["a"], ins["b"])
    return {"x": x, "y": y}

def _golden_mac(ins):
    return {"out": g.golden_mac(ins["a"], ins["b"], ins["acc"])}

def _golden_sad(ins):
    return {"out": g.golden_sad(ins["a"], ins["b"], ins["acc"])}

def _golden_fir(ins):
    xs = np.stack([ins[f"x{i}"] for i in range(4)], axis=-1)
    cs = np.stack([ins[f"c{i}"] for i in range(4)], axis=-1)
    return {"y": g.golden_fir(xs, cs)}


BENCHMARKS: Dict[str, Benchmark] = {
    "adder32": Benchmark("Adder32", "32-bit Adder", g.adder32, _golden_adder32),
    "mult8": Benchmark("Mult8", "8-bit Multiplier", g.mult8, _golden_mult8),
    "but": Benchmark("BUT", "Butterfly Structure", g.but, _golden_but),
    "mac": Benchmark(
        "MAC", "Multiply and Accumulate with 32-bit Accumulator", g.mac8_32, _golden_mac
    ),
    "sad": Benchmark("SAD", "Sum of Absolute Difference", g.sad8_32, _golden_sad),
    "fir": Benchmark("FIR", "4-Tap FIR Filter", g.fir4_8, _golden_fir),
}

#: Table 1 row order.
BENCHMARK_ORDER: Tuple[str, ...] = ("adder32", "mult8", "but", "mac", "sad", "fir")


def get_benchmark(name: str) -> Benchmark:
    """Case-insensitive lookup; raises ``KeyError`` with the valid names."""
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def random_input_word_values(
    circuit: Circuit, n: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Uniform random values for each input word of a benchmark circuit."""
    out = {}
    for spec in circuit.attrs.get("input_words", []):
        out[spec.name] = rng.integers(0, 1 << spec.width, size=n, dtype=np.int64)
    return out


def input_patterns_from_words(
    circuit: Circuit, values: Dict[str, np.ndarray]
) -> np.ndarray:
    """Convert word values into a (n, n_inputs) 0/1 pattern matrix."""
    n = len(next(iter(values.values())))
    patterns = np.zeros((n, circuit.n_inputs), dtype=np.uint8)
    for spec in circuit.attrs.get("input_words", []):
        vals = np.asarray(values[spec.name], dtype=np.int64)
        for bit_pos, port in enumerate(spec.indices):
            patterns[:, port] = (vals >> bit_pos) & 1
    return patterns
