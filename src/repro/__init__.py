"""BLASYS reproduction: approximate logic synthesis via Boolean matrix factorization.

This package re-implements the full system from *BLASYS: Approximate Logic
Synthesis Using Boolean Matrix Factorization* (Hashemi, Tann, Reda — DAC
2018): the BMF-based approximator, the weighted-QoR factorization, the k×m
circuit decomposition with its greedy design-space exploration, the logic
synthesis / technology-mapping substrate used as the cost oracle, the six
evaluation benchmarks, and the SALSA-style per-output baseline.

Quickstart::

    from repro import bench, flow

    result = flow.run_blasys(bench.mult8(), thresholds=[0.05])
    print(result.summary())
"""

__version__ = "1.0.0"

from . import baselines  # noqa: F401
from . import bench  # noqa: F401
from . import circuit  # noqa: F401
from . import core  # noqa: F401
from . import eval  # noqa: F401
from . import flow  # noqa: F401
from . import partition  # noqa: F401
from . import runtime  # noqa: F401
from . import synth  # noqa: F401

__all__ = [
    "__version__",
    "baselines",
    "bench",
    "circuit",
    "core",
    "eval",
    "flow",
    "partition",
    "runtime",
    "synth",
]
