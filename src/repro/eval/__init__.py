"""Evaluation utilities: error analysis and Pareto-front tooling."""

from .error_analysis import (
    ErrorReport,
    analyze_errors,
    error_histogram,
    per_output_bit_error,
)
from .pareto import (
    area_at_error,
    dominance_count,
    exploration_front,
    hypervolume,
    pareto_front,
    strategy_fronts,
    trajectory_points,
)

__all__ = [
    "ErrorReport",
    "analyze_errors",
    "area_at_error",
    "dominance_count",
    "error_histogram",
    "exploration_front",
    "hypervolume",
    "pareto_front",
    "per_output_bit_error",
    "strategy_fronts",
    "trajectory_points",
]
