"""Pareto-front utilities over exploration trajectories.

Figure 5 plots raw trajectories; downstream users usually want the
*dominating frontier* (no other point is both more accurate and smaller)
and scalar summaries for comparing configurations (hypervolume, area under
the staircase).  These helpers work on any
:class:`~repro.core.explorer.ExplorationResult` or plain (error, cost)
pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.explorer import ExplorationResult


def pareto_front(
    points: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Non-dominated subset of (error, cost) pairs, sorted by error.

    A point dominates another if it is no worse in both coordinates and
    strictly better in one (both axes minimized).
    """
    ordered = sorted(set(points))
    front: List[Tuple[float, float]] = []
    best_cost = np.inf
    for err, cost in ordered:
        if cost < best_cost - 1e-15:
            front.append((err, cost))
            best_cost = cost
    return front


def trajectory_points(result: ExplorationResult) -> List[Tuple[float, float]]:
    """(error, normalized estimated area) pairs of a trajectory."""
    base = result.baseline_est_area or 1.0
    return [(p.qor, p.est_area / base) for p in result.trajectory]


def exploration_front(result: ExplorationResult) -> List[Tuple[float, float]]:
    """Pareto frontier of an exploration's trajectory."""
    return pareto_front(trajectory_points(result))


def hypervolume(
    front: Sequence[Tuple[float, float]],
    ref: Tuple[float, float] = (1.0, 1.0),
) -> float:
    """2-D hypervolume dominated by ``front`` w.r.t. reference ``ref``.

    Standard quality indicator: larger is better.  Points beyond the
    reference contribute nothing.
    """
    # Integrate the dominated staircase left to right.
    pts = [(e, c) for e, c in sorted(front) if e < ref[0] and c < ref[1]]
    if not pts:
        return 0.0
    volume = 0.0
    for i, (err, cost) in enumerate(pts):
        next_err = pts[i + 1][0] if i + 1 < len(pts) else ref[0]
        volume += (min(next_err, ref[0]) - err) * (ref[1] - cost)
    return volume


def area_at_error(
    front: Sequence[Tuple[float, float]], error: float
) -> float:
    """Smallest cost achievable within an error budget (1.0 if none)."""
    feasible = [c for e, c in front if e <= error]
    return min(feasible) if feasible else 1.0


def strategy_fronts(
    results: Iterable[ExplorationResult],
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-strategy Pareto fronts over a portfolio of explorations.

    Results are grouped by ``config.strategy`` and each group's
    trajectories pool into one front — the shape the search-portfolio
    benchmark compares (several seeds of one strategy contribute one
    front).
    """
    pools: Dict[str, List[Tuple[float, float]]] = {}
    for result in results:
        pools.setdefault(result.config.strategy, []).extend(
            trajectory_points(result)
        )
    return {
        strategy: pareto_front(points)
        for strategy, points in pools.items()
    }


def dominance_count(
    front: Sequence[Tuple[float, float]],
    points: Iterable[Tuple[float, float]],
) -> int:
    """How many of ``points`` are strictly dominated by ``front``.

    A point is dominated when some front point is no worse on both
    (minimized) axes and strictly better on at least one — the
    dominated-point indicator the benchmark asserts alongside
    hypervolume.
    """
    count = 0
    for err, cost in points:
        for fe, fc in front:
            if fe <= err and fc <= cost and (fe < err or fc < cost):
                count += 1
                break
    return count
