"""Standard approximate-computing error metrics and distributions.

The paper reports average relative and average absolute error (Eq. 1/2);
the surrounding literature (SALSA, SASIMI, ASLAN, the approximate-adder
papers the introduction cites) additionally characterizes designs by error
rate, mean/worst error distance and bit-flip statistics.  This module
computes the full standard set from one simulation pass, so realized
designs can be compared against any of those works:

========  =====================================================
ER        error rate: fraction of sampled inputs with any wrong output
MED       mean error distance: ``mean |R - R'|``
NMED      MED normalized to the word's maximum magnitude
MRED      mean relative error distance (Eq. 1 with the max(.,1) guard)
WCE       worst-case error distance observed
WCRE      worst-case relative error observed
MSE       mean squared error distance
BER       bit error rate: wrong output bits / total output bits
========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..circuit.netlist import Circuit
from ..circuit.simulate import simulate_outputs, unpack_bits
from ..circuit.stimulus import stimulus_input_words
from ..core.qor import circuit_words


@dataclass(frozen=True)
class ErrorReport:
    """Full error characterization of an approximate design.

    All distances are taken over every (sample, word) pair; see module
    docstring for the metric definitions.
    """

    n_samples: int
    error_rate: float
    mean_error_distance: float
    normalized_med: float
    mean_relative_error: float
    worst_case_error: int
    worst_case_relative_error: float
    mean_squared_error: float
    bit_error_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "er": self.error_rate,
            "med": self.mean_error_distance,
            "nmed": self.normalized_med,
            "mred": self.mean_relative_error,
            "wce": float(self.worst_case_error),
            "wcre": self.worst_case_relative_error,
            "mse": self.mean_squared_error,
            "ber": self.bit_error_rate,
        }


def analyze_errors(
    accurate: Circuit,
    approximate: Circuit,
    n_samples: int = 65536,
    seed: int = 0xE44,
    rng: Optional[np.random.Generator] = None,
) -> ErrorReport:
    """Monte-Carlo error characterization of ``approximate`` vs ``accurate``.

    Uses the accurate circuit's stimulus model (see
    :mod:`repro.circuit.stimulus`) and word metadata.
    """
    if accurate.n_inputs != approximate.n_inputs:
        raise SimulationError("circuits have different input counts")
    if accurate.n_outputs != approximate.n_outputs:
        raise SimulationError("circuits have different output counts")
    rng = rng or np.random.default_rng(seed)
    words = stimulus_input_words(accurate, n_samples, rng)
    exact_bits = unpack_bits(simulate_outputs(accurate, words), n_samples).T
    approx_bits = unpack_bits(simulate_outputs(approximate, words), n_samples).T

    specs = circuit_words(accurate)
    diffs = []
    rels = []
    norms = []
    for spec in specs:
        exact = spec.to_ints(exact_bits)
        approx = spec.to_ints(approx_bits)
        d = np.abs(exact - approx)
        diffs.append(d)
        rels.append(d / np.maximum(np.abs(exact), 1))
        norms.append(d / max(spec.max_abs, 1))
    diff = np.stack(diffs, axis=1)  # (n, n_words)
    rel = np.stack(rels, axis=1)
    norm = np.stack(norms, axis=1)

    wrong_bits = approx_bits != exact_bits
    # The report metrics below reduce *resident, unpacked* sample arrays
    # in one fixed numpy order — they are post-hoc analysis, never part
    # of the chunk/shard trajectory QoR path the canonical partials
    # discipline exists for.
    return ErrorReport(
        n_samples=n_samples,
        error_rate=float((diff.sum(axis=1) > 0).mean()),  # contract-ok: float-reduction -- post-hoc report on resident samples
        mean_error_distance=float(diff.mean()),  # contract-ok: float-reduction -- post-hoc report on resident samples
        normalized_med=float(norm.mean()),
        mean_relative_error=float(rel.mean()),
        worst_case_error=int(diff.max()),
        worst_case_relative_error=float(rel.max()),
        mean_squared_error=float((diff.astype(float) ** 2).mean()),  # contract-ok: float-reduction -- post-hoc report on resident samples
        bit_error_rate=float(wrong_bits.mean()),
    )


def error_histogram(
    accurate: Circuit,
    approximate: Circuit,
    n_samples: int = 65536,
    bins: int = 20,
    seed: int = 0xE44,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of absolute error distances (counts, bin edges).

    Error distances are pooled over all output words.  Useful for checking
    whether an approximate design's errors are many-small (graceful) or
    few-large (catastrophic) — designs with identical MED can differ wildly
    here.
    """
    rng = np.random.default_rng(seed)
    words = stimulus_input_words(accurate, n_samples, rng)
    exact_bits = unpack_bits(simulate_outputs(accurate, words), n_samples).T
    approx_bits = unpack_bits(simulate_outputs(approximate, words), n_samples).T
    diffs = []
    for spec in circuit_words(accurate):
        diffs.append(
            np.abs(spec.to_ints(exact_bits) - spec.to_ints(approx_bits))
        )
    pooled = np.concatenate(diffs)
    return np.histogram(pooled, bins=bins)


def per_output_bit_error(
    accurate: Circuit,
    approximate: Circuit,
    n_samples: int = 16384,
    seed: int = 0xE44,
) -> np.ndarray:
    """Flip probability of each primary output bit (length n_outputs).

    The BLASYS weighted-QoR story predicts flips concentrate in low-
    significance positions; this measures exactly that profile.
    """
    rng = np.random.default_rng(seed)
    words = stimulus_input_words(accurate, n_samples, rng)
    exact_bits = unpack_bits(simulate_outputs(accurate, words), n_samples)
    approx_bits = unpack_bits(simulate_outputs(approximate, words), n_samples)
    return (exact_bits != approx_bits).mean(axis=1)
