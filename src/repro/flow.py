"""End-to-end BLASYS flow: decompose → profile → explore → realize → report.

This is the library's main entry point, mirroring the paper's evaluation
procedure (§4): run Algorithm 1 against an error threshold, realize the
chosen approximate netlist, synthesize both it and the accurate baseline
through the same cost oracle, and report savings plus independently
re-measured error metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .errors import ExplorationError
from .circuit.netlist import Circuit
from .circuit.simulate import simulate_outputs
from .circuit.stimulus import stimulus_input_words
from .core.explorer import (
    ExplorationResult,
    ExplorerConfig,
    TrajectoryPoint,
    explore,
)
from .core.qor import QoREvaluator, QoRSpec
from .runtime import format_bytes
from .synth.library import DEFAULT_CLOCK_MHZ, LIB65, Library
from .synth.synthesis import DesignMetrics, evaluate_design


@dataclass(frozen=True)
class RealizedDesign:
    """One approximate design realized at a threshold.

    Attributes:
        threshold: The error threshold this design was selected for.
        point: The trajectory point it realizes.
        circuit: The synthesized approximate netlist.
        metrics: Area/power/delay of the realized netlist.
        measured: Independently re-measured error metrics (fresh samples).
        savings: Percent savings vs. the accurate baseline.
    """

    threshold: float
    point: TrajectoryPoint
    circuit: Circuit
    metrics: DesignMetrics
    measured: Dict[str, float]
    savings: Dict[str, float]


@dataclass
class FlowResult:
    """Output of :func:`run_blasys`."""

    circuit: Circuit
    baseline: DesignMetrics
    exploration: ExplorationResult
    designs: Dict[float, RealizedDesign] = field(default_factory=dict)
    #: Metric that drove exploration; the summary reports it, not always mre.
    qor_metric: str = "mre"

    def summary(self) -> str:
        """Human-readable per-threshold savings table (Table 2 style)."""
        lines = [
            f"{self.circuit.name}: baseline area={self.baseline.area_um2:.1f}um2 "
            f"power={self.baseline.power_uw:.1f}uW delay={self.baseline.delay_ns:.2f}ns"
        ]
        for thr in sorted(self.designs):
            d = self.designs[thr]
            val = d.measured[self.qor_metric]
            shown = (
                f"{val:.2%}" if self.qor_metric in ("mre", "nmae") else f"{val:.4g}"
            )
            lines.append(
                f"  thr={thr:>5.0%}  area-{d.savings['area']:5.1f}%  "
                f"power-{d.savings['power']:5.1f}%  delay-{d.savings['delay']:5.1f}%  "
                f"(measured {self.qor_metric} {shown})"
            )
        stats = self.exploration.runtime_stats
        if stats is not None:
            lines.append(f"  {stats.summary()}")
            if stats.peak_sample_matrix_bytes:
                chunk = (
                    f"{stats.chunk_words} words"
                    if stats.chunk_words
                    else "resident (unchunked)"
                )
                per_process = (
                    " per process" if stats.shard_jobs > 1 else ""
                )
                lines.append(
                    f"  memory: peak sample matrix "
                    f"{format_bytes(stats.peak_sample_matrix_bytes)}"
                    f"{per_process}, chunk size {chunk}"
                )
            if stats.n_shard_tasks:
                lines.append(
                    f"  sharding: {stats.n_shard_tasks} shard tasks on "
                    f"{stats.shard_jobs} worker(s), "
                    f"{stats.n_stacked_blocks} stacked candidate blocks, "
                    f"chunk cache {stats.n_chunk_cache_hits} hit / "
                    f"{stats.n_chunk_cache_misses} miss"
                )
        return "\n".join(lines)


def measure_error(
    accurate: Circuit,
    approximate: Circuit,
    n_samples: int = 65536,
    seed: int = 1234,
    spec: QoRSpec = QoRSpec(),
) -> Dict[str, float]:
    """Monte-Carlo error metrics of ``approximate`` vs ``accurate``.

    Uses a sample set independent of the one that guided exploration, like
    the paper's final 10^6-vector evaluation.  All metrics are returned;
    ``spec`` additionally exposes its configured metric under the ``"qor"``
    key so callers can read the driving metric uniformly.
    """
    if accurate.n_inputs != approximate.n_inputs:
        raise ExplorationError("circuits have different input counts")
    rng = np.random.default_rng(seed)
    words = stimulus_input_words(accurate, n_samples, rng)
    exact_out = simulate_outputs(accurate, words, n_samples=n_samples)
    approx_out = simulate_outputs(approximate, words, n_samples=n_samples)
    evaluator = QoREvaluator(accurate, exact_out, n_samples, spec)
    metrics = evaluator.metrics(approx_out)
    metrics["qor"] = metrics[spec.metric]
    return metrics


def run_blasys(
    circuit: Circuit,
    thresholds: Sequence[float] = (0.05,),
    config: Optional[ExplorerConfig] = None,
    final_samples: int = 65536,
    library: Library = LIB65,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    activity_samples: int = 2048,
    context=None,
) -> FlowResult:
    """Run the complete BLASYS flow against one or more error thresholds.

    Args:
        circuit: Accurate input circuit (word metadata recommended; see
            :mod:`repro.bench` for examples).
        thresholds: Error thresholds (in the explorer's metric, default
            average relative error) to realize designs for.
        config: Exploration configuration; its ``threshold`` is overridden
            with ``max(thresholds)`` unless it is already an exhaustive
            (``None`` + ``error_cap``) setup.  A configured threshold below
            ``max(thresholds)`` raises :class:`ExplorationError` instead of
            silently realizing nothing at the larger thresholds.
        final_samples: Sample count for the independent error re-measurement.
        context: Per-run :class:`~repro.runtime.RunContext` forwarded to
            :func:`~repro.core.explorer.explore` (cancellation/deadline
            token, progress callback, shared cache, executor factory).

    Raises:
        ExplorationError: No thresholds given, or ``config.threshold`` is
            inconsistent with (smaller than) the requested thresholds.

    Returns:
        A :class:`FlowResult` with baseline metrics, the full exploration
        trajectory, and one realized design per threshold.
    """
    if not thresholds:
        raise ExplorationError("need at least one threshold")
    config = config or ExplorerConfig()
    top = max(thresholds)
    if config.threshold is None and config.error_cap is None:
        config = _replace_threshold(config, top)
    elif config.threshold is not None and config.threshold < top:
        raise ExplorationError(
            f"config.threshold={config.threshold} is below the largest "
            f"requested threshold {top}; exploration would stop early and "
            "silently produce no design there — raise config.threshold "
            "(or leave it None) or drop the larger thresholds"
        )

    baseline = evaluate_design(
        circuit,
        library,
        n_activity_samples=activity_samples,
        clock_mhz=clock_mhz,
        match_macros=config.match_macros,
    )
    exploration = explore(circuit, config, context=context)

    result = FlowResult(
        circuit, baseline, exploration, qor_metric=config.qor.metric
    )
    for thr in thresholds:
        point = exploration.best_point(thr)
        if point is None or point.iteration == 0:
            continue  # no approximation fits this threshold
        realized = exploration.realize(point)
        metrics = evaluate_design(
            realized,
            library,
            n_activity_samples=activity_samples,
            clock_mhz=clock_mhz,
            match_macros=config.match_macros,
        )
        measured = measure_error(
            circuit, realized, final_samples, spec=config.qor
        )
        result.designs[thr] = RealizedDesign(
            threshold=thr,
            point=point,
            circuit=realized,
            metrics=metrics,
            measured=measured,
            savings=metrics.savings_vs(baseline),
        )
    return result


def _replace_threshold(config: ExplorerConfig, threshold: float) -> ExplorerConfig:
    """Copy ``config`` with a new stop threshold (dataclass is frozen)."""
    from dataclasses import replace

    return replace(config, threshold=threshold)
