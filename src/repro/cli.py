"""Command-line interface: run BLASYS flows from a shell.

Examples::

    blasys run --bench mult8 --thresholds 0.05 0.25
    blasys run --blif mydesign.blif --thresholds 0.1 --out approx.blif
    blasys table1
    blasys compare --bench adder32 --thresholds 0.05 0.25   # vs SALSA
    blasys lint                # contract lint over the shipped package
    blasys lint src tests      # explicit paths

Service mode (DESIGN.md "Service")::

    blasys serve --socket /tmp/b.sock --journal /tmp/jobs   # daemon
    blasys submit --socket /tmp/b.sock --bench mult8 --wait
    blasys jobs --socket /tmp/b.sock
    blasys job job-0001 --socket /tmp/b.sock --wait
    blasys shutdown --socket /tmp/b.sock
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import BENCHMARK_ORDER, get_benchmark
from .baselines import run_salsa
from .circuit import read_blif, write_blif, write_verilog
from .core.explorer import STRATEGIES, ExplorerConfig, explore
from .errors import ExplorationError, ServiceShutdown
from .flow import run_blasys
from .runtime import CancelToken, RunContext, ShutdownGuard
from .synth import evaluate_design


def _load_circuit(args):
    if args.bench:
        return get_benchmark(args.bench).factory()
    if args.blif:
        return read_blif(args.blif)
    raise SystemExit("provide --bench NAME or --blif FILE")


def _config(args) -> ExplorerConfig:
    # Checkpoint flag coherence: --checkpoint-every and --resume only
    # mean something relative to a checkpoint path.  Accepting them
    # alone would silently drop the user's durability request (no file
    # ever written), so both are hard errors rather than warnings.
    if args.checkpoint_every is not None and not args.checkpoint:
        raise ExplorationError(
            "--checkpoint-every requires --checkpoint PATH: the period "
            "controls how often the checkpoint file is written, so "
            "without a path no checkpoint would ever be produced"
        )
    if args.resume and not args.checkpoint:
        raise ExplorationError(
            "--resume requires --checkpoint PATH: progress made after "
            "resuming would otherwise be un-checkpointed, and a second "
            "interruption would lose it (pass the same path to resume "
            "in place, or a new one to fork the run)"
        )
    return ExplorerConfig(
        max_inputs=args.k,
        max_outputs=args.m,
        n_samples=args.samples,
        strategy=args.strategy,
        weight_mode=args.weights,
        seed=args.seed,
        jobs=args.jobs,
        shard_jobs=args.shard_jobs,
        chunk_cache_chunks=args.chunk_cache_chunks,
        cache_dir=args.cache_dir,
        engine=args.engine,
        kernels=args.kernels,
        chunk_words=args.chunk_words,
        chunk_budget_mb=args.chunk_budget_mb,
        sanitize=True if args.sanitize else None,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
        faults=args.faults,
        checkpoint_path=args.checkpoint,
        checkpoint_every=(
            1 if args.checkpoint_every is None else args.checkpoint_every
        ),
        resume=args.resume,
        max_evaluations=args.max_evaluations,
        anneal_t0=args.anneal_t0,
        anneal_alpha=args.anneal_alpha,
        anneal_stall=args.anneal_stall,
        bo_init=args.bo_init,
        bo_lengthscale=args.bo_lengthscale,
        ranker_epsilon=args.ranker_epsilon,
        ranker_lr=args.ranker_lr,
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--bench", help=f"benchmark name ({', '.join(BENCHMARK_ORDER)})")
    p.add_argument("--blif", help="path to a combinational BLIF file")
    p.add_argument("--thresholds", type=float, nargs="+", default=[0.05],
                   help="average-relative-error thresholds")
    p.add_argument("--k", type=int, default=10, help="window input budget")
    p.add_argument("--m", type=int, default=10, help="window output budget")
    p.add_argument("--samples", type=int, default=4096,
                   help="Monte-Carlo samples during exploration")
    p.add_argument("--strategy", choices=list(STRATEGIES), default="lazy",
                   help="candidate selection: greedy sweeps (full/lazy) or "
                        "the stochastic portfolio (anneal/bo/ranker); every "
                        "strategy is seed-deterministic and replayable")
    p.add_argument("--max-evaluations", type=int, default=None,
                   help="hard cap on candidate evaluations — the "
                        "equal-budget knob for comparing strategies")
    p.add_argument("--anneal-t0", type=float, default=0.05,
                   help="annealing initial temperature")
    p.add_argument("--anneal-alpha", type=float, default=0.97,
                   help="annealing geometric cooling factor per move")
    p.add_argument("--anneal-stall", type=int, default=24,
                   help="consecutive rejections that stop the annealing walk")
    p.add_argument("--bo-init", type=int, default=6,
                   help="random warm-up proposals before the BO surrogate "
                        "takes over")
    p.add_argument("--bo-lengthscale", type=float, default=0.25,
                   help="RBF kernel lengthscale over the normalized degree "
                        "vector")
    p.add_argument("--ranker-epsilon", type=float, default=0.15,
                   help="move-ranker epsilon-greedy exploration rate")
    p.add_argument("--ranker-lr", type=float, default=0.5,
                   help="move-ranker online logistic learning rate")
    # "significance" is the paper's WQoR flow (§3.2) and the ExplorerConfig
    # default; "uniform" is Figure 4's control arm.
    p.add_argument("--weights", choices=["uniform", "significance"],
                   default="significance", help="BMF QoR weighting (§3.2)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for profiling and, unless "
                        "--shard-jobs overrides it, streaming shard scans "
                        "(0 = all cores)")
    p.add_argument("--shard-jobs", type=int, default=None,
                   help="worker processes for the streaming engine's "
                        "chunk-sharded candidate scans (default: follow "
                        "--jobs; 0 = all cores; requires --chunk-words or "
                        "--chunk-budget-mb; trajectories stay byte-identical "
                        "for any worker count)")
    p.add_argument("--chunk-cache-chunks", type=int, default=0,
                   help="cone-epoch chunk-cache capacity: cached per-chunk committed "
                        "base slices reused across iterations (0 disables; "
                        "each slice costs up to 8*n_nodes*chunk_words bytes "
                        "per process)")
    p.add_argument("--cache-dir",
                   help="persistent profiling cache directory; warm runs "
                        "skip factorization and variant synthesis")
    p.add_argument("--engine", choices=["compiled", "reference"],
                   default="compiled",
                   help="candidate-evaluation engine (trajectories are "
                        "byte-identical; 'reference' is the interpreted "
                        "oracle)")
    p.add_argument("--kernels", choices=["numpy", "jit", "auto"],
                   default="auto",
                   help="kernel backend for the packed hot loops "
                        "(byte-identical results; 'jit' uses numba when "
                        "installed, 'auto' falls back to numpy without it; "
                        "the REPRO_KERNELS env var overrides)")
    p.add_argument("--chunk-words", type=int, default=None,
                   help="streaming execution: packed words per pattern-axis "
                        "chunk (bounds sample-matrix memory; trajectories "
                        "stay byte-identical to resident execution)")
    p.add_argument("--chunk-budget-mb", type=float, default=None,
                   help="auto-pick --chunk-words from a sample-matrix "
                        "memory budget in MB (resident when it already fits)")
    p.add_argument("--sanitize", action="store_true",
                   help="runtime contract sanitizer: freeze cache-held "
                        "arrays, assert tail-bit masks, audit shard "
                        "payloads (same as REPRO_SANITIZE=1; trajectories "
                        "are unchanged — it only adds tripwires)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   help="per-attempt wall-clock bound in seconds for "
                        "supervised pool work; a hung worker is timed out, "
                        "the pool rebuilt and the item retried (default: "
                        "wait forever)")
    p.add_argument("--shard-retries", type=int, default=2,
                   help="pool re-submissions per failed shard/task before "
                        "it falls back to in-process execution (results "
                        "are byte-identical either way)")
    p.add_argument("--faults", default=None,
                   help="deterministic fault-injection spec for chaos "
                        "testing, e.g. 'crash:shard=0,attempt=0,scan=0;"
                        "pool:scan=1' (same as REPRO_FAULTS; grammar in "
                        "DESIGN.md 'Fault tolerance')")
    p.add_argument("--checkpoint", default=None,
                   help="write an atomic exploration checkpoint to this "
                        "path every --checkpoint-every committed "
                        "iterations")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="commit period of checkpoint writes (default 1; "
                        "requires --checkpoint)")
    p.add_argument("--resume", default=None,
                   help="resume exploration from this checkpoint; the "
                        "final trajectory is byte-identical to an "
                        "uninterrupted run (the checkpoint must match the "
                        "circuit and search-defining flags)")


def _interrupted(guard: ShutdownGuard, config: ExplorerConfig) -> int:
    """Report a signal-interrupted run; exit code is ``128 + signum``."""
    import signal as _signal

    name = (
        _signal.Signals(guard.signum).name
        if guard.signum is not None else "shutdown"
    )
    tail = (
        f"; checkpoint flushed to {config.checkpoint_path} (pass "
        f"--resume {config.checkpoint_path} to continue)"
        if config.checkpoint_path else
        " (no --checkpoint was set, so progress is not recoverable)"
    )
    print(f"interrupted by {name}{tail}", file=sys.stderr)
    return 128 + guard.signum if guard.signum is not None else 1


def _cmd_run(args) -> int:
    circuit = _load_circuit(args)
    config = _config(args)
    # A Ctrl-C / SIGTERM during exploration cancels cooperatively: the
    # greedy loop stops at the next iteration boundary, worker pools are
    # closed (no orphan processes), and the final checkpoint — when
    # --checkpoint is set — is flushed before we exit.
    token = CancelToken()
    guard = ShutdownGuard(token)
    try:
        with guard:
            result = run_blasys(
                circuit, thresholds=args.thresholds, config=config,
                context=RunContext(cancel=token),
            )
    except ServiceShutdown:
        return _interrupted(guard, config)
    print(result.summary())
    if args.out and result.designs:
        best = result.designs[min(result.designs)]
        if args.out.endswith(".v"):
            write_verilog(best.circuit, args.out)
        else:
            write_blif(best.circuit, args.out)
        print(f"wrote approximate design for thr={min(result.designs):.0%} to {args.out}")
    return 0


def _cmd_table1(args) -> int:
    print(f"{'Name':8s} {'I/O':>7s} {'Area(um2)':>10s} {'Power(uW)':>10s} {'Delay(ns)':>10s}")
    for name in BENCHMARK_ORDER:
        bench = get_benchmark(name)
        circuit = bench.factory()
        metrics = evaluate_design(circuit, match_macros=False,
                                  n_activity_samples=args.samples)
        io = f"{circuit.n_inputs}/{circuit.n_outputs}"
        print(f"{bench.name:8s} {io:>7s} {metrics.area_um2:10.1f} "
              f"{metrics.power_uw:10.1f} {metrics.delay_ns:10.2f}")
    return 0


def _cmd_lint(args) -> int:
    # Deferred import: the analysis package is pure tooling and the
    # run/table1/compare paths should not pay for loading it.
    from .analysis.linter import main as lint_main

    lint_args = list(args.paths)
    if args.list_rules:
        lint_args.append("--list-rules")
    if args.no_shard_audit:
        lint_args.append("--no-shard-audit")
    return lint_main(lint_args)


def _cmd_compare(args) -> int:
    circuit = _load_circuit(args)
    config = _config(args)
    from dataclasses import replace

    config = replace(config, threshold=max(args.thresholds))
    base = evaluate_design(circuit, match_macros=False,
                           n_activity_samples=2048)
    token = CancelToken()
    guard = ShutdownGuard(token)
    try:
        with guard:
            blasys = explore(circuit, config,
                             context=RunContext(cancel=token))
            salsa = run_salsa(circuit, config)
    except ServiceShutdown:
        return _interrupted(guard, config)
    print(f"{circuit.name}: baseline {base.area_um2:.1f} um2")
    for thr in args.thresholds:
        cols = []
        for res, label in ((blasys, "BLASYS"), (salsa, "SALSA")):
            point = res.best_point(thr)
            if point is None or point.iteration == 0:
                cols.append(f"{label} 0.0%")
                continue
            realized = res.realize(point)
            m = evaluate_design(realized, match_macros=False,
                                n_activity_samples=2048)
            saving = 100.0 * (1 - m.area_um2 / base.area_um2)
            cols.append(f"{label} {saving:5.1f}%")
        print(f"  thr={thr:>5.0%}: " + "  ".join(cols))
    return 0


# -- service mode ---------------------------------------------------------

def _cmd_serve(args) -> int:
    # Deferred import: serving pulls in socketserver/threading machinery
    # the one-shot commands never need.
    from .service import serve

    return serve(
        args.socket,
        args.journal,
        max_queue=args.max_queue,
        max_memory_mb=args.max_memory_mb,
        max_concurrent=args.max_concurrent,
        cache_dir=args.cache_dir,
        max_pool_workers=args.pool_workers,
        checkpoint_every=args.checkpoint_every,
        drain_on_term=args.drain_on_term,
        quiet=args.quiet,
    )


def _client(args):
    from .service import ServiceClient

    return ServiceClient(args.socket, timeout=args.timeout)


def _print_job(record) -> None:
    line = f"{record.job_id}  {record.state:9s}  {record.spec.name}"
    if record.resumed:
        line += "  [resumed]"
    if record.error:
        line += f"  ({record.error})"
    print(line)
    if record.trajectory:
        last = record.trajectory[-1]
        print(
            f"  {len(record.trajectory)} trajectory points, "
            f"{record.n_evaluations} evaluations, "
            f"final qor={last[3]:.6g} est_area={last[4]:.6g}"
        )


def _cmd_submit(args) -> int:
    from .service import JobSpec

    if args.blif:
        with open(args.blif) as fh:
            blif_text = fh.read()
    else:
        blif_text = None
    config = {
        key: value
        for key, value in (
            ("max_inputs", args.k),
            ("max_outputs", args.m),
            ("n_samples", args.samples),
            ("strategy", args.strategy),
            ("weight_mode", args.weights),
            ("seed", args.seed),
            ("threshold", args.threshold),
            ("jobs", args.jobs),
            ("shard_jobs", args.shard_jobs),
            ("chunk_words", args.chunk_words),
            ("chunk_budget_mb", args.chunk_budget_mb),
            ("chunk_cache_chunks", args.chunk_cache_chunks),
            ("engine", args.engine),
        )
        if value is not None
    }
    spec = JobSpec(
        bench=args.bench, blif=blif_text,
        name=args.name or args.bench or args.blif or "",
        deadline_s=args.deadline, config=config,
    )
    client = _client(args)
    job_id = client.submit(spec)
    print(f"submitted {job_id}")
    if args.wait:
        record = client.wait(job_id, timeout=args.timeout)
        _print_job(record)
        return 0 if record.state == "done" else 1
    return 0


def _cmd_jobs(args) -> int:
    records = _client(args).list_jobs()
    if not records:
        print("no jobs")
        return 0
    for record in records:
        _print_job(record)
    return 0


def _cmd_job(args) -> int:
    client = _client(args)
    if args.cancel:
        record = client.cancel(args.job_id)
    elif args.wait:
        record = client.wait(args.job_id, timeout=args.timeout)
    else:
        record = client.status(args.job_id)
    _print_job(record)
    return 0 if record.state in ("done", "queued", "running") else 1


def _cmd_shutdown(args) -> int:
    _client(args).shutdown(drain=args.drain)
    print("shutdown requested" + (" (draining)" if args.drain else ""))
    return 0


def _add_client_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--socket", required=True,
                   help="Unix socket of the running blasys serve daemon")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-request socket timeout in seconds")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blasys",
        description="BLASYS reproduction: BMF-based approximate logic synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the BLASYS flow on a circuit")
    _add_common(p_run)
    p_run.add_argument("--out", help="write the tightest-threshold design (.blif/.v)")
    p_run.set_defaults(fn=_cmd_run)

    p_t1 = sub.add_parser("table1", help="accurate-design metrics (Table 1)")
    p_t1.add_argument("--samples", type=int, default=2048)
    p_t1.set_defaults(fn=_cmd_table1)

    p_cmp = sub.add_parser("compare", help="BLASYS vs SALSA (Table 3)")
    _add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_lint = sub.add_parser(
        "lint",
        help="contract linter: determinism/aliasing/pickle-safety rules "
             "(DESIGN.md 'Static contracts')",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    p_lint.add_argument("--no-shard-audit", action="store_true",
                        help="skip the import-based shard payload audit")
    p_lint.set_defaults(fn=_cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="run the exploration service daemon (DESIGN.md 'Service')",
    )
    p_serve.add_argument("--socket", required=True,
                         help="Unix socket path to listen on")
    p_serve.add_argument("--journal", required=True,
                         help="journal directory: job log, per-job "
                              "checkpoints, shared profile cache; restart "
                              "on the same directory to recover unfinished "
                              "jobs")
    p_serve.add_argument("--max-queue", type=int, default=8,
                         help="admission bound on queued+running jobs")
    p_serve.add_argument("--max-concurrent", type=int, default=1,
                         help="jobs explored concurrently")
    p_serve.add_argument("--max-memory-mb", type=float, default=0.0,
                         help="admission bound on the summed sample-matrix "
                              "estimate of admitted jobs (0 = unbounded)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="shared profile cache directory (default: "
                              "<journal>/cache; '' disables)")
    p_serve.add_argument("--pool-workers", type=int, default=0,
                         help="total shard-pool worker budget across jobs "
                              "(0 = unbounded; jobs beyond the budget run "
                              "their scans in-process)")
    p_serve.add_argument("--checkpoint-every", type=int, default=1,
                         help="per-job checkpoint commit period")
    p_serve.add_argument("--drain-on-term", action="store_true",
                         help="on SIGTERM finish queued jobs instead of "
                              "checkpointing in-flight ones")
    p_serve.add_argument("--quiet", action="store_true")
    p_serve.set_defaults(fn=_cmd_serve)

    p_sub = sub.add_parser("submit", help="submit a job to a running service")
    _add_client_common(p_sub)
    p_sub.add_argument("--bench",
                       help=f"benchmark name ({', '.join(BENCHMARK_ORDER)})")
    p_sub.add_argument("--blif", help="BLIF file to upload inline")
    p_sub.add_argument("--name", help="display label (default: circuit)")
    p_sub.add_argument("--deadline", type=float, default=None,
                       help="wall-clock budget in seconds once running")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the job reaches a terminal state")
    p_sub.add_argument("--k", type=int, default=None, help="window input budget")
    p_sub.add_argument("--m", type=int, default=None, help="window output budget")
    p_sub.add_argument("--samples", type=int, default=None)
    p_sub.add_argument("--strategy", choices=list(STRATEGIES), default=None)
    p_sub.add_argument("--weights", choices=["uniform", "significance"],
                       default=None)
    p_sub.add_argument("--seed", type=int, default=None)
    p_sub.add_argument("--threshold", type=float, default=None,
                       help="error threshold bounding the search")
    p_sub.add_argument("--jobs", type=int, default=None)
    p_sub.add_argument("--shard-jobs", type=int, default=None)
    p_sub.add_argument("--chunk-words", type=int, default=None)
    p_sub.add_argument("--chunk-budget-mb", type=float, default=None)
    p_sub.add_argument("--chunk-cache-chunks", type=int, default=None)
    p_sub.add_argument("--engine", choices=["compiled", "reference"],
                       default=None)
    p_sub.set_defaults(fn=_cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list jobs on a running service")
    _add_client_common(p_jobs)
    p_jobs.set_defaults(fn=_cmd_jobs)

    p_job = sub.add_parser("job", help="inspect/wait/cancel one job")
    _add_client_common(p_job)
    p_job.add_argument("job_id")
    p_job.add_argument("--wait", action="store_true",
                       help="block until the job reaches a terminal state")
    p_job.add_argument("--cancel", action="store_true",
                       help="request cooperative cancellation")
    p_job.set_defaults(fn=_cmd_job)

    p_down = sub.add_parser("shutdown", help="stop a running service")
    _add_client_common(p_down)
    p_down.add_argument("--drain", action="store_true",
                        help="finish queued jobs before stopping (default: "
                             "checkpoint in-flight jobs for the next start)")
    p_down.set_defaults(fn=_cmd_shutdown)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
