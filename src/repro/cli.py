"""Command-line interface: run BLASYS flows from a shell.

Examples::

    blasys run --bench mult8 --thresholds 0.05 0.25
    blasys run --blif mydesign.blif --thresholds 0.1 --out approx.blif
    blasys table1
    blasys compare --bench adder32 --thresholds 0.05 0.25   # vs SALSA
    blasys lint                # contract lint over the shipped package
    blasys lint src tests      # explicit paths
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import BENCHMARK_ORDER, get_benchmark
from .baselines import run_salsa
from .circuit import read_blif, write_blif, write_verilog
from .core.explorer import ExplorerConfig, explore
from .flow import run_blasys
from .synth import evaluate_design


def _load_circuit(args):
    if args.bench:
        return get_benchmark(args.bench).factory()
    if args.blif:
        return read_blif(args.blif)
    raise SystemExit("provide --bench NAME or --blif FILE")


def _config(args) -> ExplorerConfig:
    return ExplorerConfig(
        max_inputs=args.k,
        max_outputs=args.m,
        n_samples=args.samples,
        strategy=args.strategy,
        weight_mode=args.weights,
        seed=args.seed,
        jobs=args.jobs,
        shard_jobs=args.shard_jobs,
        chunk_cache_chunks=args.chunk_cache_chunks,
        cache_dir=args.cache_dir,
        engine=args.engine,
        chunk_words=args.chunk_words,
        chunk_budget_mb=args.chunk_budget_mb,
        sanitize=True if args.sanitize else None,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
        faults=args.faults,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--bench", help=f"benchmark name ({', '.join(BENCHMARK_ORDER)})")
    p.add_argument("--blif", help="path to a combinational BLIF file")
    p.add_argument("--thresholds", type=float, nargs="+", default=[0.05],
                   help="average-relative-error thresholds")
    p.add_argument("--k", type=int, default=10, help="window input budget")
    p.add_argument("--m", type=int, default=10, help="window output budget")
    p.add_argument("--samples", type=int, default=4096,
                   help="Monte-Carlo samples during exploration")
    p.add_argument("--strategy", choices=["full", "lazy"], default="lazy")
    # "significance" is the paper's WQoR flow (§3.2) and the ExplorerConfig
    # default; "uniform" is Figure 4's control arm.
    p.add_argument("--weights", choices=["uniform", "significance"],
                   default="significance", help="BMF QoR weighting (§3.2)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for profiling and, unless "
                        "--shard-jobs overrides it, streaming shard scans "
                        "(0 = all cores)")
    p.add_argument("--shard-jobs", type=int, default=None,
                   help="worker processes for the streaming engine's "
                        "chunk-sharded candidate scans (default: follow "
                        "--jobs; 0 = all cores; requires --chunk-words or "
                        "--chunk-budget-mb; trajectories stay byte-identical "
                        "for any worker count)")
    p.add_argument("--chunk-cache-chunks", type=int, default=0,
                   help="cone-epoch chunk-cache capacity: cached per-chunk committed "
                        "base slices reused across iterations (0 disables; "
                        "each slice costs up to 8*n_nodes*chunk_words bytes "
                        "per process)")
    p.add_argument("--cache-dir",
                   help="persistent profiling cache directory; warm runs "
                        "skip factorization and variant synthesis")
    p.add_argument("--engine", choices=["compiled", "reference"],
                   default="compiled",
                   help="candidate-evaluation engine (trajectories are "
                        "byte-identical; 'reference' is the interpreted "
                        "oracle)")
    p.add_argument("--chunk-words", type=int, default=None,
                   help="streaming execution: packed words per pattern-axis "
                        "chunk (bounds sample-matrix memory; trajectories "
                        "stay byte-identical to resident execution)")
    p.add_argument("--chunk-budget-mb", type=float, default=None,
                   help="auto-pick --chunk-words from a sample-matrix "
                        "memory budget in MB (resident when it already fits)")
    p.add_argument("--sanitize", action="store_true",
                   help="runtime contract sanitizer: freeze cache-held "
                        "arrays, assert tail-bit masks, audit shard "
                        "payloads (same as REPRO_SANITIZE=1; trajectories "
                        "are unchanged — it only adds tripwires)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   help="per-attempt wall-clock bound in seconds for "
                        "supervised pool work; a hung worker is timed out, "
                        "the pool rebuilt and the item retried (default: "
                        "wait forever)")
    p.add_argument("--shard-retries", type=int, default=2,
                   help="pool re-submissions per failed shard/task before "
                        "it falls back to in-process execution (results "
                        "are byte-identical either way)")
    p.add_argument("--faults", default=None,
                   help="deterministic fault-injection spec for chaos "
                        "testing, e.g. 'crash:shard=0,attempt=0,scan=0;"
                        "pool:scan=1' (same as REPRO_FAULTS; grammar in "
                        "DESIGN.md 'Fault tolerance')")
    p.add_argument("--checkpoint", default=None,
                   help="write an atomic exploration checkpoint to this "
                        "path every --checkpoint-every committed "
                        "iterations")
    p.add_argument("--checkpoint-every", type=int, default=1,
                   help="commit period of checkpoint writes")
    p.add_argument("--resume", default=None,
                   help="resume exploration from this checkpoint; the "
                        "final trajectory is byte-identical to an "
                        "uninterrupted run (the checkpoint must match the "
                        "circuit and search-defining flags)")


def _cmd_run(args) -> int:
    circuit = _load_circuit(args)
    result = run_blasys(circuit, thresholds=args.thresholds, config=_config(args))
    print(result.summary())
    if args.out and result.designs:
        best = result.designs[min(result.designs)]
        if args.out.endswith(".v"):
            write_verilog(best.circuit, args.out)
        else:
            write_blif(best.circuit, args.out)
        print(f"wrote approximate design for thr={min(result.designs):.0%} to {args.out}")
    return 0


def _cmd_table1(args) -> int:
    print(f"{'Name':8s} {'I/O':>7s} {'Area(um2)':>10s} {'Power(uW)':>10s} {'Delay(ns)':>10s}")
    for name in BENCHMARK_ORDER:
        bench = get_benchmark(name)
        circuit = bench.factory()
        metrics = evaluate_design(circuit, match_macros=False,
                                  n_activity_samples=args.samples)
        io = f"{circuit.n_inputs}/{circuit.n_outputs}"
        print(f"{bench.name:8s} {io:>7s} {metrics.area_um2:10.1f} "
              f"{metrics.power_uw:10.1f} {metrics.delay_ns:10.2f}")
    return 0


def _cmd_lint(args) -> int:
    # Deferred import: the analysis package is pure tooling and the
    # run/table1/compare paths should not pay for loading it.
    from .analysis.linter import main as lint_main

    lint_args = list(args.paths)
    if args.list_rules:
        lint_args.append("--list-rules")
    if args.no_shard_audit:
        lint_args.append("--no-shard-audit")
    return lint_main(lint_args)


def _cmd_compare(args) -> int:
    circuit = _load_circuit(args)
    config = _config(args)
    from dataclasses import replace

    config = replace(config, threshold=max(args.thresholds))
    base = evaluate_design(circuit, match_macros=False,
                           n_activity_samples=2048)
    blasys = explore(circuit, config)
    salsa = run_salsa(circuit, config)
    print(f"{circuit.name}: baseline {base.area_um2:.1f} um2")
    for thr in args.thresholds:
        cols = []
        for res, label in ((blasys, "BLASYS"), (salsa, "SALSA")):
            point = res.best_point(thr)
            if point is None or point.iteration == 0:
                cols.append(f"{label} 0.0%")
                continue
            realized = res.realize(point)
            m = evaluate_design(realized, match_macros=False,
                                n_activity_samples=2048)
            saving = 100.0 * (1 - m.area_um2 / base.area_um2)
            cols.append(f"{label} {saving:5.1f}%")
        print(f"  thr={thr:>5.0%}: " + "  ".join(cols))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blasys",
        description="BLASYS reproduction: BMF-based approximate logic synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the BLASYS flow on a circuit")
    _add_common(p_run)
    p_run.add_argument("--out", help="write the tightest-threshold design (.blif/.v)")
    p_run.set_defaults(fn=_cmd_run)

    p_t1 = sub.add_parser("table1", help="accurate-design metrics (Table 1)")
    p_t1.add_argument("--samples", type=int, default=2048)
    p_t1.set_defaults(fn=_cmd_table1)

    p_cmp = sub.add_parser("compare", help="BLASYS vs SALSA (Table 3)")
    _add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_lint = sub.add_parser(
        "lint",
        help="contract linter: determinism/aliasing/pickle-safety rules "
             "(DESIGN.md 'Static contracts')",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    p_lint.add_argument("--no-shard-audit", action="store_true",
                        help="skip the import-based shard payload audit")
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
