"""Algebraic normal form (Reed–Muller) synthesis.

Two-level AND-OR covers are pathological for parity-like functions: an
n-input XOR needs ``2**(n-1)`` cubes.  Arithmetic circuits — the BLASYS
benchmark set — are full of such functions, and an industrial synthesis
flow (the paper's Synopsys DC) recovers them as XOR trees during multi-level
optimization.  This module provides the equivalent capability: the ANF
(XOR of AND-terms) of a truth table via the GF(2) Möbius transform, a cost
model, and gate construction, so each single-output function can be built
in whichever of SOP/ANF form maps smaller.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import SynthesisError
from ..circuit.builder import CircuitBuilder

#: Area of XOR2 relative to AND2 in the default library; used to compare
#: ANF cost against SOP cost in equivalent "AND2 units".
XOR_COST_RATIO = 1.8


def anf_coefficients(table: np.ndarray) -> np.ndarray:
    """GF(2) Möbius transform: truth table -> ANF coefficient vector.

    Coefficient at index ``s`` multiplies the monomial ``AND(x_i for i in
    bits(s))`` (index 0 is the constant term).
    """
    table = np.asarray(table, dtype=bool)
    n = table.shape[0]
    if n == 0 or n & (n - 1):
        raise SynthesisError(f"table length {n} is not a power of two")
    k = n.bit_length() - 1
    coeff = table.copy()
    for i in range(k):
        step = 1 << i
        view = coeff.reshape(-1, 2 * step)
        view[:, step:] ^= view[:, :step]
    return coeff


def anf_terms(table: np.ndarray) -> List[int]:
    """Monomial masks with nonzero ANF coefficient (mask 0 = constant 1)."""
    return [int(s) for s in np.nonzero(anf_coefficients(table))[0]]


def anf_cost(terms: Sequence[int]) -> float:
    """Mapped-cost estimate of an ANF netlist, in AND2-equivalent units.

    Each monomial of ``p`` literals needs ``p - 1`` AND2s; the ``t`` terms
    need ``t - 1`` XOR2s (weighted by their area ratio).
    """
    if not terms:
        return 0.0
    and_cost = sum(max(bin(t).count("1") - 1, 0) for t in terms)
    xor_cost = XOR_COST_RATIO * max(len(terms) - 1, 0)
    return and_cost + xor_cost


def sop_cost(n_literals: int, n_cubes: int) -> float:
    """Mapped-cost estimate of an AND-OR cover in AND2-equivalent units."""
    and_cost = max(n_literals - n_cubes, 0)  # p-literal cube = p-1 AND2s
    or_cost = max(n_cubes - 1, 0)
    return and_cost + or_cost


def anf_to_gates(
    builder: CircuitBuilder, terms: Sequence[int], inputs: Sequence[int]
) -> int:
    """Instantiate an ANF as AND monomials feeding one XOR; returns the
    output signal.  An empty term list yields constant 0."""
    if not terms:
        return builder.const(False)
    parts = []
    for mask in terms:
        lits = [inputs[i] for i in range(len(inputs)) if (mask >> i) & 1]
        if not lits:
            parts.append(builder.const(True))
        elif len(lits) == 1:
            parts.append(lits[0])
        else:
            parts.append(builder.and_(*lits))
    if len(parts) == 1:
        return parts[0]
    return builder.xor_(*parts)
