"""Sum-of-products covers in positional-cube notation.

A :class:`Cube` over ``k`` inputs is a pair of integer bitmasks:

* ``mask`` — bit ``i`` set means input ``i`` appears as a literal;
* ``value`` — for masked positions, the required input polarity.

A cube covers minterm ``r`` iff ``(r & mask) == value``.  A :class:`Cover`
is a list of cubes implementing the union of their minterm sets; it is the
exchange format between the two-level minimizers (:mod:`repro.synth.quine`,
:mod:`repro.synth.espresso`) and gate-level construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import SynthesisError


@dataclass(frozen=True)
class Cube:
    """One product term; see module docstring for encoding."""

    mask: int
    value: int

    def __post_init__(self) -> None:
        if self.value & ~self.mask:
            raise SynthesisError(
                f"cube value {self.value:#x} sets bits outside mask {self.mask:#x}"
            )

    @property
    def n_literals(self) -> int:
        return bin(self.mask).count("1")

    def covers(self, minterms: np.ndarray) -> np.ndarray:
        """Boolean mask over a minterm index array."""
        m = np.asarray(minterms)
        return (m & self.mask) == self.value

    def covers_one(self, minterm: int) -> bool:
        return (minterm & self.mask) == self.value

    def contains_cube(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is covered by ``self``."""
        if self.mask & ~other.mask:
            return False  # self constrains an input other leaves free
        return (other.value & self.mask) == self.value

    def without_literal(self, i: int) -> "Cube":
        """Copy of the cube with input ``i``'s literal raised (removed)."""
        bit = 1 << i
        return Cube(self.mask & ~bit, self.value & ~bit)

    def literals(self) -> List[Tuple[int, bool]]:
        """(input index, polarity) pairs; polarity True = positive literal."""
        out = []
        m = self.mask
        i = 0
        while m:
            if m & 1:
                out.append((i, bool((self.value >> i) & 1)))
            m >>= 1
            i += 1
        return out

    def to_string(self, k: int) -> str:
        """Espresso-style text (input 0 leftmost): '1', '0' or '-' per input."""
        chars = []
        for i in range(k):
            if not (self.mask >> i) & 1:
                chars.append("-")
            else:
                chars.append("1" if (self.value >> i) & 1 else "0")
        return "".join(chars)

    @staticmethod
    def from_string(text: str) -> "Cube":
        mask = value = 0
        for i, ch in enumerate(text):
            if ch == "-":
                continue
            mask |= 1 << i
            if ch == "1":
                value |= 1 << i
            elif ch != "0":
                raise SynthesisError(f"bad cube character {ch!r}")
        return Cube(mask, value)

    @staticmethod
    def from_minterm(minterm: int, k: int) -> "Cube":
        full = (1 << k) - 1
        return Cube(full, minterm & full)


class Cover:
    """An ordered list of cubes over ``k`` inputs."""

    def __init__(self, k: int, cubes: Iterable[Cube] = ()) -> None:
        if k < 0:
            raise SynthesisError("negative input count")
        self.k = k
        self.cubes: List[Cube] = list(cubes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    @property
    def n_literals(self) -> int:
        """Total literal count — the classic two-level cost function."""
        return sum(c.n_literals for c in self.cubes)

    def covers(self, minterms: np.ndarray) -> np.ndarray:
        """Boolean coverage mask over a minterm index array."""
        m = np.asarray(minterms)
        out = np.zeros(m.shape, dtype=bool)
        for cube in self.cubes:
            out |= cube.covers(m)
        return out

    def evaluate(self) -> np.ndarray:
        """Explicit truth table (length ``2**k``) of the cover."""
        idx = np.arange(1 << self.k, dtype=np.int64)
        return self.covers(idx)

    def implements(self, on_set: np.ndarray, dc_set: np.ndarray = None) -> bool:
        """Check the cover equals ``on_set`` outside the optional DC set."""
        table = self.evaluate()
        on = np.asarray(on_set, dtype=bool)
        if dc_set is None:
            return bool(np.array_equal(table, on))
        dc = np.asarray(dc_set, dtype=bool)
        return bool(np.array_equal(table[~dc], on[~dc]))

    def to_strings(self) -> List[str]:
        return [c.to_string(self.k) for c in self.cubes]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cover(k={self.k}, cubes={len(self.cubes)}, lits={self.n_literals})"


def cover_from_minterms(k: int, minterms: Sequence[int]) -> Cover:
    """The trivial cover: one full cube per minterm."""
    return Cover(k, [Cube.from_minterm(m, k) for m in minterms])


def on_off_dc_split(
    table: np.ndarray, dc: np.ndarray = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a single-output truth table into (ON, OFF, DC) minterm indices."""
    table = np.asarray(table, dtype=bool)
    n = table.shape[0]
    dc_mask = (
        np.zeros(n, dtype=bool) if dc is None else np.asarray(dc, dtype=bool)
    )
    idx = np.arange(n, dtype=np.int64)
    on = idx[table & ~dc_mask]
    off = idx[~table & ~dc_mask]
    dcs = idx[dc_mask]
    return on, off, dcs
