"""Exact two-level minimization (Quine–McCluskey + exact cover).

Exponential in the input count; intended for functions of up to ~8 inputs.
The test suite uses it as the gold standard the heuristic espresso engine is
measured against, and the technology mapper uses it for small LUT lowering
where exactness is cheap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import SynthesisError
from .sop import Cover, Cube, on_off_dc_split

#: Refuse exact minimization above this input count.
MAX_EXACT_INPUTS = 10


def prime_implicants(k: int, on: Sequence[int], dc: Sequence[int]) -> List[Cube]:
    """All prime implicants of the function via iterative cube merging."""
    care = set(int(m) for m in on) | set(int(m) for m in dc)
    if not care:
        return []
    current: Set[Tuple[int, int]] = {((1 << k) - 1, m) for m in care}
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        by_mask = {}
        # Sorted walk so by_mask's per-mask value lists (and dict
        # insertion order) never depend on set iteration history; the
        # merge results below land in sets either way.
        for mask, value in sorted(current):
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            vset = set(values)
            for value in values:
                for i in range(k):
                    bit = 1 << i
                    if not mask & bit:
                        continue
                    partner = value ^ bit
                    if partner in vset:
                        merged.add((mask & ~bit, value & ~bit))
                        used.add((mask, value))
                        used.add((mask, partner))
        primes |= current - used
        current = merged
    return [Cube(mask, value) for mask, value in sorted(primes)]


def _exact_cover(
    primes: List[Cube], on: np.ndarray
) -> List[Cube]:
    """Minimum-cube cover of the ON-set by branch and bound.

    Cost is (cube count, literal count) lexicographically, matching the
    espresso objective.  Essential primes are extracted first; the residue
    is solved by depth-first search with a running best bound.
    """
    if on.size == 0:
        return []
    coverage = np.stack([p.covers(on) for p in primes])  # (P, N)

    chosen: List[int] = []
    remaining = np.ones(on.size, dtype=bool)

    # Essential primes: an ON minterm covered by exactly one prime.
    counts = coverage.sum(axis=0)
    essential_idx = set()
    for col in np.nonzero(counts == 1)[0]:
        essential_idx.add(int(np.nonzero(coverage[:, col])[0][0]))
    for pi in sorted(essential_idx):
        chosen.append(pi)
        remaining &= ~coverage[pi]

    candidates = [
        i for i in range(len(primes)) if i not in essential_idx
    ]
    best: List[Optional[List[int]]] = [None]
    best_cost = [(len(primes) + 1, 0)]

    def cost_of(sel: List[int]) -> Tuple[int, int]:
        return (
            len(sel) + len(chosen),
            sum(primes[i].n_literals for i in sel + chosen),
        )

    def dfs(sel: List[int], rem: np.ndarray) -> None:
        if not rem.any():
            c = cost_of(sel)
            if c < best_cost[0]:
                best_cost[0] = c
                best[0] = list(sel)
            return
        if len(sel) + len(chosen) + 1 > best_cost[0][0]:
            return
        # Branch on the uncovered minterm with the fewest covering primes.
        rem_cols = np.nonzero(rem)[0]
        col_counts = coverage[np.ix_(candidates, rem_cols)].sum(axis=0)
        target = rem_cols[int(np.argmin(col_counts))]
        for pi in candidates:
            if coverage[pi, target] and pi not in sel:
                dfs(sel + [pi], rem & ~coverage[pi])

    dfs([], remaining)
    if best[0] is None:
        return [primes[i] for i in chosen]
    return [primes[i] for i in sorted(chosen + best[0])]


def quine_mccluskey(
    table: np.ndarray, dc: Optional[np.ndarray] = None
) -> Cover:
    """Exact minimum cover of a single-output truth table.

    Args:
        table: Boolean array of length ``2**k`` (``k <= MAX_EXACT_INPUTS``).
        dc: Optional don't-care mask.

    Returns:
        A minimum-cube (then minimum-literal) :class:`Cover`.
    """
    table = np.asarray(table, dtype=bool)
    n = table.shape[0]
    if n == 0 or n & (n - 1):
        raise SynthesisError(f"table length {n} is not a power of two")
    k = n.bit_length() - 1
    if k > MAX_EXACT_INPUTS:
        raise SynthesisError(
            f"exact minimization limited to {MAX_EXACT_INPUTS} inputs, got {k}"
        )
    on, off, dcs = on_off_dc_split(table, dc)
    if on.size == 0:
        return Cover(k, [])
    if off.size == 0:
        return Cover(k, [Cube(0, 0)])
    primes = prime_implicants(k, on.tolist(), dcs.tolist())
    return Cover(k, _exact_cover(primes, on))
