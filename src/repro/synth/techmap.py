"""Technology mapping: generic gate networks onto the standard-cell library.

The mapper runs in three stages:

1. **Lowering** — n-ary gates are decomposed into trees no wider than the
   library's widest matching cell; XOR chains become XOR2 trees.
2. **Macro matching** — structural patterns for full/half adders and
   AOI21/OAI21 are covered by their macro cells when every internal node of
   the pattern is private to it.  Arithmetic circuits (the BLASYS benchmark
   set) are dominated by adder cells after this pass, which is what keeps
   the area/delay model in the same regime as the paper's industrial flow.
3. **1:1 mapping** — every remaining gate maps directly to its cell.

The result is a :class:`MappedNetlist`: cell instances over the lowered
circuit's node ids (used as net ids), plus the lowered circuit itself so
that timing and power analysis can re-simulate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from ..circuit.builder import CircuitBuilder
from ..circuit.gate import Op
from ..circuit.graph import fanout_lists
from ..circuit.netlist import Circuit
from .library import Cell, LIB65, Library


@dataclass(frozen=True)
class CellInst:
    """One placed cell: which nets it reads and which nets it produces."""

    cell: Cell
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]


class MappedNetlist:
    """A technology-mapped design: cell instances over a lowered circuit."""

    def __init__(
        self, circuit: Circuit, instances: Sequence[CellInst], library: Library
    ) -> None:
        self.circuit = circuit
        self.instances = list(instances)
        self.library = library

    @property
    def area(self) -> float:
        """Total cell area in µm²."""
        return sum(inst.cell.area for inst in self.instances)

    @property
    def n_cells(self) -> int:
        return len(self.instances)

    @property
    def leakage_nw(self) -> float:
        return sum(inst.cell.leakage for inst in self.instances)

    def cell_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for inst in self.instances:
            hist[inst.cell.name] = hist.get(inst.cell.name, 0) + 1
        return hist

    def to_circuit(self, name: Optional[str] = None) -> Circuit:
        """Reconstruct a generic gate netlist from the cell instances.

        Every cell is expanded back into primitive gates according to its
        function (FA/HA macros into their adder logic, AOI/OAI into their
        and-or-invert forms).  The result must be functionally equivalent
        to the mapped circuit — the test suite uses this to *prove* the
        mapper correct, macros and pin orders included.
        """
        builder = CircuitBuilder(name or f"{self.circuit.name}_unmapped")
        sig: Dict[int, int] = {}
        for nid in self.circuit.inputs:
            sig[nid] = builder.input(self.circuit.node(nid).name or f"i{nid}")
        for inst in self.instances:
            ins = [sig[f] for f in inst.inputs]
            outs = _cell_function(builder, inst.cell.name, ins)
            for net, s in zip(inst.outputs, outs):
                sig[net] = s
        for port in self.circuit.outputs:
            driver = sig.get(port.node)
            if driver is None:  # output tied to an unmapped const/input net
                node = self.circuit.node(port.node)
                if node.op is Op.CONST0:
                    driver = builder.const(False)
                elif node.op is Op.CONST1:
                    driver = builder.const(True)
                else:  # pragma: no cover - mapping always covers gates
                    raise SynthesisError(f"net {port.node} has no driver")
                sig[port.node] = driver
            builder.output(port.name, driver)
        out = builder.build(prune=True)
        out.attrs = dict(self.circuit.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MappedNetlist(cells={self.n_cells}, area={self.area:.1f}um2)"
        )


def _cell_function(
    builder: CircuitBuilder, cell_name: str, ins: List[int]
) -> List[int]:
    """Primitive-gate semantics of a library cell; returns output signals."""
    if cell_name == "INV":
        return [builder.not_(ins[0])]
    if cell_name == "BUF":
        return [ins[0]]
    if cell_name.startswith("NAND"):
        return [builder.nand_(*ins)]
    if cell_name.startswith("NOR"):
        return [builder.nor_(*ins)]
    if cell_name.startswith("AND"):
        return [builder.and_(*ins)]
    if cell_name.startswith("OR"):
        return [builder.or_(*ins)]
    if cell_name == "XOR2":
        return [builder.xor_(*ins)]
    if cell_name == "XNOR2":
        return [builder.xnor_(*ins)]
    if cell_name == "MUX2":
        return [builder.mux(*ins)]
    if cell_name == "AOI21":
        a, b, c = ins
        return [builder.nor_(builder.and_(a, b), c)]
    if cell_name == "OAI21":
        a, b, c = ins
        return [builder.nand_(builder.or_(a, b), c)]
    if cell_name == "HA":
        s, c = builder.half_adder(*ins)
        return [s, c]
    if cell_name == "FA":
        s, c = builder.full_adder(*ins)
        return [s, c]
    if cell_name == "TIE0":
        return [builder.const(False)]
    if cell_name == "TIE1":
        return [builder.const(True)]
    raise SynthesisError(f"no primitive semantics for cell {cell_name!r}")


# ----------------------------------------------------------------------
# Stage 1: lowering
# ----------------------------------------------------------------------

_TREE_BASES = {Op.AND: "AND", Op.OR: "OR"}
_INVERTED_BASES = {Op.NAND: "AND", Op.NOR: "OR"}


def lower_for_mapping(circuit: Circuit, library: Library = LIB65) -> Circuit:
    """Rewrite ``circuit`` so every node matches some library cell arity.

    LUT nodes are not handled here — :func:`repro.synth.synthesis.
    resynthesize` lowers them to SOP logic first.
    """
    builder = CircuitBuilder(circuit.name)
    sig: Dict[int, int] = {}

    def tree(base_op: Op, fanins: List[int], max_arity: int) -> int:
        """Balanced decomposition of an associative gate into a cell tree."""
        layer = list(fanins)
        while len(layer) > 1:
            nxt: List[int] = []
            for start in range(0, len(layer), max_arity):
                chunk = layer[start : start + max_arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                elif base_op is Op.AND:
                    nxt.append(builder._add(Op.AND, tuple(sorted(chunk))))
                elif base_op is Op.OR:
                    nxt.append(builder._add(Op.OR, tuple(sorted(chunk))))
                else:  # XOR
                    nxt.append(builder._add(Op.XOR, tuple(sorted(chunk))))
            layer = nxt
        return layer[0]

    for nid, node in enumerate(circuit.nodes):
        op = node.op
        ins = [sig[f] for f in node.fanins]
        if op is Op.INPUT:
            sig[nid] = builder.input(node.name or f"i{nid}")
        elif op is Op.CONST0:
            sig[nid] = builder.const(False)
        elif op is Op.CONST1:
            sig[nid] = builder.const(True)
        elif op is Op.BUF:
            sig[nid] = ins[0]
        elif op is Op.NOT:
            sig[nid] = builder.not_(ins[0])
        elif op in _TREE_BASES:
            arity = library.max_arity(_TREE_BASES[op])
            sig[nid] = tree(op, ins, max(2, arity))
        elif op in _INVERTED_BASES:
            arity = library.max_arity(_INVERTED_BASES[op])
            sig[nid] = builder.not_(tree(Op.AND if op is Op.NAND else Op.OR, ins, max(2, arity)))
        elif op is Op.XOR:
            sig[nid] = tree(Op.XOR, ins, 2)
        elif op is Op.XNOR:
            sig[nid] = builder.not_(tree(Op.XOR, ins, 2))
        elif op is Op.MUX:
            sig[nid] = builder.mux(*ins)
        elif op is Op.LUT:
            raise SynthesisError(
                "LUT nodes must be lowered (see synthesis.resynthesize) "
                "before technology mapping"
            )
        else:  # pragma: no cover - exhaustive over Op
            raise SynthesisError(f"unmappable op {op}")
    for port in circuit.outputs:
        builder.output(port.name, sig[port.node])
    lowered = builder.build(prune=True)
    lowered.attrs = dict(circuit.attrs)
    return lowered


# ----------------------------------------------------------------------
# Stage 2 + 3: covering
# ----------------------------------------------------------------------


def _match_full_adder(
    circuit: Circuit,
    s: int,
    fanouts: List[List[int]],
    covered: Set[int],
    po_drivers: Set[int],
) -> Optional[Tuple[Tuple[int, int, int], Tuple[int, ...], int]]:
    """Try to root a full-adder pattern at sum node ``s``.

    Expects ``s = XOR2(z, c)`` with ``z = XOR2(a, b)`` and a carry node
    ``carry = OR2(AND2(a, b), AND2(z, c))``.  Returns
    ``((a, b, c), internal_nodes, carry)`` on success.
    """
    node = circuit.node(s)
    if node.op is not Op.XOR or node.arity != 2:
        return None
    for z, c in (node.fanins, node.fanins[::-1]):
        zn = circuit.node(z)
        if zn.op is not Op.XOR or zn.arity != 2 or z in covered:
            continue
        a, b = zn.fanins
        # find the carry: an OR2 of AND2(a,b) and AND2(z,c)
        for y in fanouts[z]:
            yn = circuit.node(y)
            if yn.op is not Op.AND or yn.arity != 2 or y in covered:
                continue
            if set(yn.fanins) != {z, c}:
                continue
            for carry in fanouts[y]:
                cn = circuit.node(carry)
                if cn.op is not Op.OR or cn.arity != 2 or carry in covered:
                    continue
                x = cn.fanins[0] if cn.fanins[1] == y else cn.fanins[1]
                if x == y or x in covered:
                    continue
                xn = circuit.node(x)
                if xn.op is not Op.AND or xn.arity != 2:
                    continue
                if set(xn.fanins) != {a, b}:
                    continue
                # Privacy: z feeds only {s, y}; x and y feed only the carry.
                if any(f not in (s, y) for f in fanouts[z]) or z in po_drivers:
                    continue
                if any(f != carry for f in fanouts[x]) or x in po_drivers:
                    continue
                if any(f != carry for f in fanouts[y]) or y in po_drivers:
                    continue
                return (a, b, c), (z, x, y), carry
    return None


def _match_half_adder(
    circuit: Circuit,
    s: int,
    and_index: Dict[Tuple[int, int], int],
    covered: Set[int],
) -> Optional[Tuple[Tuple[int, int], int]]:
    """Try to root a half-adder pattern at sum node ``s`` (XOR2(a, b))."""
    node = circuit.node(s)
    if node.op is not Op.XOR or node.arity != 2:
        return None
    a, b = sorted(node.fanins)
    carry = and_index.get((a, b))
    if carry is None or carry in covered or carry == s:
        return None
    return (a, b), carry


def _match_aoi_oai(
    circuit: Circuit,
    n: int,
    fanouts: List[List[int]],
    covered: Set[int],
    po_drivers: Set[int],
) -> Optional[Tuple[str, Tuple[int, int, int], Tuple[int, ...]]]:
    """Match ``NOT(OR2(AND2(a,b), c))`` -> AOI21 or the dual -> OAI21."""
    node = circuit.node(n)
    if node.op is not Op.NOT:
        return None
    mid = node.fanins[0]
    mn = circuit.node(mid)
    if mid in covered or mn.arity != 2 or mid in po_drivers:
        return None
    if any(f != n for f in fanouts[mid]):
        return None
    if mn.op is Op.OR:
        inner_op, cell = Op.AND, "AOI21"
    elif mn.op is Op.AND:
        inner_op, cell = Op.OR, "OAI21"
    else:
        return None
    for inner, c in (mn.fanins, mn.fanins[::-1]):
        inn = circuit.node(inner)
        if inn.op is not inner_op or inn.arity != 2 or inner in covered:
            continue
        if inner in po_drivers or any(f != mid for f in fanouts[inner]):
            continue
        a, b = inn.fanins
        return cell, (a, b, c), (inner, mid)
    return None


_DIRECT_CELLS = {
    Op.NOT: "INV",
    Op.BUF: "BUF",
    Op.XOR: "XOR2",
    Op.XNOR: "XNOR2",
    Op.MUX: "MUX2",
    Op.CONST0: "TIE0",
    Op.CONST1: "TIE1",
}


def tech_map(
    circuit: Circuit,
    library: Library = LIB65,
    match_macros: bool = True,
) -> MappedNetlist:
    """Map ``circuit`` onto ``library`` cells.

    The circuit is lowered first (see :func:`lower_for_mapping`).  Returns a
    :class:`MappedNetlist` whose net ids are node ids of the lowered
    circuit.
    """
    lowered = lower_for_mapping(circuit, library)
    fanouts = fanout_lists(lowered)
    po_drivers = set(lowered.output_nodes())
    covered: Set[int] = set()
    produced: Set[int] = set()
    instances: List[CellInst] = []

    if match_macros and "FA" in library:
        # Full adders first (largest pattern), sums in reverse topo order so
        # the MSB-side carry chain is grabbed before HA can steal pieces.
        for s in range(lowered.n_nodes - 1, -1, -1):
            if s in covered:
                continue
            match = _match_full_adder(lowered, s, fanouts, covered, po_drivers)
            if match is None:
                continue
            (a, b, c), internals, carry = match
            if carry in covered:
                continue
            instances.append(CellInst(library["FA"], (a, b, c), (s, carry)))
            covered.update(internals)
            covered.update((s, carry))
            produced.update((s, carry))

    if match_macros and "HA" in library:
        and_index: Dict[Tuple[int, int], int] = {}
        for nid, node in enumerate(lowered.nodes):
            if node.op is Op.AND and node.arity == 2 and nid not in covered:
                and_index[tuple(sorted(node.fanins))] = nid
        for s in range(lowered.n_nodes - 1, -1, -1):
            if s in covered:
                continue
            match = _match_half_adder(lowered, s, and_index, covered)
            if match is None:
                continue
            (a, b), carry = match
            instances.append(CellInst(library["HA"], (a, b), (s, carry)))
            covered.update((s, carry))
            produced.update((s, carry))

    if match_macros and "AOI21" in library:
        for n in range(lowered.n_nodes - 1, -1, -1):
            if n in covered:
                continue
            match = _match_aoi_oai(lowered, n, fanouts, covered, po_drivers)
            if match is None:
                continue
            cell, (a, b, c), internals = match
            if any(i in covered for i in internals):
                continue
            instances.append(CellInst(library[cell], (a, b, c), (n,)))
            covered.update(internals)
            covered.add(n)
            produced.add(n)

    for nid, node in enumerate(lowered.nodes):
        if nid in covered or node.op is Op.INPUT:
            continue
        op = node.op
        if op in (Op.AND, Op.OR, Op.NAND, Op.NOR):
            base = {"and": "AND", "or": "OR", "nand": "NAND", "nor": "NOR"}[op.value]
            cell = library.nary(base, node.arity)
        elif op in _DIRECT_CELLS:
            cell = library[_DIRECT_CELLS[op]]
        else:  # pragma: no cover - lowering guarantees mappability
            raise SynthesisError(f"node {nid}: no cell for op {op}")
        instances.append(CellInst(cell, tuple(node.fanins), (nid,)))
        produced.add(nid)

    return MappedNetlist(lowered, _topo_sort_instances(lowered, instances), library)


def _topo_sort_instances(
    lowered: Circuit, instances: List[CellInst]
) -> List[CellInst]:
    """Order instances so every input net is produced before it is read.

    Sorting by output id is *not* sufficient: a multi-output macro (FA/HA)
    can expose a low-id output that feeds an instance whose own outputs
    have smaller ids than the macro's largest one.  Downstream consumers
    (timing analysis, :meth:`MappedNetlist.to_circuit`) rely on producer-
    before-consumer order, so build it properly with Kahn's algorithm.
    """
    producer: Dict[int, int] = {}
    for idx, inst in enumerate(instances):
        for out in inst.outputs:
            producer[out] = idx
    indeg = [0] * len(instances)
    succs: Dict[int, List[int]] = {}
    for idx, inst in enumerate(instances):
        for net in inst.inputs:
            src = producer.get(net)
            if src is not None and src != idx:
                succs.setdefault(src, []).append(idx)
                indeg[idx] += 1
    ready = sorted(i for i, d in enumerate(indeg) if d == 0)
    ordered: List[CellInst] = []
    while ready:
        idx = ready.pop(0)
        ordered.append(instances[idx])
        for nxt in succs.get(idx, ()):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if len(ordered) != len(instances):  # pragma: no cover - mapping is acyclic
        raise SynthesisError("mapped netlist contains a cycle")
    return ordered
