"""Logic synthesis substrate: two-level minimization, mapping, timing, power."""

from .sop import Cover, Cube, cover_from_minterms, on_off_dc_split
from .anf import anf_coefficients, anf_cost, anf_terms, anf_to_gates, sop_cost
from .bdd import SharedBDD, bdd_cost, bdd_to_gates, build_shared_bdd
from .espresso import EspressoOptions, espresso, espresso_multi
from .quine import prime_implicants, quine_mccluskey
from .library import Cell, DEFAULT_CLOCK_MHZ, LIB65, Library
from .techmap import CellInst, MappedNetlist, lower_for_mapping, tech_map
from .timing import TimingReport, static_timing
from .power import PowerReport, estimate_power, signal_probabilities
from .synthesis import (
    DesignMetrics,
    area_of,
    cover_to_gates,
    evaluate_design,
    resynthesize,
    synthesize_covers,
    synthesize_output,
    synthesize_outputs_shared,
    synthesize_table,
)

__all__ = [
    "Cell",
    "CellInst",
    "Cover",
    "Cube",
    "DEFAULT_CLOCK_MHZ",
    "DesignMetrics",
    "EspressoOptions",
    "LIB65",
    "Library",
    "MappedNetlist",
    "PowerReport",
    "SharedBDD",
    "TimingReport",
    "anf_coefficients",
    "anf_cost",
    "anf_terms",
    "anf_to_gates",
    "area_of",
    "bdd_cost",
    "bdd_to_gates",
    "build_shared_bdd",
    "cover_from_minterms",
    "cover_to_gates",
    "espresso",
    "espresso_multi",
    "estimate_power",
    "evaluate_design",
    "lower_for_mapping",
    "on_off_dc_split",
    "prime_implicants",
    "quine_mccluskey",
    "resynthesize",
    "signal_probabilities",
    "sop_cost",
    "static_timing",
    "synthesize_covers",
    "synthesize_output",
    "synthesize_outputs_shared",
    "synthesize_table",
    "tech_map",
]
