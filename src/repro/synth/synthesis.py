"""Top-level synthesis driver: truth tables and netlists to design metrics.

This module plays the role Synopsys Design Compiler plays in the paper's
flow (Figure 2 and §4): it turns compressor truth tables into logic,
re-optimizes approximate netlists, maps them onto the cell library and
reports area / power / delay as one :class:`DesignMetrics` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SynthesisError
from ..circuit.builder import CircuitBuilder
from ..circuit.gate import Op
from ..circuit.netlist import Circuit
from .anf import anf_cost, anf_terms, anf_to_gates, sop_cost
from .bdd import bdd_cost, bdd_to_gates, build_shared_bdd
from .espresso import EspressoOptions, espresso
from .library import DEFAULT_CLOCK_MHZ, LIB65, Library
from .power import estimate_power
from .quine import quine_mccluskey
from .sop import Cover
from .techmap import tech_map
from .timing import static_timing


@dataclass(frozen=True)
class DesignMetrics:
    """Area/power/delay summary of a mapped design.

    Attributes mirror the columns of the paper's Table 1.
    """

    area_um2: float
    power_uw: float
    delay_ns: float
    n_cells: int
    cell_histogram: Dict[str, int]

    def savings_vs(self, baseline: "DesignMetrics") -> Dict[str, float]:
        """Percentage savings of ``self`` relative to ``baseline``."""

        def pct(new: float, old: float) -> float:
            return 100.0 * (old - new) / old if old else 0.0

        return {
            "area": pct(self.area_um2, baseline.area_um2),
            "power": pct(self.power_uw, baseline.power_uw),
            "delay": pct(self.delay_ns, baseline.delay_ns),
        }


def cover_to_gates(
    builder: CircuitBuilder, cover: Cover, inputs: Sequence[int]
) -> int:
    """Instantiate a cover as AND-OR logic; returns the output signal.

    Cubes become AND gates over (possibly inverted) input literals; the
    builder's structural hashing shares identical cubes across outputs.
    """
    if len(inputs) != cover.k:
        raise SynthesisError(
            f"cover expects {cover.k} inputs, got {len(inputs)}"
        )
    terms: List[int] = []
    for cube in cover.cubes:
        lits = [
            inputs[i] if positive else builder.not_(inputs[i])
            for i, positive in cube.literals()
        ]
        if not lits:  # tautology cube
            terms.append(builder.const(True))
        elif len(lits) == 1:
            terms.append(lits[0])
        else:
            terms.append(builder.and_(*lits))
    if not terms:
        return builder.const(False)
    if len(terms) == 1:
        return terms[0]
    return builder.or_(*terms)


#: Average mapped area of one AND2-equivalent literal pair, used to put the
#: two-level cost estimates in µm² next to the BDD's mux-count bound.
_AND2_AREA = 1.8


def synthesize_output(
    builder: CircuitBuilder,
    table: np.ndarray,
    inputs: Sequence[int],
    options: EspressoOptions = EspressoOptions(),
) -> int:
    """Best-of single-output synthesis: AND-OR cover vs. Reed–Muller vs BDD.

    Minimizes the table with espresso, computes its ANF and its ROBDD, and
    instantiates whichever form has the smallest mapped-cost estimate.
    The ANF and BDD paths are what keep parity-heavy and carry-chain
    functions from exploding into exponential cube covers — the role
    multi-level optimization plays in the paper's DC-based flow.
    """
    return synthesize_outputs_shared(builder, table, inputs, options)[0]


def synthesize_outputs_shared(
    builder: CircuitBuilder,
    tables: np.ndarray,
    inputs: Sequence[int],
    options: EspressoOptions = EspressoOptions(),
) -> List[int]:
    """Multi-output synthesis with structure sharing.

    Compares, by mapped-cost estimate, (a) the best flat form per output
    (espresso SOP vs. ANF) against (b) one shared multi-rooted ROBDD
    emitted as a mux network, and builds the cheaper.  The shared BDD is
    what recovers cross-output structure such as a common carry chain.

    Returns one signal per output column.
    """
    tables = np.atleast_2d(np.asarray(tables, dtype=bool))
    if tables.shape[0] == 1:
        tables = tables.T
    m = tables.shape[1]

    flat_plans = []
    flat_total = 0.0
    for j in range(m):
        column = tables[:, j]
        cover = espresso(column, options=options)
        terms = anf_terms(column)
        cost_s = sop_cost(cover.n_literals, len(cover)) * _AND2_AREA
        cost_a = anf_cost(terms) * _AND2_AREA
        if cost_a < cost_s:
            flat_plans.append(("anf", terms, cost_a))
            flat_total += cost_a
        else:
            flat_plans.append(("sop", cover, cost_s))
            flat_total += cost_s

    bdd = build_shared_bdd(tables)
    if bdd_cost(bdd) < flat_total:
        return bdd_to_gates(builder, bdd, list(inputs))

    outs = []
    for kind, payload, _cost in flat_plans:
        if kind == "anf":
            outs.append(anf_to_gates(builder, payload, list(inputs)))
        else:
            outs.append(cover_to_gates(builder, payload, list(inputs)))
    return outs


def synthesize_covers(
    covers: Sequence[Cover],
    name: str = "synth",
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> Circuit:
    """Build a multi-output circuit from per-output covers."""
    if not covers:
        raise SynthesisError("no covers given")
    k = covers[0].k
    if any(c.k != k for c in covers):
        raise SynthesisError("covers disagree on input count")
    builder = CircuitBuilder(name)
    in_names = input_names or [f"x{i}" for i in range(k)]
    inputs = [builder.input(n) for n in in_names]
    out_names = output_names or [f"y{j}" for j in range(len(covers))]
    for cover, oname in zip(covers, out_names):
        builder.output(oname, cover_to_gates(builder, cover, inputs))
    return builder.build(prune=True)


def synthesize_table(
    table: np.ndarray,
    name: str = "synth",
    exact: bool = False,
    options: EspressoOptions = EspressoOptions(),
) -> Circuit:
    """Synthesize a ``(2**k, m)`` truth table into a gate-level circuit.

    Args:
        table: Boolean matrix; column ``j`` is output ``j``.
        exact: Use Quine–McCluskey instead of the heuristic minimizer
            (small inputs only).
    """
    table = np.atleast_2d(np.asarray(table, dtype=bool))
    if table.shape[0] == 1:
        table = table.T
    if exact:
        covers = [quine_mccluskey(table[:, j]) for j in range(table.shape[1])]
        return synthesize_covers(covers, name)
    k = int(np.log2(table.shape[0]))
    builder = CircuitBuilder(name)
    inputs = [builder.input(f"x{i}") for i in range(k)]
    outs = synthesize_outputs_shared(builder, table, inputs, options)
    for j, sig in enumerate(outs):
        builder.output(f"y{j}", sig)
    return builder.build(prune=True)


def resynthesize(
    circuit: Circuit,
    name: Optional[str] = None,
    options: EspressoOptions = EspressoOptions(),
) -> Circuit:
    """Rebuild a netlist through the builder: folds constants, shares
    structure, lowers LUT nodes to minimized SOP logic, prunes dead nodes.

    This is the cleanup pass applied to approximate netlists after window
    substitution and before technology mapping.
    """
    builder = CircuitBuilder(name or circuit.name)
    sig: Dict[int, int] = {}
    for nid, node in enumerate(circuit.nodes):
        ins = [sig[f] for f in node.fanins]
        op = node.op
        if op is Op.INPUT:
            sig[nid] = builder.input(node.name or f"i{nid}")
        elif op is Op.CONST0:
            sig[nid] = builder.const(False)
        elif op is Op.CONST1:
            sig[nid] = builder.const(True)
        elif op is Op.BUF:
            sig[nid] = ins[0]
        elif op is Op.NOT:
            sig[nid] = builder.not_(ins[0])
        elif op is Op.AND:
            sig[nid] = builder.and_(*ins)
        elif op is Op.OR:
            sig[nid] = builder.or_(*ins)
        elif op is Op.XOR:
            sig[nid] = builder.xor_(*ins)
        elif op is Op.NAND:
            sig[nid] = builder.nand_(*ins)
        elif op is Op.NOR:
            sig[nid] = builder.nor_(*ins)
        elif op is Op.XNOR:
            sig[nid] = builder.xnor_(*ins)
        elif op is Op.MUX:
            sig[nid] = builder.mux(*ins)
        elif op is Op.LUT:
            sig[nid] = synthesize_output(builder, node.table, ins, options)
        else:  # pragma: no cover - exhaustive
            raise SynthesisError(f"cannot resynthesize op {op}")
    for port in circuit.outputs:
        builder.output(port.name, sig[port.node])
    out = builder.build(prune=True)
    out.attrs = dict(circuit.attrs)
    return out


def evaluate_design(
    circuit: Circuit,
    library: Library = LIB65,
    n_activity_samples: int = 2048,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    seed: int = 0,
    match_macros: bool = True,
) -> DesignMetrics:
    """Full cost-oracle run: resynthesize, map, time, and measure power."""
    clean = resynthesize(circuit)
    mapped = tech_map(clean, library, match_macros=match_macros)
    timing = static_timing(mapped)
    rng = np.random.default_rng(seed)
    if clean.n_inputs == 0:
        power_uw = mapped.leakage_nw * 1e-3
    else:
        report = estimate_power(mapped, n_activity_samples, clock_mhz, rng)
        power_uw = report.total_uw
    return DesignMetrics(
        area_um2=mapped.area,
        power_uw=power_uw,
        delay_ns=timing.delay_ns,
        n_cells=mapped.n_cells,
        cell_histogram=mapped.cell_histogram(),
    )


def area_of(circuit: Circuit, library: Library = LIB65) -> float:
    """Cheap area-only oracle (no power simulation), used by the explorer."""
    return tech_map(resynthesize(circuit), library).area
