"""Reduced ordered BDDs and BDD-based multi-level synthesis.

Flat two-level forms (SOP covers, Reed–Muller ANF) cannot rediscover the
*shared multi-level* structure hiding in a truth table — the carry chain an
adder slice's outputs have in common, for example.  Industrial synthesis
(the paper's Synopsys DC) recovers such sharing during multi-level
optimization; this module provides the equivalent capability for truth
tables: build one reduced ordered BDD over all output columns with a shared
unique-table, then emit one 2:1 mux per BDD node.  Sub-functions shared by
several outputs are built once, exactly like logic sharing in a multi-level
netlist.

Variable order follows the window's input order, which is the natural
interleaved order for the arithmetic windows BLASYS produces; the reversed
order is also tried and the smaller DAG wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SynthesisError
from ..circuit.builder import CircuitBuilder

#: Terminal pseudo-ids.
ZERO = -1
ONE = -2


@dataclass
class SharedBDD:
    """A multi-rooted ROBDD.

    Attributes:
        nodes: Internal nodes as ``(var, lo, hi)`` triples; ids index this
            list, terminals are :data:`ZERO`/:data:`ONE`.  ``var`` is an
            input index; ``lo``/``hi`` are the cofactors for that input at
            0/1.
        roots: One node id (or terminal) per output column.
        order: The variable order used, top variable last.
    """

    nodes: List[Tuple[int, int, int]]
    roots: List[int]
    order: List[int]

    @property
    def n_internal(self) -> int:
        return len(self.nodes)


def _build(tables: np.ndarray, order: Sequence[int]) -> SharedBDD:
    """Construct the shared ROBDD by recursive cofactoring.

    ``order[level]`` is the input tested at recursion depth ``level`` (the
    top of the diagram).  The table is permuted once so that the top
    variable becomes the most significant bit of the row index; every
    recursion step then simply splits the current column in half.
    Identical sub-tables merge via a content memo and redundant tests
    (``lo == hi``) are elided, so the result is fully reduced.
    """
    n_rows, m = tables.shape
    k = n_rows.bit_length() - 1
    if sorted(order) != list(range(k)):
        raise SynthesisError("variable order must be a permutation of inputs")
    # permuted row r has order[level]'s value at bit (k - 1 - level)
    r_new = np.arange(n_rows)
    source = np.zeros(n_rows, dtype=np.int64)
    for level, var in enumerate(order):
        source |= ((r_new >> (k - 1 - level)) & 1) << var
    permuted = np.ascontiguousarray(tables[source])

    nodes: List[Tuple[int, int, int]] = []
    unique: Dict[Tuple[int, int, int], int] = {}
    memo: Dict[bytes, int] = {}

    def mk(var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = unique.get(key)
        if found is not None:
            return found
        nodes.append(key)
        unique[key] = len(nodes) - 1
        return len(nodes) - 1

    def rec(level: int, column: np.ndarray) -> int:
        if not column.any():
            return ZERO
        if column.all():
            return ONE
        key = column.tobytes() + bytes([level])
        found = memo.get(key)
        if found is not None:
            return found  # contract-ok: cache-copy -- memoized node id (int), immutable
        half = column.shape[0] // 2
        lo = rec(level + 1, column[:half])
        hi = rec(level + 1, column[half:])
        out = mk(order[level], lo, hi)
        memo[key] = out
        return out

    roots = [rec(0, np.ascontiguousarray(permuted[:, j])) for j in range(m)]
    return SharedBDD(nodes, roots, list(order))


def _candidate_orders(k: int) -> List[List[int]]:
    """Variable orders worth trying.

    Besides the two linear orders, the *interleaved* orders pair input ``i``
    with input ``i + k/2`` — the right order when the inputs are two
    operand words laid out one after the other (ripple adders and friends
    have exponential BDDs in linear order but linear-size ones
    interleaved).
    """
    orders = [list(range(k - 1, -1, -1))]
    if k > 1:
        orders.append(list(range(k)))
        half = (k + 1) // 2
        interleaved: List[int] = []
        for i in range(half):
            interleaved.append(i)
            if i + half < k:
                interleaved.append(i + half)
        orders.append(interleaved[::-1])
        orders.append(interleaved)
    return orders


def build_shared_bdd(tables: np.ndarray, try_orders: bool = True) -> SharedBDD:
    """Shared ROBDD over the columns of a ``(2**k, m)`` truth table.

    A small set of candidate variable orders is tried (see
    :func:`_candidate_orders`) and the smallest diagram wins; with
    ``try_orders`` False only the descending natural order is built.
    """
    tables = np.atleast_2d(np.asarray(tables, dtype=bool))
    if tables.shape[0] == 1:
        tables = tables.T
    n_rows = tables.shape[0]
    if n_rows == 0 or n_rows & (n_rows - 1):
        raise SynthesisError(f"table length {n_rows} is not a power of two")
    k = n_rows.bit_length() - 1
    orders = _candidate_orders(k) if try_orders else [list(range(k - 1, -1, -1))]
    best: SharedBDD = None
    for order in orders:
        built = _build(tables, order)
        if best is None or built.n_internal < best.n_internal:
            best = built
    return best


def bdd_to_gates(
    builder: CircuitBuilder, bdd: SharedBDD, inputs: Sequence[int]
) -> List[int]:
    """Emit one mux per internal node (terminals fold); returns root signals.

    Nodes are created bottom-up; the builder's mux folding turns constant
    branches into plain AND/OR/NOT gates, so simple BDDs produce simple
    logic rather than literal mux chains.
    """
    sig: Dict[int, int] = {
        ZERO: builder.const(False),
        ONE: builder.const(True),
    }
    # nodes were appended post-order (children before parents) by _build
    for nid, (var, lo, hi) in enumerate(bdd.nodes):
        sig[nid] = builder.mux(inputs[var], sig[lo], sig[hi])
    return [sig[r] for r in bdd.roots]


def bdd_cost(bdd: SharedBDD, mux_area: float = 2.88) -> float:
    """Area upper bound: every internal node one MUX2 (folding only helps)."""
    return mux_area * bdd.n_internal
