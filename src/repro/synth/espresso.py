"""Heuristic two-level minimization in the espresso style.

This is the workhorse synthesizer used to turn BMF compressor truth tables
into logic.  It follows the classic loop of the espresso algorithm —
EXPAND against the OFF-set, IRREDUNDANT, and an optional REDUCE/re-EXPAND
quality pass — but operates directly on explicit truth tables, which is the
regime BLASYS puts it in (windows have at most ~10 inputs, so the minterm
universe is at most ~1k rows).

Functions with don't-cares are supported; the SALSA baseline leans on that
to simplify under approximation don't-cares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import SynthesisError
from .sop import Cover, Cube, on_off_dc_split


@dataclass(frozen=True)
class EspressoOptions:
    """Tuning knobs for :func:`espresso`.

    Attributes:
        quality: When True, run the REDUCE / re-EXPAND refinement pass
            (slower, usually a few literals better).
        literal_order_msb_first: Expansion tries to raise high-index
            literals first; deterministic either way.
        seed: Tie-break ordering of ON-minterm processing.
    """

    quality: bool = False
    literal_order_msb_first: bool = True
    seed: int = 0


def _expand_cube(
    cube: Cube, off: np.ndarray, k: int, msb_first: bool
) -> Cube:
    """Raise as many literals of ``cube`` as possible without hitting OFF.

    Single-pass greedy: literals are visited in a fixed order and raised
    when the enlarged cube still avoids the OFF-set.  A second sweep catches
    literals that became raisable after earlier raises.
    """
    order = range(k - 1, -1, -1) if msb_first else range(k)
    changed = True
    while changed:
        changed = False
        for i in order:
            if not (cube.mask >> i) & 1:
                continue
            candidate = cube.without_literal(i)
            if off.size and candidate.covers(off).any():
                continue
            cube = candidate
            changed = True
        if cube.mask == 0:
            break
    return cube


def _irredundant(cover: List[Cube], on: np.ndarray) -> List[Cube]:
    """Drop cubes whose ON-set contribution is covered by the rest.

    Greedy in increasing order of covered ON minterms (cheap cubes are the
    most likely to be redundant).
    """
    if not cover or on.size == 0:
        return [cover[0]] if cover else []
    matrix = np.stack([c.covers(on) for c in cover])  # (n_cubes, n_on)
    counts = matrix.sum(axis=1)
    keep = np.ones(len(cover), dtype=bool)
    for idx in np.argsort(counts, kind="stable"):
        keep[idx] = False
        still = matrix[keep].any(axis=0) if keep.any() else np.zeros(on.size, bool)
        if not still.all():
            keep[idx] = True
    return [c for i, c in enumerate(cover) if keep[i]]


def _reduce_cube(cube: Cube, others_cover: np.ndarray, on: np.ndarray, k: int) -> Cube:
    """Shrink ``cube`` to the smallest cube covering its *unique* ON minterms.

    ``others_cover`` marks ON minterms already covered by other cubes.  The
    reduced cube keeps only the literals needed around its private minterms,
    giving the following re-expansion room to move in a different direction.
    """
    mine = cube.covers(on) & ~others_cover
    if not mine.any():
        return cube
    private = on[mine]
    mask = cube.mask
    value = cube.value
    # Tighten every free input whose value is constant across private minterms.
    for i in range(k):
        bit = 1 << i
        if mask & bit:
            continue
        bits = (private >> i) & 1
        if (bits == bits[0]).all():
            mask |= bit
            value |= bit if bits[0] else 0
    return Cube(mask, int(value))


def espresso(
    table: np.ndarray,
    dc: Optional[np.ndarray] = None,
    options: EspressoOptions = EspressoOptions(),
) -> Cover:
    """Minimize a single-output truth table into a prime, irredundant cover.

    Args:
        table: Boolean array of length ``2**k``.
        dc: Optional boolean don't-care mask of the same length; DC minterms
            may be covered or not, whichever is cheaper.
        options: See :class:`EspressoOptions`.

    Returns:
        A :class:`Cover` whose function equals ``table`` on all care rows.
    """
    table = np.asarray(table, dtype=bool)
    n = table.shape[0]
    if n == 0 or n & (n - 1):
        raise SynthesisError(f"table length {n} is not a power of two")
    k = n.bit_length() - 1
    on, off, _ = on_off_dc_split(table, dc)

    if on.size == 0:
        return Cover(k, [])
    if off.size == 0:
        return Cover(k, [Cube(0, 0)])  # tautology

    rng = np.random.default_rng(options.seed)
    order = on.copy()
    rng.shuffle(order)

    covered = np.zeros(on.size, dtype=bool)
    on_index = {int(m): i for i, m in enumerate(on)}
    cubes: List[Cube] = []
    for minterm in order:
        if covered[on_index[int(minterm)]]:
            continue
        cube = _expand_cube(
            Cube.from_minterm(int(minterm), k), off, k, options.literal_order_msb_first
        )
        covered |= cube.covers(on)
        cubes.append(cube)

    cubes = _irredundant(cubes, on)

    if options.quality and len(cubes) > 1:
        # One REDUCE / EXPAND / IRREDUNDANT refinement iteration.  REDUCE is
        # sequential: each cube is shrunk against the *current* cover state,
        # which preserves total ON coverage at every step.
        refined: List[Cube] = list(cubes)
        for i in range(len(refined)):
            matrix = np.stack([c.covers(on) for c in refined])
            others = np.delete(matrix, i, axis=0).any(axis=0)
            shrunk = _reduce_cube(refined[i], others, on, k)
            refined[i] = _expand_cube(
                shrunk, off, k, not options.literal_order_msb_first
            )
        alt = _irredundant(refined, on)
        alt_cover, cur_cover = Cover(k, alt), Cover(k, cubes)
        better = (len(alt), alt_cover.n_literals) < (len(cubes), cur_cover.n_literals)
        if better and alt_cover.covers(on).all():
            cubes = alt

    return Cover(k, cubes)


def espresso_multi(
    tables: np.ndarray,
    dc: Optional[np.ndarray] = None,
    options: EspressoOptions = EspressoOptions(),
) -> List[Cover]:
    """Minimize each column of a ``(2**k, m)`` multi-output table.

    Outputs are minimized independently; product-term sharing between
    outputs is recovered structurally (identical cubes hash to the same AND
    gate when the covers are built into a netlist).
    """
    tables = np.asarray(tables, dtype=bool)
    if tables.ndim != 2:
        raise SynthesisError("espresso_multi expects a 2-D table")
    dc_col = (lambda j: None) if dc is None else (lambda j: np.asarray(dc)[:, j])
    return [
        espresso(tables[:, j], dc_col(j), options) for j in range(tables.shape[1])
    ]
