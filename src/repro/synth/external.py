"""Optional bridges to external synthesis tools (ABC, Yosys).

The released BLASYS tool drives ABC/Yosys for compressor synthesis; this
module provides the same integration point.  Everything in this repository
works without external binaries — these hooks exist so results can be
cross-checked against an industrial-strength optimizer when one is on
``PATH`` (the test suite skips otherwise).

The exchange format is BLIF both ways, so any tool that reads and writes
combinational BLIF can be wired in via :func:`optimize_via_tool`.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import List, Optional

from ..errors import SynthesisError
from ..circuit.blif import read_blif, write_blif
from ..circuit.netlist import Circuit

#: Default ABC optimization script (the classic resyn2 recipe).
ABC_SCRIPT = "balance; rewrite; refactor; balance; rewrite; rewrite -z; balance; refactor -z; rewrite -z; balance"


def find_tool(name: str) -> Optional[str]:
    """Absolute path of an external tool, or None if not installed."""
    return shutil.which(name)


def optimize_via_tool(
    circuit: Circuit,
    command: List[str],
    timeout_s: float = 120.0,
) -> Circuit:
    """Round-trip a circuit through an external BLIF-to-BLIF command.

    ``command`` may contain the placeholders ``{in}`` and ``{out}`` which
    are replaced with temporary BLIF paths.

    Raises:
        SynthesisError: if the tool fails, times out, or emits a netlist
            with a different interface.
    """
    with tempfile.TemporaryDirectory(prefix="repro_ext_") as tmp:
        src = os.path.join(tmp, "in.blif")
        dst = os.path.join(tmp, "out.blif")
        write_blif(circuit, src)
        argv = [arg.replace("{in}", src).replace("{out}", dst) for arg in command]
        try:
            proc = subprocess.run(
                argv,
                capture_output=True,
                text=True,
                timeout=timeout_s,
            )
        except FileNotFoundError as exc:
            raise SynthesisError(f"external tool not found: {argv[0]}") from exc
        except subprocess.TimeoutExpired as exc:
            raise SynthesisError(f"external tool timed out: {argv[0]}") from exc
        if proc.returncode != 0:
            raise SynthesisError(
                f"external tool failed ({proc.returncode}): {proc.stderr[:500]}"
            )
        if not os.path.exists(dst):
            raise SynthesisError("external tool produced no output netlist")
        optimized = read_blif(dst)
    if optimized.n_inputs != circuit.n_inputs or optimized.n_outputs != circuit.n_outputs:
        raise SynthesisError("external tool changed the netlist interface")
    optimized.attrs = dict(circuit.attrs)
    return optimized


def abc_optimize(
    circuit: Circuit,
    script: str = ABC_SCRIPT,
    abc_path: Optional[str] = None,
    timeout_s: float = 120.0,
) -> Circuit:
    """Optimize a circuit with Berkeley ABC (if installed).

    Raises:
        SynthesisError: when ABC is unavailable or fails.
    """
    abc = abc_path or find_tool("abc")
    if abc is None:
        raise SynthesisError("abc binary not found on PATH")
    command = [
        abc,
        "-c",
        "read {in}; strash; " + script + "; write {out}",
    ]
    return optimize_via_tool(circuit, command, timeout_s)


def yosys_optimize(
    circuit: Circuit,
    yosys_path: Optional[str] = None,
    timeout_s: float = 120.0,
) -> Circuit:
    """Optimize a circuit with Yosys (if installed)."""
    yosys = yosys_path or find_tool("yosys")
    if yosys is None:
        raise SynthesisError("yosys binary not found on PATH")
    command = [
        yosys,
        "-q",
        "-p",
        "read_blif {in}; opt; techmap; opt; write_blif {out}",
    ]
    return optimize_via_tool(circuit, command, timeout_s)
