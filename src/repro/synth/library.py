"""Standard-cell library model (65 nm-like, typical corner).

BLASYS needs a cost oracle in the role Synopsys DC + an industrial 65 nm
library played in the paper: given a mapped netlist, report area (µm²),
power (µW) and delay (ns).  The numbers below are calibrated against
publicly known 65 nm standard-cell figures (a NAND2 is ~1.4 µm²; a full
adder cell is ~7.5 µm² with ~0.1 ns carry delay, which puts a 32-bit ripple
adder at ~3.2 ns — the regime of the paper's Table 1).

Only relative, monotone behaviour matters for reproducing the paper's
trends; all constants live here so recalibration is a one-file change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import SynthesisError


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Attributes:
        name: Cell name (e.g. ``NAND2``).
        n_inputs: Input pin count.
        n_outputs: Output pin count (2 for HA/FA macros).
        area: Cell area in µm².
        delay: Worst pin-to-output delay in ns.
        leakage: Leakage power in nW.
        switch_energy: Energy per output toggle in fJ (internal + typical
            wire/pin load).
    """

    name: str
    n_inputs: int
    area: float
    delay: float
    leakage: float
    switch_energy: float
    n_outputs: int = 1


class Library:
    """A named collection of cells with convenience lookups."""

    def __init__(self, name: str, cells: Iterable[Cell]) -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise SynthesisError(f"duplicate cell {cell.name}")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise SynthesisError(f"library {self.name} has no cell {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def get(self, name: str) -> Optional[Cell]:
        return self._cells.get(name)

    @property
    def cells(self) -> Tuple[Cell, ...]:
        return tuple(self._cells.values())

    def nary(self, base: str, arity: int) -> Cell:
        """Fetch e.g. ``AND3`` for (``AND``, 3); raises if absent."""
        return self[f"{base}{arity}"]

    def max_arity(self, base: str) -> int:
        """Largest available arity for a gate family (e.g. ``AND`` -> 4)."""
        best = 0
        for cell in self._cells.values():
            if cell.name.startswith(base) and cell.name[len(base):].isdigit():
                best = max(best, int(cell.name[len(base):]))
        return best


#: Default clock for power reporting (the paper reports µW at a fixed
#: operating point; the exact frequency only scales all numbers together).
DEFAULT_CLOCK_MHZ = 250.0

#: Supply voltage, folded into ``switch_energy`` values (V² at 1.0 V).
SUPPLY_V = 1.0


LIB65 = Library(
    "generic65",
    [
        #    name    ins  area  delay  leak  energy out
        Cell("INV",    1, 1.08, 0.020,  9.0, 1.85),
        Cell("BUF",    1, 1.44, 0.035, 11.0, 2.35),
        Cell("NAND2",  2, 1.44, 0.025, 14.0, 2.60),
        Cell("NAND3",  3, 1.80, 0.033, 19.0, 3.25),
        Cell("NAND4",  4, 2.16, 0.041, 24.0, 3.90),
        Cell("NOR2",   2, 1.44, 0.029, 14.0, 2.75),
        Cell("NOR3",   3, 1.80, 0.040, 19.0, 3.40),
        Cell("NOR4",   4, 2.16, 0.050, 24.0, 4.05),
        Cell("AND2",   2, 1.80, 0.042, 16.0, 3.00),
        Cell("AND3",   3, 2.16, 0.050, 21.0, 3.65),
        Cell("AND4",   4, 2.52, 0.058, 26.0, 4.30),
        Cell("OR2",    2, 1.80, 0.044, 16.0, 3.10),
        Cell("OR3",    3, 2.16, 0.053, 21.0, 3.80),
        Cell("OR4",    4, 2.52, 0.061, 26.0, 4.45),
        Cell("XOR2",   2, 3.24, 0.055, 26.0, 5.45),
        Cell("XNOR2",  2, 3.24, 0.056, 26.0, 5.45),
        Cell("MUX2",   3, 2.88, 0.052, 24.0, 4.70),
        Cell("AOI21",  3, 2.16, 0.036, 18.0, 3.40),
        Cell("OAI21",  3, 2.16, 0.037, 18.0, 3.40),
        Cell("HA",     2, 4.68, 0.058, 38.0, 6.80, n_outputs=2),
        Cell("FA",     3, 7.56, 0.100, 62.0, 10.90, n_outputs=2),
        Cell("TIE0",   0, 0.72, 0.000,  4.0, 0.00),
        Cell("TIE1",   0, 0.72, 0.000,  4.0, 0.00),
    ],
)
