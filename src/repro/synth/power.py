"""Activity-based power estimation for mapped netlists.

Dynamic power follows the standard model ``P = sum_nets alpha * E * f``:
signal probabilities come from bit-parallel random simulation of the lowered
netlist, the per-toggle energy from the cell library, and the clock from the
library defaults.  Leakage is summed per instance.  Under the temporal
independence assumption the toggle rate of a net with signal probability
``p`` is ``2 p (1 - p)`` transitions per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.simulate import (
    popcount_words,
    random_input_words,
    simulate_full,
)
from .library import DEFAULT_CLOCK_MHZ
from .techmap import MappedNetlist


@dataclass(frozen=True)
class PowerReport:
    """Result of :func:`estimate_power` (all figures in µW)."""

    dynamic_uw: float
    leakage_uw: float
    clock_mhz: float

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.leakage_uw


def signal_probabilities(
    circuit: Circuit,
    n_samples: int = 2048,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-node probability of being 1 under uniform random inputs."""
    rng = rng or np.random.default_rng(0)
    words = random_input_words(circuit.n_inputs, n_samples, rng)
    values = simulate_full(circuit, words)
    probs = np.empty(circuit.n_nodes, dtype=float)
    for nid in range(circuit.n_nodes):
        probs[nid] = popcount_words(values[nid], n=n_samples) / n_samples
    return probs


def estimate_power(
    mapped: MappedNetlist,
    n_samples: int = 2048,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    rng: Optional[np.random.Generator] = None,
) -> PowerReport:
    """Estimate dynamic + leakage power of a mapped netlist.

    Args:
        mapped: Output of :func:`repro.synth.techmap.tech_map`.
        n_samples: Random vectors for activity extraction.
        clock_mhz: Operating frequency for the dynamic term.
        rng: Optional generator (deterministic default).
    """
    probs = signal_probabilities(mapped.circuit, n_samples, rng)
    dynamic_fj_per_cycle = 0.0
    for inst in mapped.instances:
        for out in inst.outputs:
            p = probs[out]
            alpha = 2.0 * p * (1.0 - p)
            dynamic_fj_per_cycle += alpha * inst.cell.switch_energy
    # fJ/cycle * MHz = 1e-15 J * 1e6 /s = 1e-9 W = 1e-3 µW
    dynamic_uw = dynamic_fj_per_cycle * clock_mhz * 1e-3
    leakage_uw = mapped.leakage_nw * 1e-3
    return PowerReport(dynamic_uw, leakage_uw, clock_mhz)
