"""Static timing analysis over mapped netlists.

A single worst-case delay per cell (no slew/load model) is enough to
reproduce the paper's delay column: ripple-carry chains dominate and their
length scaling is what the numbers track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .techmap import MappedNetlist


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`static_timing`.

    Attributes:
        delay_ns: Worst arrival time over all primary outputs.
        critical_output: Name of the output realizing the worst arrival.
        critical_path: Net ids from a primary input to that output, in
            arrival order (empty for constant designs).
        arrivals: Arrival time per net id.
    """

    delay_ns: float
    critical_output: str
    critical_path: Tuple[int, ...]
    arrivals: Dict[int, float]


def static_timing(mapped: MappedNetlist) -> TimingReport:
    """Longest-path analysis; instances must be topologically sorted
    (guaranteed by :func:`repro.synth.techmap.tech_map`)."""
    arrivals: Dict[int, float] = {}
    pred: Dict[int, int] = {}
    for nid in mapped.circuit.inputs:
        arrivals[nid] = 0.0
    for inst in mapped.instances:
        worst_in, worst_net = 0.0, -1
        for f in inst.inputs:
            at = arrivals.get(f, 0.0)
            if at >= worst_in:
                worst_in, worst_net = at, f
        out_at = worst_in + inst.cell.delay
        for out in inst.outputs:
            arrivals[out] = out_at
            if worst_net >= 0:
                pred[out] = worst_net

    best_delay, best_port = 0.0, ""
    best_net = -1
    for port in mapped.circuit.outputs:
        at = arrivals.get(port.node, 0.0)
        if at >= best_delay:
            best_delay, best_port, best_net = at, port.name, port.node

    path: List[int] = []
    seen = set()
    net = best_net
    while net >= 0 and net not in seen:
        seen.add(net)
        path.append(net)
        net = pred.get(net, -1)
    path.reverse()
    return TimingReport(best_delay, best_port, tuple(path), arrivals)
