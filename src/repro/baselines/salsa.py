"""SALSA-style baseline: per-output don't-care-based simplification.

BLASYS compares against SALSA [Venkataramani et al., DAC'12] in Table 3.
SALSA's mechanism, as the BLASYS paper describes it: derive *approximation
don't-cares* from the QoR constraint and hand them to ordinary logic
synthesis, approximating **each output bit individually** — the paper
credits BLASYS's advantage precisely to approximating up to ``m`` outputs
simultaneously.

This module reproduces that mechanism on our substrate (see DESIGN.md for
the substitution rationale):

* each primary output bit gets one window: the *maximum fanout-free cone*
  of its driver, truncated to ``k`` inputs.  Logic shared with other
  outputs stays outside — simplifying output ``j`` must not disturb the
  others, exactly the restriction the BLASYS paper credits for SALSA's
  weakness on shared-logic circuits like multipliers;
* each window gets a ladder of variants: a growing fraction of its truth
  table rows is granted as don't-care and the function is re-minimized
  with espresso under those DCs;
* DC rows are chosen by a cube-merging heuristic (rows on the ON/OFF
  boundary first — the rows whose freedom most enlarges prime implicants);
* the same greedy error-guided exploration as Algorithm 1 then walks the
  per-output ladders.

``scope="windows"`` additionally offers a *strengthened* SALSA that reuses
BLASYS's full single-output decomposition of internal logic (every gate in
some window); the ablation benchmark uses it to separate how much of
BLASYS's win comes from multi-output factorization versus from windowing
internal logic at all.

The result type is the shared :class:`~repro.core.explorer.
ExplorationResult`, so all reporting and realization machinery applies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ExplorationError
from ..circuit.graph import fanout_lists, window_boundary
from ..circuit.netlist import Circuit
from ..core.explorer import ExplorationResult, ExplorerConfig, explore
from ..core.profile import CandidateVariant, WindowProfile, _VariantCosting
from ..partition.decompose import decompose
from ..partition.substitute import FactoredReplacement
from ..partition.windows import Window

#: Fraction of truth-table rows granted as don't-care at each ladder level,
#: from mildest (last level removed first) to most aggressive.
DC_LADDER: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75)

#: SALSA scopes: per-primary-output MFFCs (paper-faithful) or the full
#: single-output internal decomposition (strengthened ablation variant).
SCOPES = ("primary-outputs", "windows")


def output_root_windows(circuit: Circuit, max_inputs: int) -> List[Window]:
    """One window per primary-output driver: its k-truncated MFFC.

    A gate joins the cone only while *all* of its fanouts already lie
    inside (fanout-free condition) — guaranteeing single-output convex
    windows that never claim logic shared with other outputs — and only
    while the cone's input boundary stays within ``max_inputs``.
    """
    fanouts = fanout_lists(circuit)
    po_drivers = []
    seen: Set[int] = set()
    for port in circuit.outputs:
        nid = port.node
        if nid in seen or not circuit.node(nid).op.is_gate:
            continue
        seen.add(nid)
        po_drivers.append(nid)

    claimed: Set[int] = set()
    windows: List[Window] = []
    for root in po_drivers:
        if root in claimed:
            continue
        members: Set[int] = {root}
        grown = True
        while grown:
            grown = False
            candidates = set()
            # Sorted walk: candidate collection is commutative, but the
            # growth loop below consumes sorted(candidates), so keep the
            # whole pass order-history-free for determinism discipline.
            for v in sorted(members):
                for f in circuit.node(v).fanins:
                    node = circuit.node(f)
                    if (
                        node.op.is_gate
                        and f not in members
                        and f not in claimed
                        and all(s in members for s in fanouts[f])
                    ):
                        candidates.add(f)
            # Grow by the candidate that keeps the input boundary smallest.
            best, best_inputs = None, None
            for cand in sorted(candidates):
                ins, _ = window_boundary(circuit, members | {cand})
                if len(ins) <= max_inputs and (
                    best_inputs is None or len(ins) < best_inputs
                ):
                    best, best_inputs = cand, len(ins)
            if best is not None:
                members.add(best)
                grown = True
        ins, outs = window_boundary(circuit, members)
        if len(ins) > max_inputs:
            continue  # root alone already too wide; leave output exact
        claimed |= members
        windows.append(
            Window(len(windows), tuple(sorted(members)), tuple(ins), tuple(outs))
        )
    return windows


def boundary_scores(table: np.ndarray) -> np.ndarray:
    """ON/OFF boundary score per row: how many Hamming-1 neighbours differ.

    Rows with high scores sit on prime-implicant boundaries; granting them
    as don't-cares lets the minimizer merge cubes across the boundary.
    """
    table = np.asarray(table, dtype=bool)
    n = table.shape[0]
    k = max(n.bit_length() - 1, 0)
    idx = np.arange(n)
    score = np.zeros(n, dtype=np.int64)
    for i in range(k):
        score += table != table[idx ^ (1 << i)]
    return score


def dc_mask_for_fraction(table: np.ndarray, fraction: float) -> np.ndarray:
    """Don't-care mask covering ``fraction`` of rows, boundary rows first."""
    n = table.shape[0]
    budget = int(round(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if budget <= 0:
        return mask
    order = np.argsort(-boundary_scores(table), kind="stable")
    mask[order[:budget]] = True
    return mask


def profile_salsa_windows(
    circuit: Circuit,
    windows: Sequence[Window],
    config: ExplorerConfig,
    ladder: Sequence[float] = DC_LADDER,
) -> List[WindowProfile]:
    """Build per-output approximation ladders for the SALSA baseline.

    Level ``len(ladder) + 1`` is exact; descending one level grants the next
    larger DC fraction and re-minimizes.  Variants are realized as plain
    re-synthesized single-output functions (``FactoredReplacement`` with an
    identity decompressor).
    """
    from ..synth.espresso import espresso

    costing = _VariantCosting(config.library, config.espresso, config.match_macros)
    exact_level = len(ladder) + 1
    profiles: List[WindowProfile] = []
    identity = np.eye(1, dtype=bool)
    for w in windows:
        table = w.table(circuit)  # (2^k, 1)
        column = table[:, 0]
        exact_area = (
            costing.window_area(w.subcircuit(circuit))
            if config.estimate_area
            else 0.0
        )
        profile = WindowProfile(
            w, table, exact_area, None, levels=exact_level
        )
        for level, fraction in enumerate(reversed(ladder), start=1):
            # level 1 = most aggressive (largest DC fraction)
            dc = dc_mask_for_fraction(column, fraction)
            cover = espresso(column, dc, config.espresso)
            approx = cover.evaluate()[:, None]
            area = (
                costing.factored_area(approx, identity, "semiring")
                if config.estimate_area
                else 0.0
            )
            bmf_err = float(np.sum(approx[:, 0] != column))
            profile.variants[level] = [
                CandidateVariant(
                    f=level,
                    table=approx,
                    B=approx,
                    C=identity,
                    area=area,
                    bmf_error=bmf_err,
                    replacement=FactoredReplacement(approx, identity, "semiring"),
                    kind="salsa",
                )
            ]
        profiles.append(profile)
    return profiles


def run_salsa(
    circuit: Circuit,
    config: Optional[ExplorerConfig] = None,
    ladder: Sequence[float] = DC_LADDER,
    scope: str = "primary-outputs",
) -> ExplorationResult:
    """Run the SALSA-style baseline flow.

    Args:
        circuit: Accurate input circuit.
        config: Exploration configuration (thresholds, samples, ...).
        ladder: Don't-care fractions of the per-output simplification
            ladder.
        scope: ``"primary-outputs"`` (paper-faithful: one k-truncated MFFC
            per output bit; shared logic untouched) or ``"windows"``
            (strengthened: full single-output decomposition of all logic).

    Returns an :class:`ExplorationResult` compatible with the BLASYS one,
    so savings can be compared threshold-for-threshold (Table 3).
    """
    config = config or ExplorerConfig()
    if scope not in SCOPES:
        raise ExplorationError(f"unknown scope {scope!r}; expected {SCOPES}")
    if scope == "primary-outputs":
        windows = output_root_windows(circuit, config.max_inputs)
    else:
        windows = decompose(
            circuit,
            max_inputs=config.max_inputs,
            max_outputs=1,
            refine_passes=config.refine_passes,
        )
    profiles = profile_salsa_windows(circuit, windows, config, ladder)
    return explore(circuit, config, windows=windows, profiles=profiles)
