"""Comparison baselines from the paper's evaluation (SALSA)."""

from .salsa import (
    DC_LADDER,
    SCOPES,
    boundary_scores,
    dc_mask_for_fraction,
    output_root_windows,
    profile_salsa_windows,
    run_salsa,
)

__all__ = [
    "DC_LADDER",
    "SCOPES",
    "boundary_scores",
    "dc_mask_for_fraction",
    "output_root_windows",
    "profile_salsa_windows",
    "run_salsa",
]
