"""Exhaustive truth-table extraction.

The truth table of a k-input, m-output circuit is the boolean matrix ``M``
of shape ``(2**k, m)`` that BLASYS hands to the Boolean matrix factorizer:
row ``r`` holds the outputs for the input assignment whose bit ``i`` is
input ``i`` of the circuit (input 0 is the least-significant index bit).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .netlist import Circuit
from .simulate import (
    exhaustive_input_words,
    simulate_outputs,
    words_to_patterns,
)

#: Truth tables above this input count are refused (4M rows at k=22).
MAX_TRUTH_TABLE_INPUTS = 22


def truth_table(circuit: Circuit, max_inputs: int = MAX_TRUTH_TABLE_INPUTS) -> np.ndarray:
    """Compute the full truth table of ``circuit``.

    Returns:
        Boolean matrix of shape ``(2**k, m)`` where ``k``/``m`` are the
        input/output counts of the circuit.

    Raises:
        SimulationError: if the circuit has more than ``max_inputs`` inputs.
    """
    k = circuit.n_inputs
    if k > max_inputs:
        raise SimulationError(
            f"truth table with {k} inputs exceeds limit of {max_inputs}"
        )
    in_words = exhaustive_input_words(k)
    out_words = simulate_outputs(circuit, in_words)
    return words_to_patterns(out_words, 1 << k).astype(bool)


def table_from_function(k: int, fn) -> np.ndarray:
    """Build a single-output table by evaluating ``fn(bits) -> bool`` per row.

    ``bits`` is a length-``k`` tuple with ``bits[i]`` the value of input ``i``.
    Intended for tests and tiny reference functions.
    """
    rows = 1 << k
    out = np.zeros(rows, dtype=bool)
    for r in range(rows):
        bits = tuple((r >> i) & 1 for i in range(k))
        out[r] = bool(fn(bits))
    return out


def minterm_indices(column: np.ndarray) -> np.ndarray:
    """Indices of rows where a single-output table column is 1."""
    column = np.asarray(column, dtype=bool)
    return np.nonzero(column)[0]


def table_to_ints(table: np.ndarray, signed: bool = False) -> np.ndarray:
    """Interpret each row of a ``(rows, m)`` table as an m-bit integer.

    Column 0 is the least-significant bit.  With ``signed`` the value is
    two's complement on ``m`` bits.
    """
    table = np.asarray(table, dtype=np.int64)
    m = table.shape[1]
    weights = (np.int64(1) << np.arange(m, dtype=np.int64))
    vals = table @ weights
    if signed:
        sign_bit = np.int64(1) << np.int64(m - 1)
        vals = np.where(table[:, -1] > 0, vals - (sign_bit << 1), vals)
    return vals
