"""Word-level metadata attached to circuits.

BLASYS evaluates quality of result on *numbers*, not raw bits (Eq. 1 and 2 of
the paper interpret circuit outputs as integers).  A :class:`WordSpec`
records which primary outputs (or inputs) form one machine word and how to
interpret it; benchmark generators attach these specs to
``circuit.attrs["words"]`` / ``circuit.attrs["input_words"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class WordSpec:
    """A group of port bits interpreted as one integer.

    Attributes:
        name: Word name (e.g. ``"sum"``).
        indices: Port positions forming the word, least-significant first.
            For output words these index ``circuit.outputs``; for input words
            they index ``circuit.inputs``.
        signed: Two's-complement interpretation when True.
    """

    name: str
    indices: Tuple[int, ...]
    signed: bool = False

    @property
    def width(self) -> int:
        return len(self.indices)

    def to_ints(self, bit_rows: np.ndarray) -> np.ndarray:
        """Interpret ``bit_rows[:, self.indices]`` as integers.

        Args:
            bit_rows: 0/1 matrix of shape ``(n, n_ports)``.

        Returns:
            int64 vector of length ``n``.
        """
        bits = np.asarray(bit_rows, dtype=np.int64)[:, list(self.indices)]
        weights = np.int64(1) << np.arange(self.width, dtype=np.int64)
        vals = bits @ weights
        if self.signed and self.width:
            sign = np.int64(1) << np.int64(self.width - 1)
            vals = np.where(bits[:, -1] > 0, vals - (sign << 1), vals)
        return vals

    @property
    def max_abs(self) -> int:
        """Largest representable magnitude (used to normalize errors)."""
        if self.signed:
            return 1 << (self.width - 1) if self.width else 0
        return (1 << self.width) - 1


def words_from_attrs(attrs: dict, key: str = "words") -> List[WordSpec]:
    """Fetch word specs from a circuit attribute dict (empty if absent)."""
    specs = attrs.get(key, [])
    return list(specs)


def default_output_word(n_outputs: int, signed: bool = False) -> List[WordSpec]:
    """Fallback interpretation: all outputs form one unsigned word."""
    return [WordSpec("out", tuple(range(n_outputs)), signed)]
