"""Graph utilities over circuits: fanout maps, levels, cones, reachability.

Node ids are already a topological order (see :class:`~repro.circuit.netlist.
Circuit`), so every routine here is a single forward or backward sweep.
Ancestor relations are kept as packed uint64 bitsets — one row per node,
bit ``j`` meaning "node ``j`` is a (transitive) ancestor" — which lets the
decomposer answer convexity queries with a couple of word operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from ..errors import CircuitError
from .gate import Node, Op
from .netlist import Circuit


def fanout_lists(circuit: Circuit) -> List[List[int]]:
    """For each node, the list of node ids that read it (fanout edges)."""
    fanouts: List[List[int]] = [[] for _ in range(circuit.n_nodes)]
    for nid, node in enumerate(circuit.nodes):
        for f in node.fanins:
            fanouts[f].append(nid)
    return fanouts


def levels(circuit: Circuit) -> np.ndarray:
    """Logic depth of every node (sources at level 0)."""
    lvl = np.zeros(circuit.n_nodes, dtype=np.int64)
    for nid, node in enumerate(circuit.nodes):
        if node.fanins:
            lvl[nid] = 1 + max(int(lvl[f]) for f in node.fanins)
    return lvl


def transitive_fanin(circuit: Circuit, roots: Iterable[int]) -> np.ndarray:
    """Boolean mask of nodes in the transitive fanin cone of ``roots``.

    The roots themselves are included.
    """
    mask = np.zeros(circuit.n_nodes, dtype=bool)
    for r in roots:
        mask[r] = True
    for nid in range(circuit.n_nodes - 1, -1, -1):
        if mask[nid]:
            for f in circuit.node(nid).fanins:
                mask[f] = True
    return mask


def transitive_fanout(circuit: Circuit, roots: Iterable[int]) -> np.ndarray:
    """Boolean mask of nodes in the transitive fanout cone of ``roots``.

    The roots themselves are included.
    """
    mask = np.zeros(circuit.n_nodes, dtype=bool)
    for r in roots:
        mask[r] = True
    for nid, node in enumerate(circuit.nodes):
        if not mask[nid] and any(mask[f] for f in node.fanins):
            mask[nid] = True
    return mask


def ancestor_bitsets(circuit: Circuit) -> np.ndarray:
    """Packed ancestor matrix ``A`` with ``A[n]`` bit ``j`` set iff ``j`` is a
    strict ancestor of ``n`` (i.e. there is a directed path ``j -> n``).

    Shape is ``(n_nodes, ceil(n_nodes / 64))``; memory is ``n**2 / 8`` bytes,
    fine for the netlist sizes this library targets (thousands of nodes).
    """
    n = circuit.n_nodes
    w = (n + 63) // 64
    anc = np.zeros((n, w), dtype=np.uint64)
    word = np.arange(n) // 64
    bit = np.uint64(1) << (np.arange(n, dtype=np.uint64) % np.uint64(64))
    for nid, node in enumerate(circuit.nodes):
        row = anc[nid]
        for f in node.fanins:
            row |= anc[f]
            row[word[f]] |= bit[f]
    return anc


def bitset_contains(bitsets: np.ndarray, row: int, member: int) -> bool:
    """True if bit ``member`` is set in ``bitsets[row]``."""
    return bool(
        (bitsets[row, member // 64] >> np.uint64(member % 64)) & np.uint64(1)
    )


def window_boundary(
    circuit: Circuit, members: Set[int]
) -> Tuple[List[int], List[int]]:
    """Boundary of a node set: (external inputs, internally-driven outputs).

    *Inputs* are nodes outside ``members`` feeding some member (constants are
    excluded — they are free inside any window).  *Outputs* are members that
    drive a node outside the set or a primary output.  Both lists are sorted
    by node id for determinism.
    """
    fanouts = fanout_lists(circuit)
    po_drivers = set(circuit.output_nodes())
    inputs: Set[int] = set()
    outputs: Set[int] = set()
    # Sorted walk for determinism discipline (the accumulation itself is
    # commutative, but boundary order must never depend on set history).
    for m in sorted(members):
        for f in circuit.node(m).fanins:
            if f not in members and not circuit.node(f).op in (Op.CONST0, Op.CONST1):
                inputs.add(f)
        if m in po_drivers or any(s not in members for s in fanouts[m]):
            outputs.add(m)
    return sorted(inputs), sorted(outputs)


def extract_subcircuit(
    circuit: Circuit,
    members: Sequence[int],
    input_nodes: Sequence[int],
    output_nodes: Sequence[int],
    name: str = "window",
) -> Circuit:
    """Materialize a window of ``circuit`` as a standalone :class:`Circuit`.

    Args:
        members: Node ids inside the window (any order).
        input_nodes: External driver ids, becoming primary inputs named
            after their position (``wi0``, ``wi1``, ...).
        output_nodes: Member ids exported as primary outputs (``wo0``, ...).

    Constants feeding the window are recreated inside it.

    Raises:
        CircuitError: if a member has a fanin that is neither a member, a
            declared input, nor a constant.
    """
    member_set = set(members)
    sub = Circuit(name)
    remap: Dict[int, int] = {}
    for pos, nid in enumerate(input_nodes):
        remap[nid] = sub.add_input(f"wi{pos}")
    for nid in sorted(member_set):
        node = circuit.node(nid)
        fanins = []
        for f in node.fanins:
            if f in remap:
                fanins.append(remap[f])
            elif circuit.node(f).op in (Op.CONST0, Op.CONST1):
                remap[f] = sub.add_node(Node(circuit.node(f).op))
                fanins.append(remap[f])
            else:
                raise CircuitError(
                    f"window member {nid} has undeclared external fanin {f}"
                )
        remap[nid] = sub.add_node(Node(node.op, tuple(fanins), node.name, node.table))
    for pos, nid in enumerate(output_nodes):
        if nid not in remap:
            raise CircuitError(f"window output {nid} is not a member")
        sub.add_output(f"wo{pos}", remap[nid])
    return sub


def quotient_is_acyclic(
    circuit: Circuit, assignment: Dict[int, int]
) -> bool:
    """Check that contracting each cluster of ``assignment`` leaves a DAG.

    ``assignment`` maps node id -> cluster id for gate nodes; unassigned
    nodes (sources, or gates left out) are treated as singleton clusters.
    """
    edges: Set[Tuple[int, int]] = set()
    next_virtual = -1
    virtual: Dict[int, int] = {}

    def cluster_of(nid: int) -> int:
        nonlocal next_virtual
        if nid in assignment:
            return assignment[nid]
        if nid not in virtual:
            virtual[nid] = next_virtual
            next_virtual -= 1
        return virtual[nid]

    adj: Dict[int, Set[int]] = {}
    for nid, node in enumerate(circuit.nodes):
        dst = cluster_of(nid)
        for f in node.fanins:
            src = cluster_of(f)
            if src != dst and (src, dst) not in edges:
                edges.add((src, dst))
                adj.setdefault(src, set()).add(dst)

    # Kahn's algorithm over the quotient graph.
    indeg: Dict[int, int] = {}
    nodes_q: Set[int] = set()
    for src, dsts in adj.items():
        nodes_q.add(src)
        for d in dsts:
            nodes_q.add(d)
            indeg[d] = indeg.get(d, 0) + 1
    queue = [q for q in sorted(nodes_q) if indeg.get(q, 0) == 0]
    seen = 0
    while queue:
        q = queue.pop()
        seen += 1
        for d in adj.get(q, ()):
            indeg[d] -= 1
            if indeg[d] == 0:
                queue.append(d)
    return seen == len(nodes_q)
