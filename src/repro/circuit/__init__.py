"""Gate-level netlist substrate: representation, construction, simulation, I/O."""

from .gate import Node, Op
from .netlist import Circuit, PortRef
from .builder import CircuitBuilder
from .words import WordSpec, default_output_word, words_from_attrs
from .simulate import (
    Chunk,
    bit_count,
    exhaustive_input_words,
    pack_bits,
    patterns_to_words,
    plan_chunks,
    popcount_words,
    random_input_words,
    simulate_full,
    simulate_outputs,
    simulate_patterns,
    unpack_bits,
    words_for,
    words_to_patterns,
)
from .stimulus import stimulus_input_words
from .truth_table import table_from_function, table_to_ints, truth_table
from .graph import (
    ancestor_bitsets,
    extract_subcircuit,
    fanout_lists,
    levels,
    quotient_is_acyclic,
    transitive_fanin,
    transitive_fanout,
    window_boundary,
)
from .blif import read_blif, write_blif
from .equivalence import EquivalenceResult, equivalent, miter
from .verilog import write_verilog
from .verilog_reader import read_verilog

__all__ = [
    "Chunk",
    "Circuit",
    "CircuitBuilder",
    "EquivalenceResult",
    "Node",
    "Op",
    "PortRef",
    "WordSpec",
    "ancestor_bitsets",
    "default_output_word",
    "equivalent",
    "exhaustive_input_words",
    "extract_subcircuit",
    "miter",
    "fanout_lists",
    "levels",
    "bit_count",
    "pack_bits",
    "patterns_to_words",
    "plan_chunks",
    "popcount_words",
    "quotient_is_acyclic",
    "random_input_words",
    "read_blif",
    "read_verilog",
    "simulate_full",
    "simulate_outputs",
    "simulate_patterns",
    "stimulus_input_words",
    "table_from_function",
    "table_to_ints",
    "transitive_fanin",
    "transitive_fanout",
    "truth_table",
    "unpack_bits",
    "window_boundary",
    "words_for",
    "words_from_attrs",
    "words_to_patterns",
    "write_blif",
    "write_verilog",
]
