"""Gate-level primitives: operation kinds and netlist nodes.

A :class:`Node` is one vertex of a combinational DAG.  Node semantics:

``INPUT``
    A primary input; no fanins.
``CONST0`` / ``CONST1``
    Constant drivers; no fanins.
``BUF`` / ``NOT``
    Single-fanin buffer / inverter.
``AND`` / ``OR`` / ``XOR`` / ``NAND`` / ``NOR`` / ``XNOR``
    N-ary (>= 2 fanins) associative gates.  ``NAND``/``NOR``/``XNOR`` are the
    complement of the n-ary ``AND``/``OR``/``XOR``.
``MUX``
    Fanins ``(s, a, b)``; output is ``a`` when ``s == 0`` and ``b`` otherwise.
``LUT``
    Arbitrary k-input function given by an explicit truth table of length
    ``2**k``; row index is ``sum(bit_i << i)`` with fanin 0 as the least
    significant selector bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import CircuitError


class Op(enum.Enum):
    """Operation performed by a netlist node."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MUX = "mux"
    LUT = "lut"

    @property
    def is_source(self) -> bool:
        """True for nodes that take no fanins (inputs and constants)."""
        return self in (Op.INPUT, Op.CONST0, Op.CONST1)

    @property
    def is_gate(self) -> bool:
        """True for logic nodes (everything that has fanins)."""
        return not self.is_source


#: Ops whose fanin order does not matter; the builder sorts their fanins so
#: structural hashing can identify commutatively equal gates.
COMMUTATIVE_OPS = frozenset({Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR})

#: Minimum/maximum fanin count per op (None means unbounded above).
_ARITY = {
    Op.INPUT: (0, 0),
    Op.CONST0: (0, 0),
    Op.CONST1: (0, 0),
    Op.BUF: (1, 1),
    Op.NOT: (1, 1),
    Op.AND: (2, None),
    Op.OR: (2, None),
    Op.XOR: (2, None),
    Op.NAND: (2, None),
    Op.NOR: (2, None),
    Op.XNOR: (2, None),
    Op.MUX: (3, 3),
    Op.LUT: (1, None),
}


@dataclass(frozen=True)
class Node:
    """One vertex of the combinational DAG.

    Attributes:
        op: Operation kind.
        fanins: Ids of driver nodes; all strictly smaller than this node's id.
        name: Optional human-readable label (inputs always carry one).
        table: For ``LUT`` nodes only, a boolean array of length
            ``2**len(fanins)`` giving the output for every fanin pattern.
    """

    op: Op
    fanins: Tuple[int, ...] = ()
    name: Optional[str] = None
    table: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        lo, hi = _ARITY[self.op]
        n = len(self.fanins)
        if n < lo or (hi is not None and n > hi):
            raise CircuitError(
                f"{self.op.value} node takes between {lo} and {hi or 'inf'} "
                f"fanins, got {n}"
            )
        if self.op is Op.LUT:
            if self.table is None:
                raise CircuitError("LUT node requires a truth table")
            if self.table.shape != (1 << n,):
                raise CircuitError(
                    f"LUT table must have length {1 << n} for {n} fanins, "
                    f"got shape {self.table.shape}"
                )
        elif self.table is not None:
            raise CircuitError(f"{self.op.value} node must not carry a table")

    @property
    def arity(self) -> int:
        """Number of fanins."""
        return len(self.fanins)


def lut_table_key(table: np.ndarray) -> bytes:
    """Hashable key for a LUT truth table (used by structural hashing)."""
    return np.asarray(table, dtype=bool).tobytes()
