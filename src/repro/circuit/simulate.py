"""Bit-parallel circuit simulation.

Simulation packs 64 input patterns per ``uint64`` word, so an n-pattern run
evaluates each gate with ``ceil(n / 64)`` numpy word operations.  The packing
convention is little-endian throughout: pattern ``s`` lives in word ``s // 64``
at bit ``s % 64``, matching ``numpy.packbits(..., bitorder="little")`` on the
byte view of the word array.

Two entry points are provided:

* :func:`simulate_full` — evaluates every node and returns the full value
  matrix.  Use for small/medium pattern counts (the design-space explorer
  keeps this matrix around for incremental re-evaluation).
* :func:`simulate_outputs` — evaluates in chunks and only materializes output
  values, suitable for million-pattern Monte-Carlo runs.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .gate import Op
from .netlist import Circuit

#: Patterns per packed word.
WORD_BITS = 64

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_for(n_patterns: int) -> int:
    """Number of uint64 words needed to hold ``n_patterns`` packed bits."""
    return (n_patterns + WORD_BITS - 1) // WORD_BITS


class Chunk(NamedTuple):
    """One word-aligned slice of the pattern axis.

    Attributes:
        start / stop: Half-open word range ``[start, stop)`` into a packed
            value array.
        n_valid: Number of valid patterns inside the chunk (``None`` when
            the plan was built without a pattern count).  Interior chunks
            carry ``(stop - start) * 64`` valid patterns; the chunk holding
            the end of the sample set is clamped, and chunks entirely past
            it hold 0 (never a negative count — see :func:`plan_chunks`).
    """

    start: int
    stop: int
    n_valid: Optional[int]

    @property
    def n_words(self) -> int:
        return self.stop - self.start


def plan_chunks(
    n_samples: Optional[int],
    chunk_words: int,
    total_words: Optional[int] = None,
) -> List[Chunk]:
    """Partition the packed pattern axis into word-aligned chunks.

    This is the single chunking discipline shared by streaming simulation
    (:func:`simulate_outputs`) and the streaming exploration engine
    (:class:`repro.core.streaming.StreamingEvaluator`): every consumer
    that iterates the pattern axis in bounded memory walks the same plan,
    so the per-chunk valid-pattern counts — and therefore the tail-mask
    behaviour at every chunk boundary — cannot drift between layers.

    Args:
        n_samples: Total valid patterns, or ``None`` when unknown (every
            chunk's ``n_valid`` is then ``None`` and no tail masking
            applies).
        chunk_words: Maximum words per chunk (≥ 1).
        total_words: Words to cover; defaults to ``words_for(n_samples)``.

    Returns:
        Chunks covering ``[0, total_words)`` in order.  Each ``n_valid``
        is clamped to the chunk's own range: ``min(max(n_samples -
        start * 64, 0), (stop - start) * 64)``.  The ``max(..., 0)`` is
        load-bearing — a chunk entirely past ``n_samples`` holds **zero**
        valid patterns, not a negative count (negative values would reach
        ``tail_mask`` through Python's modulo and produce a wrong mask,
        leaving LUT garbage in the padded region).

    Raises:
        SimulationError: on a non-positive ``chunk_words`` or a missing
            ``total_words`` when ``n_samples`` is ``None``.
    """
    if chunk_words < 1:
        raise SimulationError(f"chunk_words must be >= 1, got {chunk_words}")
    if total_words is None:
        if n_samples is None:
            raise SimulationError(
                "plan_chunks needs n_samples or an explicit total_words"
            )
        total_words = words_for(n_samples)
    chunks: List[Chunk] = []
    for start in range(0, total_words, chunk_words):
        stop = min(start + chunk_words, total_words)
        n_valid: Optional[int] = None
        if n_samples is not None:
            n_valid = min(
                max(n_samples - start * WORD_BITS, 0),
                (stop - start) * WORD_BITS,
            )
        chunks.append(Chunk(start, stop, n_valid))
    return chunks


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (..., n) array of 0/1 values into (..., ceil(n/64)) uint64.

    The trailing bits of the final word are zero.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    packed8 = np.packbits(bits, axis=-1, bitorder="little")
    pad = (-packed8.shape[-1]) % 8
    if pad:
        pad_widths = [(0, 0)] * (packed8.ndim - 1) + [(0, pad)]
        packed8 = np.pad(packed8, pad_widths)
    return np.ascontiguousarray(packed8).view(np.uint64)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: (..., W) uint64 -> (..., n) uint8."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :n]


def tail_mask(n: int) -> np.uint64:
    """Mask selecting the valid bits of the final word for ``n`` patterns."""
    rem = n % WORD_BITS
    if rem == 0:
        return _FULL_WORD
    return np.uint64((1 << rem) - 1)


#: Per-byte set-bit counts; the portable fallback for :func:`bit_count`.
_POPCOUNT_LUT = np.array(
    [bin(v).count("1") for v in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _bit_count_lut(words: np.ndarray) -> np.ndarray:
    """Lookup-table popcount: per-element set-bit counts as int64."""
    by = words.view(np.uint8).reshape(words.shape + (8,))
    return _POPCOUNT_LUT[by].sum(axis=-1, dtype=np.int64)


def bit_count(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array, as int64.

    Uses ``np.bitwise_count`` (numpy >= 2.0) when available and a per-byte
    lookup table otherwise; either way the result has the input's shape and
    never materializes an unpacked bit array.  This is the shared popcount
    primitive for both simulation statistics and the packed BMF kernels
    (:mod:`repro.core.bmf.packed`).
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    return _bit_count_lut(words)


def popcount_words(words: np.ndarray, n: Optional[int] = None) -> int:
    """Count set bits in a packed array, optionally restricted to ``n`` patterns.

    Raises:
        ValueError: When ``n`` is negative or needs more packed words
            than each row of ``words`` holds — a too-large ``n`` would
            otherwise silently count whatever the (nonexistent) tail
            words happen to alias.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if n is not None:
        if n < 0:
            raise ValueError(f"pattern count must be >= 0, got {n}")
        flat = words.reshape(words.shape[0], -1) if words.ndim > 1 else words
        w = words_for(n)
        capacity = flat.shape[-1] if words.ndim else 0
        if w > capacity:
            raise ValueError(
                f"n={n} needs {w} packed words per row but the array "
                f"holds {capacity}"
            )
        if w == 0:
            return 0
        if words.ndim == 1:
            words = words[:w].copy()
            words[-1] &= tail_mask(n)
        else:
            words = flat[:, :w].copy()
            words[:, -1] &= tail_mask(n)
    from ..kernels import active_backend

    return active_backend().popcount_reduce(words)


def exhaustive_input_words(k: int) -> np.ndarray:
    """Packed input values enumerating all ``2**k`` patterns in table order.

    Row ``r`` of the implied truth table corresponds to the input assignment
    with input ``i`` equal to bit ``i`` of ``r`` (input 0 toggles fastest).
    Returns an array of shape ``(k, words_for(2**k))``.
    """
    if k < 0:
        raise SimulationError("negative input count")
    n = 1 << k
    idx = np.arange(n, dtype=np.uint32)
    bits = ((idx[None, :] >> np.arange(k, dtype=np.uint32)[:, None]) & 1).astype(
        np.uint8
    )
    return pack_bits(bits)


def random_input_words(
    k: int, n_patterns: int, rng: np.random.Generator
) -> np.ndarray:
    """Packed uniformly random input values of shape ``(k, words_for(n))``.

    Bits beyond ``n_patterns`` in the final word are forced to zero so that
    downstream popcounts over the full array are safe.
    """
    w = words_for(n_patterns)
    words = rng.integers(0, 1 << 64, size=(k, w), dtype=np.uint64)
    if w:
        words[:, -1] &= tail_mask(n_patterns)
    return words


def patterns_to_words(patterns: np.ndarray) -> np.ndarray:
    """Convert an (n_patterns, k) 0/1 matrix into packed ``(k, W)`` words."""
    patterns = np.asarray(patterns)
    if patterns.ndim != 2:
        raise SimulationError("patterns must be a 2-D (n, k) array")
    return pack_bits(patterns.T.astype(np.uint8))


def words_to_patterns(words: np.ndarray, n: int) -> np.ndarray:
    """Convert packed ``(k, W)`` words back into an (n, k) 0/1 matrix."""
    return unpack_bits(words, n).T


def mask_tail_words(words: np.ndarray, n_valid: int) -> np.ndarray:
    """Zero the bits of ``words`` beyond ``n_valid`` patterns, in place.

    Enforces the packed-word tail-bit invariant (see DESIGN.md): bits past
    the pattern count carry no information and must be zero wherever code
    compares packed arrays directly.
    """
    w_valid = words_for(n_valid)
    if w_valid < words.shape[-1]:
        words[..., w_valid:] = 0
    if w_valid:
        words[..., w_valid - 1] &= tail_mask(n_valid)
    return words


def _lut_eval(
    table: np.ndarray,
    fanin_words: Sequence[np.ndarray],
    n_valid: Optional[int] = None,
) -> np.ndarray:
    """Evaluate a LUT on packed fanin values.

    Unpacks the fanins to per-pattern indices, gathers through the table and
    repacks.  Cost is linear in pattern count; LUTs are only used for
    window-substitution candidates so this stays off the hot path of plain
    gate evaluation.

    Tail bits beyond ``n_valid`` index the table with garbage (all-zero
    fanin tails hit ``table[0]``, which may be 1), so when the pattern
    count is known the output tail is masked back to zero.
    """
    k = len(fanin_words)
    w = fanin_words[0].shape[0]
    n = w * WORD_BITS
    idx = np.zeros(n, dtype=np.uint32)
    for i, fw in enumerate(fanin_words):
        idx |= unpack_bits(fw, n).astype(np.uint32) << np.uint32(i)
    out_bits = np.asarray(table, dtype=np.uint8)[idx]
    out = pack_bits(out_bits)
    if n_valid is not None:
        mask_tail_words(out, n_valid)
    return out


def _eval_node(
    op: Op,
    ins: Sequence[np.ndarray],
    table,
    w: int,
    n_valid: Optional[int] = None,
) -> np.ndarray:
    """Evaluate one node on packed fanin value arrays of width ``w`` words."""
    if op is Op.CONST0:
        return np.zeros(w, dtype=np.uint64)
    if op is Op.CONST1:
        return np.full(w, _FULL_WORD, dtype=np.uint64)
    if op is Op.BUF:
        return ins[0].copy()
    if op is Op.NOT:
        return ~ins[0]
    if op in (Op.AND, Op.NAND):
        acc = ins[0].copy()
        for x in ins[1:]:
            acc &= x
        return ~acc if op is Op.NAND else acc
    if op in (Op.OR, Op.NOR):
        acc = ins[0].copy()
        for x in ins[1:]:
            acc |= x
        return ~acc if op is Op.NOR else acc
    if op in (Op.XOR, Op.XNOR):
        acc = ins[0].copy()
        for x in ins[1:]:
            acc ^= x
        return ~acc if op is Op.XNOR else acc
    if op is Op.MUX:
        s, a, b = ins
        return (a & ~s) | (b & s)
    if op is Op.LUT:
        return _lut_eval(table, ins, n_valid)
    raise SimulationError(f"cannot evaluate op {op}")  # pragma: no cover


def simulate_full_reference(
    circuit: Circuit,
    input_words: np.ndarray,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Per-node interpreted evaluation — the reference semantics.

    One numpy dispatch per node in id order.  Kept as the equivalence
    oracle for the compiled gate-program path (see
    :mod:`repro.core.engine`); both are byte-identical, tails included.
    """
    input_words = np.atleast_2d(np.asarray(input_words, dtype=np.uint64))
    if input_words.shape[0] != circuit.n_inputs:
        raise SimulationError(
            f"expected {circuit.n_inputs} input rows, got {input_words.shape[0]}"
        )
    w = input_words.shape[1]
    values = np.zeros((circuit.n_nodes, w), dtype=np.uint64)
    next_input = 0
    for nid, node in enumerate(circuit.nodes):
        if node.op is Op.INPUT:
            values[nid] = input_words[next_input]
            next_input += 1
        else:
            ins = [values[f] for f in node.fanins]
            values[nid] = _eval_node(node.op, ins, node.table, w, n_samples)
    return values


#: Below this many node×word units the per-node interpreter wins (program
#: compilation is pure-Python work); above it the levelized gate program
#: amortizes.  Both paths are byte-identical, so the cutover is pure policy.
_COMPILED_MIN_WORK = 8192


def simulate_full(
    circuit: Circuit,
    input_words: np.ndarray,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Evaluate every node; returns a ``(n_nodes, W)`` packed value matrix.

    Large runs execute the circuit's compiled structure-of-arrays gate
    program (one gathered numpy op per levelized (op, arity) class — see
    :mod:`repro.core.engine`); small ones fall back to the per-node
    interpreter.  Results are byte-identical either way, tails included.

    Args:
        circuit: The netlist to evaluate.
        input_words: Packed values for the primary inputs, shape
            ``(n_inputs, W)`` in circuit input order.
        n_samples: When given, LUT node outputs are tail-masked to this
            pattern count (gate tails stay unspecified either way — mask
            before comparing packed values; see DESIGN.md).
    """
    input_words = np.atleast_2d(np.asarray(input_words, dtype=np.uint64))
    if circuit.n_nodes * max(input_words.shape[1], 1) < _COMPILED_MIN_WORK:
        return simulate_full_reference(circuit, input_words, n_samples)
    from ..core.engine import simulate_full_compiled  # lazy: engine builds on this module

    return simulate_full_compiled(circuit, input_words, n_samples)


def output_words_from_values(circuit: Circuit, values: np.ndarray) -> np.ndarray:
    """Select the output rows of a full value matrix, in output order."""
    return values[circuit.output_nodes()]


def simulate_outputs(
    circuit: Circuit,
    input_words: np.ndarray,
    chunk_words: int = 2048,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Evaluate only primary outputs, chunking over the pattern axis.

    Memory use is bounded by ``n_nodes * chunk_words * 8`` bytes regardless
    of total pattern count.  Returns packed outputs of shape
    ``(n_outputs, W)``.  ``n_samples`` (which must match ``W`` when given)
    tail-masks LUT outputs as in :func:`simulate_full`.
    """
    input_words = np.atleast_2d(np.asarray(input_words, dtype=np.uint64))
    w = input_words.shape[1]
    if w <= chunk_words:
        return output_words_from_values(
            circuit, simulate_full(circuit, input_words, n_samples)
        )
    out = np.zeros((circuit.n_outputs, w), dtype=np.uint64)
    for chunk in plan_chunks(n_samples, chunk_words, total_words=w):
        vals = simulate_full(
            circuit, input_words[:, chunk.start : chunk.stop], chunk.n_valid
        )
        out[:, chunk.start : chunk.stop] = output_words_from_values(
            circuit, vals
        )
    return out


def simulate_patterns(circuit: Circuit, patterns: np.ndarray) -> np.ndarray:
    """Convenience wrapper: (n, k) 0/1 patterns in, (n, m) 0/1 outputs out."""
    patterns = np.asarray(patterns)
    n = patterns.shape[0]
    out_words = simulate_outputs(circuit, patterns_to_words(patterns))
    return words_to_patterns(out_words, n)
