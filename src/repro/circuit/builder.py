"""Structural circuit construction with hashing, folding and word helpers.

:class:`CircuitBuilder` is the one way circuits get built in this library —
benchmark generators, compressor/decompressor synthesis and test fixtures all
go through it.  It provides:

* *structural hashing* — identical (op, fanins) gates are created once;
* *constant folding / local rewrites* — ``x & 0 -> 0``, double-inverter
  elimination, xor-with-constant absorption, degenerate mux removal;
* *word-level helpers* — ripple adders, subtractors, absolute difference,
  array multipliers, muxes — so arithmetic benchmarks elaborate naturally.

Words are plain Python lists of signal ids, least-significant bit first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CircuitError
from .gate import COMMUTATIVE_OPS, Node, Op, lut_table_key
from .netlist import Circuit
from .words import WordSpec

Sig = int
Word = List[int]


class CircuitBuilder:
    """Incrementally builds a :class:`Circuit`; see module docstring."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._strash: Dict[tuple, int] = {}
        self._outputs: List[Tuple[str, int]] = []
        self._output_words: List[WordSpec] = []
        self._input_words: List[WordSpec] = []
        self._input_positions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Raw node management
    # ------------------------------------------------------------------
    def _raw_add(self, node: Node) -> Sig:
        self._nodes.append(node)
        nid = len(self._nodes) - 1
        if node.op is Op.INPUT:
            self._input_positions[nid] = len(self._input_positions)
        return nid

    def _add(self, op: Op, fanins: Tuple[int, ...], table=None) -> Sig:
        if op in COMMUTATIVE_OPS:
            fanins = tuple(sorted(fanins))
        key: tuple
        if table is not None:
            key = (op, fanins, lut_table_key(table))
        else:
            key = (op, fanins)
        found = self._strash.get(key)
        if found is not None:
            return found
        nid = self._raw_add(Node(op, fanins, None, table))
        self._strash[key] = nid
        return nid

    def _op_of(self, sig: Sig) -> Op:
        return self._nodes[sig].op

    def _is_const(self, sig: Sig) -> Optional[bool]:
        op = self._op_of(sig)
        if op is Op.CONST0:
            return False
        if op is Op.CONST1:
            return True
        return None

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def input(self, name: str) -> Sig:
        """Create a primary input."""
        return self._raw_add(Node(Op.INPUT, (), name))

    def const(self, value: bool) -> Sig:
        """Return the constant-0 or constant-1 node (created on demand)."""
        op = Op.CONST1 if value else Op.CONST0
        key = (op, ())
        found = self._strash.get(key)
        if found is not None:
            return found
        nid = self._raw_add(Node(op, ()))
        self._strash[key] = nid
        return nid

    def input_word(self, name: str, width: int, signed: bool = False) -> Word:
        """Create ``width`` inputs named ``name[i]`` and record the word."""
        positions_before = len(self._input_positions)
        sigs = [self.input(f"{name}[{i}]") for i in range(width)]
        self._input_words.append(
            WordSpec(name, tuple(range(positions_before, positions_before + width)), signed)
        )
        return sigs

    # ------------------------------------------------------------------
    # Bit-level logic (with folding)
    # ------------------------------------------------------------------
    def buf(self, a: Sig) -> Sig:
        """Identity; returns ``a`` itself (no node is created)."""
        return a

    def not_(self, a: Sig) -> Sig:
        c = self._is_const(a)
        if c is not None:
            return self.const(not c)
        node = self._nodes[a]
        if node.op is Op.NOT:
            return node.fanins[0]
        return self._add(Op.NOT, (a,))

    def _nary(self, op: Op, xs: Sequence[Sig]) -> Sig:
        """Shared folding for AND/OR (dominant + identity constants)."""
        dominant = op is Op.OR  # OR is dominated by 1, AND by 0
        kept: List[Sig] = []
        seen = set()
        for x in xs:
            c = self._is_const(x)
            if c is not None:
                if c == dominant:
                    return self.const(dominant)
                continue  # identity element: drop
            if x in seen:
                continue
            seen.add(x)
            kept.append(x)
        # x op ~x is dominant (x & ~x = 0, x | ~x = 1)
        for x in kept:
            node = self._nodes[x]
            if node.op is Op.NOT and node.fanins[0] in seen:
                return self.const(dominant)
        if not kept:
            return self.const(not dominant)
        if len(kept) == 1:
            return kept[0]
        return self._add(op, tuple(kept))

    def and_(self, *xs: Sig) -> Sig:
        """N-ary AND with constant folding."""
        return self._nary(Op.AND, xs)

    def or_(self, *xs: Sig) -> Sig:
        """N-ary OR with constant folding."""
        return self._nary(Op.OR, xs)

    def nand_(self, *xs: Sig) -> Sig:
        return self.not_(self.and_(*xs))

    def nor_(self, *xs: Sig) -> Sig:
        return self.not_(self.or_(*xs))

    def xor_(self, *xs: Sig) -> Sig:
        """N-ary XOR; constants are absorbed into an output inversion."""
        invert = False
        counts: Dict[Sig, int] = {}
        for x in xs:
            c = self._is_const(x)
            if c is not None:
                invert ^= c
                continue
            counts[x] = counts.get(x, 0) + 1
        kept = [x for x, n in counts.items() if n % 2 == 1]
        if not kept:
            return self.const(invert)
        if len(kept) == 1:
            return self.not_(kept[0]) if invert else kept[0]
        out = self._add(Op.XOR, tuple(kept))
        return self.not_(out) if invert else out

    def xnor_(self, *xs: Sig) -> Sig:
        return self.not_(self.xor_(*xs))

    def mux(self, s: Sig, a: Sig, b: Sig) -> Sig:
        """2:1 multiplexer: ``a`` when ``s`` is 0, else ``b``."""
        c = self._is_const(s)
        if c is not None:
            return b if c else a
        if a == b:
            return a
        ca, cb = self._is_const(a), self._is_const(b)
        if ca is False and cb is True:
            return s
        if ca is True and cb is False:
            return self.not_(s)
        if ca is False:
            return self.and_(s, b)
        if ca is True:
            return self.or_(self.not_(s), b)
        if cb is False:
            return self.and_(self.not_(s), a)
        if cb is True:
            return self.or_(s, a)
        return self._add(Op.MUX, (s, a, b))

    def lut(self, fanins: Sequence[Sig], table: np.ndarray) -> Sig:
        """Arbitrary function node from an explicit truth table."""
        table = np.asarray(table, dtype=bool)
        if not table.any():
            return self.const(False)
        if table.all():
            return self.const(True)
        return self._add(Op.LUT, tuple(fanins), table)

    # ------------------------------------------------------------------
    # Word-level arithmetic
    # ------------------------------------------------------------------
    def const_word(self, value: int, width: int) -> Word:
        """Width-bit constant word (two's complement wraparound)."""
        return [self.const(bool((value >> i) & 1)) for i in range(width)]

    def half_adder(self, a: Sig, b: Sig) -> Tuple[Sig, Sig]:
        """Returns (sum, carry)."""
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: Sig, b: Sig, c: Sig) -> Tuple[Sig, Sig]:
        """Returns (sum, carry) of a 1-bit full adder."""
        axb = self.xor_(a, b)
        s = self.xor_(axb, c)
        carry = self.or_(self.and_(a, b), self.and_(axb, c))
        return s, carry

    def add(
        self, a: Word, b: Word, cin: Optional[Sig] = None
    ) -> Tuple[Word, Sig]:
        """Ripple-carry addition of equal-width words.

        Returns ``(sum_word, carry_out)``; the sum has the operand width.
        """
        if len(a) != len(b):
            raise CircuitError(f"add width mismatch: {len(a)} vs {len(b)}")
        carry = cin if cin is not None else self.const(False)
        out: Word = []
        for ai, bi in zip(a, b):
            s, carry = self.full_adder(ai, bi, carry)
            out.append(s)
        return out, carry

    def add_expand(self, a: Word, b: Word) -> Word:
        """Addition with the carry kept: result is ``max(len)+1`` bits."""
        width = max(len(a), len(b))
        s, c = self.add(self.extend(a, width), self.extend(b, width))
        return s + [c]

    def extend(self, a: Word, width: int, signed: bool = False) -> Word:
        """Zero- or sign-extend (or truncate) a word to ``width`` bits."""
        if width <= len(a):
            return list(a[:width])
        fill = a[-1] if (signed and a) else self.const(False)
        return list(a) + [fill] * (width - len(a))

    def invert_word(self, a: Word) -> Word:
        return [self.not_(x) for x in a]

    def sub(self, a: Word, b: Word) -> Tuple[Word, Sig]:
        """Two's complement subtraction ``a - b``.

        Returns ``(difference, no_borrow)`` where ``no_borrow`` (the adder's
        carry-out) is 1 iff ``a >= b`` for unsigned operands.
        """
        diff, carry = self.add(a, self.invert_word(b), cin=self.const(True))
        return diff, carry

    def negate(self, a: Word) -> Word:
        """Two's complement negation (same width, wraps on most-negative)."""
        zero = self.const_word(0, len(a))
        diff, _ = self.sub(zero, a)
        return diff

    def abs_diff(self, a: Word, b: Word) -> Word:
        """|a - b| for unsigned words of equal width.

        Classic conditional-negate form: compute ``d = a - b``; when the
        subtraction borrows (``a < b``) the result is ``-d``, implemented as
        ``(d ^ borrow) + borrow``.
        """
        d, no_borrow = self.sub(a, b)
        borrow = self.not_(no_borrow)
        flipped = [self.xor_(x, borrow) for x in d]
        out, _ = self.add(flipped, self.const_word(0, len(d)), cin=borrow)
        return out

    def mul(self, a: Word, b: Word) -> Word:
        """Unsigned array multiplier; result width is ``len(a) + len(b)``.

        Row-by-row shift-and-add of AND partial products — the standard
        carry-propagate array structure.
        """
        if not a or not b:
            return []
        acc: Word = [self.and_(ai, b[0]) for ai in a]
        result: Word = [acc[0]]
        acc = acc[1:] + [self.const(False)]
        for j in range(1, len(b)):
            pp = [self.and_(ai, b[j]) for ai in a]
            summed, carry = self.add(acc, pp)
            result.append(summed[0])
            acc = summed[1:] + [carry]
        return result + acc

    def mux_word(self, s: Sig, a: Word, b: Word) -> Word:
        """Bitwise 2:1 word mux (``a`` when ``s`` is 0)."""
        if len(a) != len(b):
            raise CircuitError("mux_word width mismatch")
        return [self.mux(s, ai, bi) for ai, bi in zip(a, b)]

    def equals(self, a: Word, b: Word) -> Sig:
        """1 iff the two words are bit-for-bit equal."""
        if len(a) != len(b):
            raise CircuitError("equals width mismatch")
        diffs = [self.xnor_(ai, bi) for ai, bi in zip(a, b)]
        return self.and_(*diffs) if len(diffs) > 1 else diffs[0]

    def less_than(self, a: Word, b: Word) -> Sig:
        """Unsigned ``a < b`` via the subtractor borrow."""
        _, no_borrow = self.sub(a, b)
        return self.not_(no_borrow)

    # ------------------------------------------------------------------
    # Outputs and final build
    # ------------------------------------------------------------------
    def output(self, name: str, sig: Sig) -> None:
        """Declare one primary output."""
        self._outputs.append((name, sig))

    def output_word(self, name: str, word: Word, signed: bool = False) -> None:
        """Declare a word of outputs named ``name[i]`` and record the spec."""
        start = len(self._outputs)
        for i, sig in enumerate(word):
            self._outputs.append((f"{name}[{i}]", sig))
        self._output_words.append(
            WordSpec(name, tuple(range(start, start + len(word))), signed)
        )

    def build(self, name: Optional[str] = None, prune: bool = True) -> Circuit:
        """Finalize into a :class:`Circuit`.

        Args:
            name: Overrides the builder's name.
            prune: Drop nodes not reachable from outputs (default).
        """
        circuit = Circuit(name or self.name)
        for node in self._nodes:
            circuit.add_node(node)
        for oname, sig in self._outputs:
            circuit.add_output(oname, sig)
        circuit.attrs["words"] = list(self._output_words)
        circuit.attrs["input_words"] = list(self._input_words)
        circuit.validate()
        if prune:
            circuit = circuit.pruned()
        return circuit
