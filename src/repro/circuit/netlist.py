"""The :class:`Circuit` container: a combinational gate-level netlist.

Circuits are DAGs whose node ids are topologically ordered by construction:
every node's fanins have strictly smaller ids.  This invariant makes
simulation, levelization, and cone extraction single linear passes, and it is
validated whenever a node is appended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import CircuitError
from .gate import Node, Op


@dataclass(frozen=True)
class PortRef:
    """A named reference to a driving node, used for primary outputs."""

    name: str
    node: int


class Circuit:
    """A combinational netlist with named primary inputs and outputs.

    The same node may drive several outputs, and an output may be driven by
    an input or constant node directly.  ``attrs`` is a free-form metadata
    dictionary; benchmark generators use it to record how output bits group
    into words (see :mod:`repro.core.qor`).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._inputs: List[int] = []
        self._outputs: List[PortRef] = []
        self.attrs: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> int:
        """Append ``node`` and return its id.

        Raises:
            CircuitError: if any fanin id is out of range or not smaller
                than the new node's id (which would break topological order).
        """
        nid = len(self._nodes)
        for f in node.fanins:
            if not 0 <= f < nid:
                raise CircuitError(
                    f"node {nid} ({node.op.value}) has invalid fanin {f}"
                )
        self._nodes.append(node)
        if node.op is Op.INPUT:
            self._inputs.append(nid)
        return nid

    def add_input(self, name: str) -> int:
        """Append a primary input node named ``name``."""
        return self.add_node(Node(Op.INPUT, (), name))

    def add_output(self, name: str, node: int) -> int:
        """Declare node ``node`` as primary output ``name``; returns its index."""
        if not 0 <= node < len(self._nodes):
            raise CircuitError(f"output {name!r} refers to unknown node {node}")
        self._outputs.append(PortRef(name, node))
        return len(self._outputs) - 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes in topological (= id) order."""
        return self._nodes

    @property
    def inputs(self) -> Sequence[int]:
        """Primary input node ids, in declaration order."""
        return self._inputs

    @property
    def outputs(self) -> Sequence[PortRef]:
        """Primary outputs, in declaration order."""
        return self._outputs

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    @property
    def n_outputs(self) -> int:
        return len(self._outputs)

    def node(self, nid: int) -> Node:
        return self._nodes[nid]

    def output_nodes(self) -> List[int]:
        """Driving node id of each output, in output order."""
        return [p.node for p in self._outputs]

    def input_names(self) -> List[str]:
        return [self._nodes[i].name or f"i{i}" for i in self._inputs]

    def output_names(self) -> List[str]:
        return [p.name for p in self._outputs]

    def gate_ids(self) -> Iterator[int]:
        """Ids of all logic nodes (everything that is not a source)."""
        for nid, node in enumerate(self._nodes):
            if node.op.is_gate:
                yield nid

    @property
    def n_gates(self) -> int:
        return sum(1 for _ in self.gate_ids())

    def op_histogram(self) -> Dict[Op, int]:
        """Count of nodes per operation kind."""
        hist: Dict[Op, int] = {}
        for node in self._nodes:
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Integrity and copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`CircuitError` on failure."""
        seen_inputs = []
        for nid, node in enumerate(self._nodes):
            for f in node.fanins:
                if not 0 <= f < nid:
                    raise CircuitError(f"node {nid} fanin {f} breaks topo order")
            if node.op is Op.INPUT:
                seen_inputs.append(nid)
        if seen_inputs != list(self._inputs):
            raise CircuitError("input list out of sync with INPUT nodes")
        for port in self._outputs:
            if not 0 <= port.node < len(self._nodes):
                raise CircuitError(f"output {port.name!r} dangling")

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Shallow-copy the netlist (nodes are immutable and shared)."""
        c = Circuit(name or self.name)
        c._nodes = list(self._nodes)
        c._inputs = list(self._inputs)
        c._outputs = list(self._outputs)
        c.attrs = dict(self.attrs)
        return c

    # ------------------------------------------------------------------
    # Dead-code aware rebuilding
    # ------------------------------------------------------------------
    def live_nodes(self) -> np.ndarray:
        """Boolean mask of nodes reachable from any primary output.

        Primary inputs are always kept (they define the interface).
        """
        live = np.zeros(len(self._nodes), dtype=bool)
        for port in self._outputs:
            live[port.node] = True
        for nid in range(len(self._nodes) - 1, -1, -1):
            if live[nid]:
                for f in self._nodes[nid].fanins:
                    live[f] = True
        live[list(self._inputs)] = True
        return live

    def pruned(self, name: Optional[str] = None) -> "Circuit":
        """Return an equivalent circuit with dead nodes removed.

        Input order, output order, names and ``attrs`` are preserved.
        """
        live = self.live_nodes()
        remap = np.full(len(self._nodes), -1, dtype=np.int64)
        out = Circuit(name or self.name)
        for nid, node in enumerate(self._nodes):
            if not live[nid]:
                continue
            new_fanins = tuple(int(remap[f]) for f in node.fanins)
            remap[nid] = out.add_node(
                Node(node.op, new_fanins, node.name, node.table)
            )
        for port in self._outputs:
            out.add_output(port.name, int(remap[port.node]))
        out.attrs = dict(self.attrs)
        return out

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.name!r}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs}, gates={self.n_gates})"
        )


def iter_fanins(nodes: Sequence[Node], nid: int) -> Iterable[int]:
    """Convenience: fanin ids of node ``nid`` within a node list."""
    return nodes[nid].fanins
