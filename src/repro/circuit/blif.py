"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Only the combinational subset is supported: ``.model``, ``.inputs``,
``.outputs``, ``.names`` and ``.end``.  That subset is exactly what logic
synthesis flows exchange for BLASYS-style work (the original BLASYS release
drives ABC/Yosys through BLIF files, so round-tripping it keeps this library
interoperable with those tools).

Writing maps every primitive gate onto a ``.names`` cover; reading produces
LUT nodes, one per ``.names`` block.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..errors import ParseError
from .builder import CircuitBuilder
from .gate import Op
from .netlist import Circuit

PathOrFile = Union[str, io.TextIOBase]


def _signal_names(circuit: Circuit) -> List[str]:
    """Stable textual name for every node id."""
    names = []
    for nid, node in enumerate(circuit.nodes):
        if node.op is Op.INPUT and node.name:
            names.append(node.name)
        else:
            names.append(f"n{nid}")
    return names


def _cover_lines(op: Op, arity: int, table) -> List[str]:
    """SOP cover lines (input-plane + " 1") implementing a primitive op."""
    if op is Op.BUF:
        return ["1 1"]
    if op is Op.NOT:
        return ["0 1"]
    if op is Op.AND:
        return ["1" * arity + " 1"]
    if op is Op.NAND:
        return ["-" * i + "0" + "-" * (arity - 1 - i) + " 1" for i in range(arity)]
    if op is Op.OR:
        return ["-" * i + "1" + "-" * (arity - 1 - i) + " 1" for i in range(arity)]
    if op is Op.NOR:
        return ["0" * arity + " 1"]
    if op in (Op.XOR, Op.XNOR):
        want = 1 if op is Op.XOR else 0
        lines = []
        for row in range(1 << arity):
            bits = [(row >> i) & 1 for i in range(arity)]
            if sum(bits) % 2 == want:
                lines.append("".join(str(b) for b in bits) + " 1")
        return lines
    if op is Op.MUX:  # fanins (s, a, b): out = a when s=0 else b
        return ["01- 1", "1-1 1"]
    if op is Op.LUT:
        lines = []
        for row in np.nonzero(np.asarray(table, dtype=bool))[0]:
            bits = "".join(str((int(row) >> i) & 1) for i in range(arity))
            lines.append(bits + " 1")
        return lines
    raise ParseError(f"cannot emit BLIF for op {op}")  # pragma: no cover


def write_blif(circuit: Circuit, dest: PathOrFile) -> None:
    """Write ``circuit`` to a BLIF file or file-like object."""
    own = isinstance(dest, str)
    fh = open(dest, "w") if own else dest
    try:
        names = _signal_names(circuit)
        fh.write(f".model {circuit.name}\n")
        fh.write(".inputs " + " ".join(names[i] for i in circuit.inputs) + "\n")
        fh.write(".outputs " + " ".join(p.name for p in circuit.outputs) + "\n")
        for nid, node in enumerate(circuit.nodes):
            if node.op is Op.INPUT:
                continue
            if node.op is Op.CONST0:
                fh.write(f".names {names[nid]}\n")
                continue
            if node.op is Op.CONST1:
                fh.write(f".names {names[nid]}\n1\n")
                continue
            ins = " ".join(names[f] for f in node.fanins)
            fh.write(f".names {ins} {names[nid]}\n")
            for line in _cover_lines(node.op, node.arity, node.table):
                fh.write(line + "\n")
        # Outputs that are not the canonical signal name need a buffer.
        for port in circuit.outputs:
            if port.name != names[port.node]:
                fh.write(f".names {names[port.node]} {port.name}\n1 1\n")
        fh.write(".end\n")
    finally:
        if own:
            fh.close()


def _cover_to_table(n_inputs: int, lines: Sequence[Tuple[str, str]]) -> np.ndarray:
    """Expand a BLIF cover into an explicit truth table.

    BLIF allows both on-set ("... 1") and off-set ("... 0") covers, but not a
    mixture; we honour whichever polarity the block uses.
    """
    if not lines:
        return np.zeros(1 << n_inputs, dtype=bool)
    polarities = {out for _, out in lines}
    if len(polarities) > 1:
        raise ParseError("mixed on-set/off-set cover in .names block")
    on_set = polarities == {"1"}
    table = np.zeros(1 << n_inputs, dtype=bool)
    idx = np.arange(1 << n_inputs, dtype=np.uint32)
    for plane, _ in lines:
        if len(plane) != n_inputs:
            raise ParseError(
                f"cover line width {len(plane)} != {n_inputs} inputs"
            )
        mask = np.ones(1 << n_inputs, dtype=bool)
        for i, ch in enumerate(plane):
            if ch == "-":
                continue
            bit = (idx >> np.uint32(i)) & 1
            mask &= bit == (1 if ch == "1" else 0)
        table |= mask
    return table if on_set else ~table


def _tokenize(fh: Iterable[str]) -> Iterable[List[str]]:
    """Yield logical BLIF lines (continuations joined, comments stripped)."""
    pending = ""
    for raw in fh:
        line = raw.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        tokens = line.split()
        if tokens:
            yield tokens
    if pending.split():
        yield pending.split()


def read_blif(src: PathOrFile) -> Circuit:
    """Parse a combinational BLIF file into a :class:`Circuit`.

    Every ``.names`` block becomes a LUT node (constants become constant
    nodes).  Signals are resolved lazily so block order in the file does not
    matter.
    """
    own = isinstance(src, str)
    fh = open(src) if own else src
    try:
        model = "circuit"
        inputs: List[str] = []
        outputs: List[str] = []
        blocks: Dict[str, Tuple[List[str], List[Tuple[str, str]]]] = {}
        current: Tuple[str, List[str], List[Tuple[str, str]]] = ("", [], [])
        in_block = False

        def close_block() -> None:
            nonlocal in_block
            if in_block:
                out, ins, lines = current
                blocks[out] = (ins, lines)
                in_block = False

        for tokens in _tokenize(fh):
            head = tokens[0]
            if head == ".model":
                model = tokens[1] if len(tokens) > 1 else model
            elif head == ".inputs":
                close_block()
                inputs.extend(tokens[1:])
            elif head == ".outputs":
                close_block()
                outputs.extend(tokens[1:])
            elif head == ".names":
                close_block()
                if len(tokens) < 2:
                    raise ParseError(".names needs at least an output")
                current = (tokens[-1], tokens[1:-1], [])
                in_block = True
            elif head == ".end":
                close_block()
                break
            elif head.startswith("."):
                close_block()
                raise ParseError(f"unsupported BLIF construct {head}")
            elif in_block:
                if len(tokens) == 1:  # constant-1 style line
                    current[2].append(("", tokens[0]))
                else:
                    current[2].append((tokens[0], tokens[1]))
            else:
                raise ParseError(f"unexpected line: {' '.join(tokens)}")
        close_block()
    finally:
        if own:
            fh.close()

    builder = CircuitBuilder(model)
    sig_of: Dict[str, int] = {}
    for name in inputs:
        sig_of[name] = builder.input(name)

    def resolve(name: str) -> int:
        """Iteratively elaborate the block driving ``name``."""
        if name in sig_of:
            return sig_of[name]
        stack = [name]
        in_progress = set()
        while stack:
            top = stack[-1]
            if top in sig_of:
                stack.pop()
                in_progress.discard(top)
                continue
            if top not in blocks:
                raise ParseError(f"undriven signal {top!r}")
            ins, lines = blocks[top]
            missing = [i for i in ins if i not in sig_of]
            if missing:
                cyclic = [m for m in missing if m in in_progress]
                if cyclic:
                    raise ParseError(
                        f"combinational cycle through {cyclic[0]!r}"
                    )
                in_progress.add(top)
                stack.extend(missing)
                continue
            table = _cover_to_table(len(ins), lines)
            if not ins:
                sig_of[top] = builder.const(bool(table[0]))
            else:
                sig_of[top] = builder.lut([sig_of[i] for i in ins], table)
            stack.pop()
            in_progress.discard(top)
        return sig_of[name]

    for name in outputs:
        builder.output(name, resolve(name))
    return builder.build(prune=True)
