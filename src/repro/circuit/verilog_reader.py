"""Structural Verilog reader (the subset :mod:`repro.circuit.verilog` emits).

Supported constructs: one ``module`` with scalar ports, ``input`` /
``output`` / ``wire`` declarations, and continuous ``assign`` statements
whose right-hand sides use ``~ & | ^ ?:``, parentheses, and the literals
``1'b0`` / ``1'b1``.  That subset is closed under this library's writer, so
``read_verilog(write_verilog(c))`` round-trips any circuit, and hand-
written gate-level files in the same style load too.

The expression grammar (precedence low→high, as in Verilog):

    ternary := or_expr ('?' ternary ':' ternary)?
    or_expr := xor_expr ('|' xor_expr)*
    xor_expr := and_expr ('^' and_expr)*
    and_expr := unary ('&' unary)*
    unary := '~' unary | '(' ternary ')' | literal | identifier
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, Tuple, Union

from ..errors import ParseError
from .builder import CircuitBuilder
from .netlist import Circuit

PathOrFile = Union[str, io.TextIOBase]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<id>[A-Za-z_$][A-Za-z0-9_$]*)"
    r"|(?P<lit>1'b[01])"
    r"|(?P<sym>[~&|^?:();,=]))"
)

_KEYWORDS = {"module", "endmodule", "input", "output", "wire", "assign"}


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize near {remainder[:30]!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    return [t for t in tokens if t]


class _ExprParser:
    """Recursive-descent parser building gates straight into a builder."""

    def __init__(self, tokens: List[str], builder: CircuitBuilder, signals: Dict[str, int]):
        self.tokens = tokens
        self.pos = 0
        self.builder = builder
        self.signals = signals

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def take(self, expected: str = None) -> str:
        tok = self.peek()
        if expected is not None and tok != expected:
            raise ParseError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    def parse(self) -> int:
        out = self.ternary()
        if self.pos != len(self.tokens):
            raise ParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return out

    def ternary(self) -> int:
        cond = self.or_expr()
        if self.peek() == "?":
            self.take("?")
            then = self.ternary()
            self.take(":")
            alt = self.ternary()
            return self.builder.mux(cond, alt, then)
        return cond

    def or_expr(self) -> int:
        terms = [self.xor_expr()]
        while self.peek() == "|":
            self.take("|")
            terms.append(self.xor_expr())
        return terms[0] if len(terms) == 1 else self.builder.or_(*terms)

    def xor_expr(self) -> int:
        terms = [self.and_expr()]
        while self.peek() == "^":
            self.take("^")
            terms.append(self.and_expr())
        return terms[0] if len(terms) == 1 else self.builder.xor_(*terms)

    def and_expr(self) -> int:
        terms = [self.unary()]
        while self.peek() == "&":
            self.take("&")
            terms.append(self.unary())
        return terms[0] if len(terms) == 1 else self.builder.and_(*terms)

    def unary(self) -> int:
        tok = self.peek()
        if tok == "~":
            self.take("~")
            return self.builder.not_(self.unary())
        if tok == "(":
            self.take("(")
            inner = self.ternary()
            self.take(")")
            return inner
        if tok in ("1'b0", "1'b1"):
            self.take()
            return self.builder.const(tok.endswith("1"))
        if tok and (tok[0].isalpha() or tok[0] in "_$"):
            self.take()
            if tok not in self.signals:
                raise ParseError(f"use of undeclared/undriven signal {tok!r}")
            return self.signals[tok]
        raise ParseError(f"unexpected token {tok!r} in expression")


def read_verilog(src: PathOrFile) -> Circuit:
    """Parse a structural Verilog module into a :class:`Circuit`.

    Assign statements must appear after the signals they read (the writer
    guarantees topological order; out-of-order files are rejected rather
    than re-sorted, keeping the reader predictable).
    """
    own = isinstance(src, str)
    fh = open(src) if own else src
    try:
        text = _strip_comments(fh.read())
    finally:
        if own:
            fh.close()

    module_match = re.search(
        r"module\s+([A-Za-z_$][\w$]*)\s*\((.*?)\)\s*;(.*)endmodule",
        text,
        flags=re.S,
    )
    if module_match is None:
        raise ParseError("no module ... endmodule block found")
    name, _ports, body = module_match.groups()

    inputs: List[str] = []
    outputs: List[str] = []
    assigns: List[Tuple[str, str]] = []
    for statement in body.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        head = statement.split(None, 1)[0]
        if head == "input":
            inputs.extend(s.strip() for s in statement[5:].split(","))
        elif head == "output":
            outputs.extend(s.strip() for s in statement[6:].split(","))
        elif head == "wire":
            continue  # declarations carry no logic
        elif head == "assign":
            lhs, _, rhs = statement[6:].partition("=")
            if not rhs:
                raise ParseError(f"malformed assign: {statement!r}")
            assigns.append((lhs.strip(), rhs.strip()))
        else:
            raise ParseError(f"unsupported statement: {statement[:40]!r}")

    builder = CircuitBuilder(name)
    signals: Dict[str, int] = {}
    for port in inputs:
        if not port:
            raise ParseError("empty input declaration")
        signals[port] = builder.input(port)
    for lhs, rhs in assigns:
        if lhs in signals and lhs not in outputs:
            raise ParseError(f"signal {lhs!r} driven twice")
        parser = _ExprParser(_tokenize(rhs), builder, signals)
        signals[lhs] = parser.parse()
    for port in outputs:
        if port not in signals:
            raise ParseError(f"output {port!r} is never driven")
        builder.output(port, signals[port])
    return builder.build(prune=True)
