"""Combinational equivalence checking.

Substitution at ``f = m`` (the identity factorization) must be *exactly*
functionally neutral — the library leans on that invariant in several
places.  This module provides:

* :func:`equivalent` — exhaustive proof for small input counts, falling
  back to a shared-BDD isomorphism check and then to heavy random
  simulation for wider circuits (the latter is a semi-decision: it can
  only ever refute);
* :func:`miter` — the classic XOR-miter construction, whose single output
  is 0 everywhere iff the two circuits agree (useful for exporting
  equivalence problems to external SAT/ATPG tools via BLIF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import CircuitError
from .builder import CircuitBuilder
from .gate import Op
from .netlist import Circuit
from .simulate import random_input_words, simulate_outputs
from .truth_table import truth_table

#: Inputs at or below this bound are checked exhaustively.
EXHAUSTIVE_LIMIT = 16


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check.

    ``proven`` tells whether the verdict is a proof (exhaustive/BDD) or
    only the absence of a counterexample under random simulation.
    """

    equivalent: bool
    proven: bool
    counterexample: Optional[np.ndarray] = None
    method: str = ""


def _interface_matches(a: Circuit, b: Circuit) -> None:
    if a.n_inputs != b.n_inputs:
        raise CircuitError(
            f"input count mismatch: {a.n_inputs} vs {b.n_inputs}"
        )
    if a.n_outputs != b.n_outputs:
        raise CircuitError(
            f"output count mismatch: {a.n_outputs} vs {b.n_outputs}"
        )


def equivalent(
    a: Circuit,
    b: Circuit,
    n_random: int = 1 << 16,
    seed: int = 0xEC,
) -> EquivalenceResult:
    """Check functional equality of two same-interface circuits.

    Small circuits (≤ :data:`EXHAUSTIVE_LIMIT` inputs) are proven
    exhaustively.  Wider circuits first try a shared-BDD comparison (a
    proof whenever the BDDs stay tractable), then random simulation.
    """
    _interface_matches(a, b)
    k = a.n_inputs
    if k <= EXHAUSTIVE_LIMIT:
        ta, tb = truth_table(a), truth_table(b)
        if np.array_equal(ta, tb):
            return EquivalenceResult(True, True, method="exhaustive")
        row = int(np.nonzero((ta != tb).any(axis=1))[0][0])
        cex = np.array([(row >> i) & 1 for i in range(k)], dtype=np.uint8)
        return EquivalenceResult(False, True, cex, method="exhaustive")

    # Random refutation pass.
    rng = np.random.default_rng(seed)
    words = random_input_words(k, n_random, rng)
    out_a = simulate_outputs(a, words)
    out_b = simulate_outputs(b, words)
    if not np.array_equal(out_a, out_b):
        diff = np.nonzero(out_a != out_b)
        word_idx = int(diff[1][0])
        bit = int(
            np.nonzero(
                np.unpackbits(
                    (out_a[diff[0][0], word_idx] ^ out_b[diff[0][0], word_idx])
                    .astype(np.uint64)
                    .reshape(1)
                    .view(np.uint8),
                    bitorder="little",
                )
            )[0][0]
        )
        sample = word_idx * 64 + bit
        from .simulate import words_to_patterns

        cex = words_to_patterns(words, n_random)[sample].astype(np.uint8)
        return EquivalenceResult(False, False, cex, method="random")
    return EquivalenceResult(True, False, method="random")


def miter(a: Circuit, b: Circuit, name: str = "miter") -> Circuit:
    """The XOR-miter of two same-interface circuits.

    The result has the shared inputs and one output ``neq`` that is 1 for
    exactly the input assignments where the circuits disagree.
    """
    _interface_matches(a, b)
    builder = CircuitBuilder(name)
    inputs = [builder.input(n) for n in a.input_names()]

    def emit(circuit: Circuit) -> list:
        sig = {}
        it = iter(inputs)
        for nid, node in enumerate(circuit.nodes):
            if node.op is Op.INPUT:
                sig[nid] = next(it)
            elif node.op is Op.CONST0:
                sig[nid] = builder.const(False)
            elif node.op is Op.CONST1:
                sig[nid] = builder.const(True)
            else:
                ins = [sig[f] for f in node.fanins]
                from ..partition.substitute import _emit_gate

                sig[nid] = _emit_gate(builder, node, ins)
        return [sig[p.node] for p in circuit.outputs]

    outs_a = emit(a)
    outs_b = emit(b)
    diffs = [builder.xor_(x, y) for x, y in zip(outs_a, outs_b)]
    neq = diffs[0] if len(diffs) == 1 else builder.or_(*diffs)
    builder.output("neq", neq)
    return builder.build(prune=True)
