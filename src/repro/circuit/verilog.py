"""Structural Verilog writer.

Emits a synthesizable, purely combinational module built from ``assign``
statements.  This is the hand-off format an "industrial strength" flow would
consume; it also makes approximate circuits easy to eyeball.  LUT nodes are
expanded into sum-of-products expressions.
"""

from __future__ import annotations

import io
import re
from typing import List, Union

import numpy as np

from ..errors import CircuitError
from .gate import Op
from .netlist import Circuit

PathOrFile = Union[str, io.TextIOBase]

_IDENT_RE = re.compile(r"[^A-Za-z0-9_$]")


def _escape(name: str) -> str:
    """Turn an arbitrary signal name into a valid Verilog identifier."""
    clean = _IDENT_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "s_" + clean
    return clean


def _expr(op: Op, ins: List[str], table) -> str:
    if op is Op.CONST0:
        return "1'b0"
    if op is Op.CONST1:
        return "1'b1"
    if op is Op.BUF:
        return ins[0]
    if op is Op.NOT:
        return f"~{ins[0]}"
    joiner = {Op.AND: " & ", Op.OR: " | ", Op.XOR: " ^ "}
    if op in joiner:
        return joiner[op].join(ins)
    if op is Op.NAND:
        return "~(" + " & ".join(ins) + ")"
    if op is Op.NOR:
        return "~(" + " | ".join(ins) + ")"
    if op is Op.XNOR:
        return "~(" + " ^ ".join(ins) + ")"
    if op is Op.MUX:
        s, a, b = ins
        return f"{s} ? {b} : {a}"
    if op is Op.LUT:
        terms = []
        for row in np.nonzero(np.asarray(table, dtype=bool))[0]:
            lits = []
            for i, name in enumerate(ins):
                lits.append(name if (int(row) >> i) & 1 else f"~{name}")
            terms.append("(" + " & ".join(lits) + ")")
        return " | ".join(terms) if terms else "1'b0"
    raise CircuitError(f"cannot emit Verilog for op {op}")  # pragma: no cover


def write_verilog(circuit: Circuit, dest: PathOrFile) -> None:
    """Write ``circuit`` as a structural Verilog module."""
    own = isinstance(dest, str)
    fh = open(dest, "w") if own else dest
    try:
        in_names = [
            _escape(circuit.node(i).name or f"i{i}") for i in circuit.inputs
        ]
        out_names = [_escape(p.name) for p in circuit.outputs]
        sig = {}
        for i, nid in enumerate(circuit.inputs):
            sig[nid] = in_names[i]
        ports = ", ".join(in_names + out_names)
        fh.write(f"module {_escape(circuit.name)}({ports});\n")
        for name in in_names:
            fh.write(f"  input {name};\n")
        for name in out_names:
            fh.write(f"  output {name};\n")
        wires = []
        for nid, node in enumerate(circuit.nodes):
            if node.op is Op.INPUT:
                continue
            sig[nid] = f"w{nid}"
            wires.append(sig[nid])
        if wires:
            fh.write("  wire " + ", ".join(wires) + ";\n")
        for nid, node in enumerate(circuit.nodes):
            if node.op is Op.INPUT:
                continue
            ins = [sig[f] for f in node.fanins]
            fh.write(f"  assign {sig[nid]} = {_expr(node.op, ins, node.table)};\n")
        for port, name in zip(circuit.outputs, out_names):
            fh.write(f"  assign {name} = {sig[port.node]};\n")
        fh.write("endmodule\n")
    finally:
        if own:
            fh.close()
