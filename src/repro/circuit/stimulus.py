"""Monte-Carlo stimulus generation with per-word magnitude control.

By default every primary input is an independent fair coin.  That is the
right stimulus for operands, but it is *degenerate* for accumulator-style
inputs: a uniform 32-bit accumulator makes an 8×8 product numerically
invisible under relative error (|product| / |acc| ≈ 3e-5), so any
approximate-synthesis flow could delete the entire multiplier "for free" —
clearly not the regime the paper's MAC/SAD rows describe.

Benchmark circuits therefore may declare a *stimulus* attribute::

    circuit.attrs["stimulus"] = {"acc": 18}   # drive acc in [0, 2**18)

mapping input-word names to the number of active low bits; undeclared
words (and inputs outside any word) stay uniform full-width.  The chosen
widths model mid-accumulation magnitudes — an accumulator a few products
into its sum (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .netlist import Circuit
from .simulate import pack_bits, random_input_words


def stimulus_input_words(
    circuit: Circuit, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Packed input values honouring the circuit's stimulus attribute.

    Returns shape ``(n_inputs, words_for(n_samples))``, like
    :func:`repro.circuit.simulate.random_input_words`.
    """
    word_specs = circuit.attrs.get("input_words") or []
    stimulus: Dict[str, int] = circuit.attrs.get("stimulus") or {}
    if not word_specs or not stimulus:
        return random_input_words(circuit.n_inputs, n_samples, rng)

    bits = np.zeros((circuit.n_inputs, n_samples), dtype=np.uint8)
    covered = np.zeros(circuit.n_inputs, dtype=bool)
    for spec in word_specs:
        active = min(stimulus.get(spec.name, spec.width), spec.width)
        values = rng.integers(0, np.int64(1) << np.int64(active),
                              size=n_samples, dtype=np.int64)
        for bit_pos, port in enumerate(spec.indices):
            bits[port] = (values >> bit_pos) & 1
            covered[port] = True
    uncovered = np.flatnonzero(~covered)
    if uncovered.size:
        bits[uncovered] = rng.integers(
            0, 2, size=(uncovered.size, n_samples), dtype=np.uint8
        )
    return pack_bits(bits)
