"""Client side of the exploration service: connect, submit, wait.

:class:`ServiceClient` wraps the newline-delimited JSON protocol of
:mod:`repro.service.server` in plain method calls.  Each request opens a
fresh connection — the daemon is threaded and requests are short, so
connection reuse buys nothing and per-request sockets keep the client
trivially fork/thread-safe.  Server-side refusals come back as the
exceptions the library already defines: an admission refusal raises
:class:`~repro.errors.JobRejected`, any other service error raises
:class:`~repro.errors.ExplorationError`.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional

from ..errors import ExplorationError, JobRejected
from .protocol import JobRecord, JobSpec


class ServiceClient:
    """Talk to a running ``blasys serve`` daemon.

    Args:
        socket_path: The daemon's Unix socket.
        timeout: Per-request socket timeout in seconds (also the default
            budget of :meth:`wait_ready`).
    """

    def __init__(self, socket_path: str, timeout: float = 60.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def request(
        self, op: str, rpc_timeout: Optional[float] = None, **payload
    ) -> Dict:
        budget = self.timeout if rpc_timeout is None else rpc_timeout
        message = dict(payload)
        message["op"] = op
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(budget)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise ExplorationError(
                    f"cannot reach service at {self.socket_path}: {exc}"
                ) from exc
            try:
                sock.sendall((json.dumps(message) + "\n").encode())
                raw = b""
                while not raw.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            except socket.timeout as exc:
                # One failure mode this covers: a daemon killed with
                # SIGKILL leaves its listening socket's backlog alive in
                # orphaned pool workers — a connection racing the
                # restarted daemon's re-bind can land there and would
                # otherwise hang for the full client timeout.  Surfacing
                # it as ExplorationError makes wait_ready() retry on a
                # fresh connection (which reaches the re-bound socket).
                raise ExplorationError(
                    f"service at {self.socket_path} did not answer "
                    f"'{op}' within {budget:.1f}s"
                ) from exc
        if not raw:
            raise ExplorationError(
                f"service at {self.socket_path} closed the connection"
            )
        response = json.loads(raw.decode())
        if response.get("ok"):
            return response
        error = response.get("error", "unknown service error")
        if response.get("rejected"):
            raise JobRejected(error)
        raise ExplorationError(error)

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until the daemon answers ``ping`` (startup race helper)."""
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            try:
                # Short per-ping budget: a ping swallowed by a stale
                # socket (see request()) must not consume the whole
                # readiness window before the first retry.
                self.request("ping", rpc_timeout=1.0)
                return
            except ExplorationError:
                if time.monotonic() >= deadline:
                    raise ExplorationError(
                        f"service at {self.socket_path} did not come up "
                        f"within {budget:.1f}s"
                    )
                time.sleep(0.05)

    # -- operations ------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        return self.request("submit", spec=spec.to_dict())["job_id"]

    def status(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self.request("status", job_id=job_id)["job"])

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        return JobRecord.from_dict(
            self.request("wait", job_id=job_id, timeout=timeout)["job"]
        )

    def list_jobs(self) -> List[JobRecord]:
        return [
            JobRecord.from_dict(j) for j in self.request("list")["jobs"]
        ]

    def cancel(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self.request("cancel", job_id=job_id)["job"])

    def stats(self) -> Dict:
        return self.request("stats")["stats"]

    def shutdown(self, drain: bool = False) -> None:
        self.request("shutdown", drain=drain)
