"""The exploration scheduler: admission control, isolation, recovery.

This is the service's core (DESIGN.md "Service"): a bounded FIFO of
:class:`~repro.service.protocol.JobSpec`\\ s multiplexed over shared
runtime assets by a small pool of worker threads.  The contracts, in
order of appearance:

**Admission** (:meth:`ExplorationScheduler.submit`) is decided at submit
time, never later: a job is rejected with a concrete reason
(:class:`~repro.errors.JobRejected`) when the service is draining, the
active-job bound is reached, or the summed memory estimate of admitted
jobs (:func:`~repro.service.protocol.estimate_job_bytes` — the streaming
engine's own budget arithmetic) would exceed the configured budget.
An accepted job is journaled durably before the caller gets its id.

**Sharing**: all jobs profile through one
:class:`~repro.runtime.ProfileCache` (identical window truth tables
across concurrent jobs factorize once) and lease shard pools from one
:class:`~repro.runtime.executor.ShardExecutorRegistry` (jobs with
identical streaming contexts reuse a warm pool; a worker budget degrades
excess jobs to in-process execution instead of oversubscribing).

**Isolation**: each job runs under its own
:class:`~repro.runtime.CancelToken` — a deadline expiry, operator
cancel, or crash-looping failure terminates *that job's* record and
nothing else; concurrent jobs keep their workers, cache, and results.

**Recovery** (:meth:`recover`): on restart the journal replays; terminal
jobs keep their results, and every non-terminal job — queued or running
at the crash — is re-enqueued, a previously-running job resuming from
its per-job checkpoint.  Because checkpoints are fingerprinted and
resume is byte-identical (PR 7's contract), a job's final trajectory is
the same whether the service crashed zero or N times while running it.

**Shutdown** (:meth:`shutdown`): ``drain=True`` finishes the queue;
``drain=False`` (the SIGTERM path) cancels running jobs with
:class:`~repro.errors.ServiceShutdown` — each flushes a final checkpoint
and stays non-terminal in the journal, so the next start continues where
this one stopped.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.explorer import explore
from ..errors import (
    ExplorationError,
    JobCancelled,
    JobDeadlineExceeded,
    JobRejected,
    ServiceShutdown,
)
from ..runtime import (
    CancelToken,
    ProfileCache,
    RunContext,
    RuntimeStats,
)
from ..runtime.executor import ShardExecutorRegistry
from .journal import JobJournal
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    estimate_job_bytes,
)


class ExplorationScheduler:
    """Supervised multi-job exploration over shared runtime assets.

    Args:
        journal_dir: Service state directory — holds the job journal,
            per-job checkpoints (``<job-id>.ckpt``), and (by default) the
            shared profile cache.
        max_queue: Bound on *active* jobs (queued + running); submits
            beyond it are rejected.
        max_memory_bytes: Bound on the summed memory estimate of active
            jobs (``0`` = unbounded).
        max_concurrent: Worker threads (concurrent explorations).
        cache_dir: Shared profile cache directory (default:
            ``journal_dir/cache``; ``""`` disables the shared cache).
        max_pool_workers: Total shard-worker budget across all leased
            pools (``0`` = unbounded); see
            :class:`~repro.runtime.executor.ShardExecutorRegistry`.
        checkpoint_every: Commit period of per-job checkpoint writes.
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        max_queue: int = 8,
        max_memory_bytes: int = 0,
        max_concurrent: int = 1,
        cache_dir: Optional[str] = None,
        max_pool_workers: int = 0,
        checkpoint_every: int = 1,
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.dir / "journal.jsonl")
        self.max_queue = int(max_queue)
        self.max_memory_bytes = int(max_memory_bytes)
        self.max_concurrent = max(int(max_concurrent), 1)
        self.checkpoint_every = int(checkpoint_every)
        self.stats = stats if stats is not None else RuntimeStats()
        if cache_dir is None:
            cache_dir = str(self.dir / "cache")
        self.cache = ProfileCache(cache_dir) if cache_dir else None
        self.registry = ShardExecutorRegistry(
            max_total_workers=max_pool_workers, stats=self.stats
        )
        self._cond = threading.Condition()
        self._journal_lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._estimates: Dict[str, int] = {}
        self._queue: List[str] = []
        self._tokens: Dict[str, CancelToken] = {}
        self._running: set = set()
        self._seq = 0
        self._closing = False
        self._drain_mode = False
        self._workers: List[threading.Thread] = []

    # -- journal helpers -----------------------------------------------
    def _journal_event(self, event: Dict) -> None:
        with self._journal_lock:
            self.journal.append(event)

    def _checkpoint_path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.ckpt"

    # -- lifecycle ------------------------------------------------------
    def recover(self) -> int:
        """Rebuild job state from the journal; re-enqueue unfinished jobs.

        Returns the number of recovered (re-enqueued) jobs.  Also
        compacts the journal to one snapshot event per job, bounding its
        growth across restarts.
        """
        jobs: Dict[str, JobRecord] = {}
        for event in self.journal.replay():
            op = event.get("op")
            if op == "submit":
                rec = JobRecord.from_dict(event["job"])
                jobs[rec.job_id] = rec
            elif op == "state" and event.get("job_id") in jobs:
                jobs[event["job_id"]].state = event["state"]
            elif op == "result" and event.get("job_id") in jobs:
                rec = jobs[event["job_id"]]
                rec.state = event["state"]
                rec.error = event.get("error", "")
                rec.trajectory = event.get("trajectory")
                rec.n_evaluations = int(event.get("n_evaluations", 0))
        recovered = 0
        with self._cond:
            self._jobs = jobs
            self._seq = max((r.seq for r in jobs.values()), default=0)
            pending = sorted(
                (r for r in jobs.values() if not r.terminal),
                key=lambda r: r.seq,
            )
            for rec in pending:
                # A job that was RUNNING at the crash resumes from its
                # checkpoint (if one was flushed); a QUEUED job simply
                # starts.  Either way the trajectory it eventually
                # produces is byte-identical to an uninterrupted run.
                rec.resumed = self._checkpoint_path(rec.job_id).exists()
                rec.state = QUEUED
                self._queue.append(rec.job_id)
                try:
                    self._estimates[rec.job_id] = estimate_job_bytes(rec.spec)
                except Exception:
                    self._estimates[rec.job_id] = 0
                recovered += 1
            self.stats.jobs_recovered += recovered
            snapshot = [
                {"op": "submit", "job": r.to_dict()}
                for r in sorted(jobs.values(), key=lambda r: r.seq)
            ]
            self._cond.notify_all()
        with self._journal_lock:
            self.journal.compact(snapshot)
        return recovered

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        while len(self._workers) < self.max_concurrent:
            t = threading.Thread(
                target=self._worker,
                name=f"explore-worker-{len(self._workers)}",
                daemon=True,
            )
            t.start()
            self._workers.append(t)

    def shutdown(self, drain: bool = False, timeout: Optional[float] = None) -> None:
        """Stop the scheduler.

        ``drain=True`` finishes every queued job first; ``drain=False``
        cancels running jobs with :class:`~repro.errors.ServiceShutdown`
        (they flush a final checkpoint and stay non-terminal in the
        journal — the next start resumes them) and leaves queued jobs
        queued.  Either way the shared pools are torn down and no
        workers leak.
        """
        with self._cond:
            self._closing = True
            self._drain_mode = drain
            if not drain:
                for token in self._tokens.values():
                    token.shutdown()
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout)
        self._workers = []
        self.registry.close()

    # -- admission ------------------------------------------------------
    def _reject(self, reason: str) -> None:
        self.stats.jobs_rejected += 1
        raise JobRejected(reason)

    def submit(self, spec: JobSpec) -> str:
        """Admit a job or raise with the concrete refusal reason.

        Raises:
            ExplorationError: The spec itself is invalid (bad config
                keys/values, missing circuit) — not an admission verdict.
            JobRejected: The service cannot serve the job right now
                (draining, queue full, memory budget exceeded).
        """
        spec.validate()
        circuit = spec.load_circuit()
        estimate = estimate_job_bytes(spec, circuit)
        with self._cond:
            if self._closing:
                self._reject("service is shutting down")
            active = len(self._queue) + len(self._running)
            if active >= self.max_queue:
                self._reject(
                    f"queue full: {active} active jobs at the limit of "
                    f"{self.max_queue}"
                )
            if self.max_memory_bytes:
                held = sum(self._estimates.values())
                if held + estimate > self.max_memory_bytes:
                    self._reject(
                        f"memory budget exceeded: {held} bytes held by "
                        f"active jobs + {estimate} estimated for this job "
                        f"> budget {self.max_memory_bytes}"
                    )
            self._seq += 1
            job_id = f"job-{self._seq:04d}"
            if not spec.name:
                spec = JobSpec(
                    bench=spec.bench, blif=spec.blif, name=circuit.name,
                    deadline_s=spec.deadline_s, config=spec.config,
                )
            record = JobRecord(job_id, spec, state=QUEUED, seq=self._seq)
            self._jobs[job_id] = record
            self._estimates[job_id] = estimate
            self._queue.append(job_id)
            self.stats.jobs_admitted += 1
            # Journal the admission *before* the caller learns the id and
            # before any worker can journal this job's state transitions
            # (the queue append above happens-before a worker pop).
            self._journal_event({"op": "submit", "job": record.to_dict()})
            self._cond.notify_all()
        return job_id

    # -- queries --------------------------------------------------------
    def status(self, job_id: str) -> JobRecord:
        with self._cond:
            record = self._jobs.get(job_id)
            if record is None:
                raise ExplorationError(f"unknown job {job_id!r}")
            return record

    def list_jobs(self) -> List[JobRecord]:
        with self._cond:
            return sorted(self._jobs.values(), key=lambda r: r.seq)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state.

        Returns the (possibly still non-terminal) record if the
        scheduler starts shutting down while waiting; raises
        :class:`~repro.errors.ExplorationError` on timeout.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._cond:
            while True:
                record = self._jobs.get(job_id)
                if record is None:
                    raise ExplorationError(f"unknown job {job_id!r}")
                if record.terminal or self._closing:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ExplorationError(
                            f"timed out waiting for {job_id} "
                            f"(state {record.state})"
                        )
                self._cond.wait(
                    0.2 if remaining is None else min(0.2, remaining)
                )

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job (terminal jobs are left alone)."""
        with self._cond:
            record = self._jobs.get(job_id)
            if record is None:
                raise ExplorationError(f"unknown job {job_id!r}")
            if record.terminal:
                return record
            if record.state == QUEUED:
                self._queue.remove(job_id)
                self._estimates.pop(job_id, None)
                record.state = CANCELLED
                record.error = "cancelled before start"
                self.stats.jobs_cancelled += 1
                self._journal_event({
                    "op": "result", "job_id": job_id, "state": CANCELLED,
                    "error": record.error, "trajectory": None,
                    "n_evaluations": 0,
                })
                self._cond.notify_all()
                return record
            token = self._tokens.get(job_id)
            if token is not None:
                token.cancel("cancelled by operator")
            return record

    def stats_snapshot(self) -> Dict:
        """Service counters for the ``stats`` endpoint."""
        with self._cond:
            return {
                "summary": self.stats.summary(),
                "service": self.stats.service_summary(),
                "queued": len(self._queue),
                "running": len(self._running),
                "jobs": len(self._jobs),
                "pools_built": self.registry.pools_built,
                "pool_leases": self.registry.leases,
                "pool_leases_rejected": self.registry.rejected_leases,
            }

    # -- worker side -----------------------------------------------------
    def _should_exit(self) -> bool:
        # Caller holds self._cond.
        if not self._closing:
            return False
        if self._drain_mode:
            return not self._queue
        return True

    def _worker(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._should_exit():
                        return
                    if self._queue:
                        job_id = self._queue.pop(0)
                        record = self._jobs[job_id]
                        record.state = RUNNING
                        self._running.add(job_id)
                        break
                    self._cond.wait(0.1)
            self._journal_event(
                {"op": "state", "job_id": job_id, "state": RUNNING}
            )
            self._run_job(record)

    def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        spec = record.spec
        token = CancelToken(deadline_s=spec.deadline_s)
        with self._cond:
            self._tokens[job_id] = token
        checkpoint = self._checkpoint_path(job_id)
        resume = str(checkpoint) if checkpoint.exists() else None
        state = DONE
        error = ""
        trajectory = None
        n_evaluations = 0
        try:
            circuit = spec.load_circuit()
            config = spec.to_config(
                checkpoint_path=str(checkpoint),
                checkpoint_every=self.checkpoint_every,
                resume=resume,
            )
            context = RunContext(
                cancel=token,
                cache=self.cache,
                executor_factory=self.registry.lease,
            )
            result = explore(circuit, config, context=context)
            trajectory = [
                [p.iteration, p.window_index, p.f, p.qor, p.est_area,
                 list(p.fs), p.strategy, p.seed, p.move_id]
                for p in result.trajectory
            ]
            n_evaluations = result.n_evaluations
            if result.runtime_stats is not None:
                with self._cond:
                    self.stats.absorb(result.runtime_stats)
        except ServiceShutdown:
            # Graceful shutdown: the job flushed a final checkpoint (when
            # checkpointing was active) and stays *non-terminal* in the
            # journal — the next start re-enqueues and resumes it.
            with self._cond:
                self._running.discard(job_id)
                self._tokens.pop(job_id, None)
                self._cond.notify_all()
            return
        except JobDeadlineExceeded as exc:
            state, error = FAILED, f"deadline exceeded: {exc}"
        except JobCancelled as exc:
            state, error = CANCELLED, str(exc)
        except Exception as exc:  # isolation: one job's crash is its own
            state, error = FAILED, f"{type(exc).__name__}: {exc}"
        with self._cond:
            record.state = state
            record.error = error
            record.trajectory = trajectory
            record.n_evaluations = n_evaluations
            self._running.discard(job_id)
            self._tokens.pop(job_id, None)
            self._estimates.pop(job_id, None)
            if state == DONE:
                self.stats.jobs_completed += 1
            elif state == CANCELLED:
                self.stats.jobs_cancelled += 1
            else:
                self.stats.jobs_failed += 1
            self._cond.notify_all()
        self._journal_event({
            "op": "result", "job_id": job_id, "state": state,
            "error": error, "trajectory": trajectory,
            "n_evaluations": n_evaluations,
        })
        if state == DONE:
            checkpoint.unlink(missing_ok=True)
