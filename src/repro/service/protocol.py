"""Job specs, job records, and the admission-control memory estimate.

Everything crossing a service boundary — client → daemon submissions,
journal records, status responses — is plain JSON, so specs and records
here are deliberately restricted to JSON-representable state.  A
:class:`JobSpec` carries the circuit (a benchmark name or inline BLIF
text — never a live object) plus a whitelisted dictionary of
:class:`~repro.core.explorer.ExplorerConfig` overrides; checkpoint
placement is *service-managed* (the scheduler keys per-job checkpoints
off the job id inside its journal directory), so checkpoint/resume keys
are rejected rather than silently overridden.

The admission memory estimate reuses the streaming engine's own budget
formula (:func:`repro.core.streaming.auto_chunk_words`): a streaming job
costs ``(2 + cache_chunks) × 8 × n_nodes × chunk_words`` bytes per
worker, a resident job one full ``8 × n_nodes × words_for(n_samples)``
matrix.  The estimate is the same arithmetic the engine bounds itself
by, so admission decisions and actual peak memory cannot drift apart.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.blif import read_blif
from ..circuit.netlist import Circuit
from ..circuit.simulate import words_for
from ..core.explorer import ExplorerConfig
from ..core.qor import QoRSpec
from ..core.streaming import auto_chunk_words
from ..errors import ExplorationError
from ..runtime import effective_jobs

#: ExplorerConfig fields a job spec may override.  Checkpointing keys are
#: deliberately absent — the scheduler owns checkpoint placement — and so
#: are live-object fields (library, espresso options).
CONFIG_KEYS = frozenset({
    "max_inputs", "max_outputs", "method", "algebra", "taus",
    "weight_mode", "selection", "match_macros", "qor", "n_samples",
    "seed", "threshold", "error_cap", "max_iterations", "strategy",
    "tie_epsilon", "tie_epsilon_scale", "refine_passes", "estimate_area",
    "jobs", "shard_jobs", "chunk_cache_chunks", "engine", "chunk_words",
    "chunk_budget_mb", "sanitize", "shard_timeout", "shard_retries",
    "faults",
})

#: Job lifecycle states.  ``queued`` and ``running`` are non-terminal:
#: on restart the journal replay re-enqueues both (a ``running`` job
#: resumes from its checkpoint when one was flushed).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass(frozen=True)
class JobSpec:
    """One exploration request, as submitted by a client.

    Attributes:
        bench: Benchmark name from :mod:`repro.bench` (exclusive with
            ``blif``).
        blif: Inline BLIF text of the circuit to explore.
        name: Display label (defaults to the circuit name).
        deadline_s: Wall-clock budget in seconds, enforced cooperatively
            from the moment the job *starts running* (queue time does not
            count against it).
        config: Whitelisted :class:`~repro.core.explorer.ExplorerConfig`
            overrides (see :data:`CONFIG_KEYS`).
    """

    bench: Optional[str] = None
    blif: Optional[str] = None
    name: str = ""
    deadline_s: Optional[float] = None
    config: Dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ExplorationError` on a bad spec."""
        if bool(self.bench) == bool(self.blif):
            raise ExplorationError(
                "job spec needs exactly one of 'bench' or 'blif'"
            )
        unknown = set(self.config) - CONFIG_KEYS
        if unknown:
            raise ExplorationError(
                f"unknown config keys {sorted(unknown)}; "
                f"allowed: {sorted(CONFIG_KEYS)}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ExplorationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        # Building the config surfaces value errors (bad strategy names,
        # negative chunk sizes, malformed fault specs) at submit time.
        self.to_config()

    def load_circuit(self) -> Circuit:
        if self.bench:
            from ..bench import get_benchmark  # lazy: heavy generators

            return get_benchmark(self.bench).factory()
        return read_blif(io.StringIO(self.blif))

    def to_config(
        self,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: Optional[str] = None,
    ) -> ExplorerConfig:
        """Materialize the :class:`ExplorerConfig` this spec describes.

        The scheduler passes the service-managed checkpoint placement;
        clients cannot set it (see :data:`CONFIG_KEYS`).
        """
        kwargs = dict(self.config)
        unknown = set(kwargs) - CONFIG_KEYS
        if unknown:
            raise ExplorationError(
                f"unknown config keys {sorted(unknown)}"
            )
        if "taus" in kwargs:
            kwargs["taus"] = tuple(kwargs["taus"])
        if "qor" in kwargs:
            kwargs["qor"] = QoRSpec(kwargs["qor"])
        return ExplorerConfig(
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume=resume,
            **kwargs,
        )

    def to_dict(self) -> Dict:
        return {
            "bench": self.bench,
            "blif": self.blif,
            "name": self.name,
            "deadline_s": self.deadline_s,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        return cls(
            bench=data.get("bench"),
            blif=data.get("blif"),
            name=data.get("name", ""),
            deadline_s=data.get("deadline_s"),
            config=dict(data.get("config", {})),
        )


def estimate_job_bytes(spec: JobSpec, circuit: Optional[Circuit] = None) -> int:
    """Peak sample-matrix footprint this job will hold, in bytes.

    The streaming engine's own budget arithmetic (module docstring):
    chunked execution costs ``(2 + cache_chunks) × 8 × n_nodes ×
    chunk_words`` per worker across ``shard_jobs`` workers; resident
    execution holds one full packed matrix.  Used by admission control —
    the sum over queued + running jobs is what the service bounds.
    """
    if circuit is None:
        circuit = spec.load_circuit()
    cfg = spec.config
    n_samples = int(cfg.get("n_samples", 4096))
    total_words = words_for(n_samples)
    n_nodes = max(circuit.n_nodes, 1)
    cache_chunks = int(cfg.get("chunk_cache_chunks", 0))
    shard_jobs = cfg.get("shard_jobs")
    jobs = effective_jobs(
        int(cfg.get("jobs", 1)) if shard_jobs is None else int(shard_jobs)
    )
    chunk_words = cfg.get("chunk_words")
    budget_mb = cfg.get("chunk_budget_mb")
    if chunk_words is None and budget_mb is not None:
        chunk_words = auto_chunk_words(
            n_nodes, int(float(budget_mb) * 1e6), total_words,
            jobs=jobs, cache_chunks=cache_chunks,
        )
    if chunk_words is None:
        # Resident execution: one full matrix, single process.
        return 8 * n_nodes * total_words
    chunk_words = min(int(chunk_words), total_words)
    return (2 + cache_chunks) * 8 * n_nodes * chunk_words * jobs


@dataclass
class JobRecord:
    """The scheduler's (and journal's) view of one job.

    ``trajectory`` holds the committed points as plain lists —
    ``[iteration, window_index, f, qor, est_area, [fs...]]`` — exactly
    the tuple key the determinism tests compare, so a journaled result
    round-trips through JSON bit-exactly (Python's JSON float encoding
    is shortest-round-trip ``repr``).
    """

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    seq: int = 0
    error: str = ""
    n_evaluations: int = 0
    trajectory: Optional[List[List]] = None
    resumed: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def trajectory_key(self) -> Optional[List[Tuple]]:
        """The canonical comparison key of the journaled trajectory.

        Rows are indexed, not unpacked: newer journals carry the
        strategy/seed/move_id replay fields after the canonical six, and
        the key stays comparable against references built from plain
        :class:`~repro.core.explorer.TrajectoryPoint` fields.
        """
        if self.trajectory is None:
            return None
        return [
            (int(p[0]), int(p[1]), int(p[2]), float(p[3]), float(p[4]),
             tuple(p[5]))
            for p in self.trajectory
        ]

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "seq": self.seq,
            "error": self.error,
            "n_evaluations": self.n_evaluations,
            "trajectory": self.trajectory,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        return cls(
            job_id=data["job_id"],
            spec=JobSpec.from_dict(data.get("spec", {})),
            state=data.get("state", QUEUED),
            seq=int(data.get("seq", 0)),
            error=data.get("error", ""),
            n_evaluations=int(data.get("n_evaluations", 0)),
            trajectory=data.get("trajectory"),
            resumed=bool(data.get("resumed", False)),
        )


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift) —
    the byte layout the journal's per-record checksum covers."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))
