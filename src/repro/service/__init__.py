"""Exploration-as-a-service: a supervised job daemon over the runtime.

The repo's exploration runs are deterministic, checkpointable, and
supervised (PR 5–7); this package turns them into a *service*: a
persistent daemon (``blasys serve``) that admits exploration jobs over a
Unix socket, multiplexes them across one shared profile cache and one
shared shard-pool registry, and survives crashes — admission, deadlines,
journaling and recovery are the robustness headline (DESIGN.md
"Service").

* :mod:`repro.service.protocol` — JSON job specs/records and the
  admission memory estimate (the streaming engine's own budget math).
* :mod:`repro.service.journal` — the crash-safe job journal
  (checksummed JSON lines, fsync appends, torn-tail-tolerant replay,
  atomic compaction).
* :mod:`repro.service.scheduler` — admission control, per-job
  deadline/cancel tokens, isolation, shared-asset multiplexing, journal
  recovery, graceful shutdown.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  newline-JSON Unix-socket daemon and its client.

The recovery rule, end to end: ``kill -9`` the daemon at any moment,
restart it on the same journal directory, and every unfinished job runs
to completion with a trajectory byte-identical to a never-interrupted
run — the journal replays admissions, per-job checkpoints resume
in-flight searches, and the determinism discipline does the rest.
"""

from __future__ import annotations

from .client import ServiceClient
from .journal import JobJournal
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    estimate_job_bytes,
)
from .scheduler import ExplorationScheduler
from .server import ExplorationServer, serve

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "ExplorationScheduler",
    "ExplorationServer",
    "JobJournal",
    "JobRecord",
    "JobSpec",
    "ServiceClient",
    "estimate_job_bytes",
    "serve",
]
