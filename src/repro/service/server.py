"""The exploration daemon: a Unix-socket front end on the scheduler.

``blasys serve`` runs this.  The protocol is deliberately minimal —
newline-delimited JSON over a Unix domain socket, one request object per
line, one response object per line (``{"ok": true, ...}`` or
``{"ok": false, "error": "...", "rejected": bool}``) — so a client is a
few lines of any language and the daemon has no third-party
dependencies.

Lifecycle: the main thread installs a
:class:`~repro.runtime.ShutdownGuard` and parks; SIGTERM/SIGINT (or a
client ``shutdown`` request) cancels the guard token, the socket stops
accepting, and the scheduler shuts down in the requested mode — the
default (checkpoint) mode cancels in-flight jobs with
:class:`~repro.errors.ServiceShutdown` so each flushes a final
checkpoint and stays non-terminal in the journal; the next ``blasys
serve`` on the same journal directory recovers and resumes them
byte-identically (see :mod:`repro.service.scheduler`).
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
from typing import Dict, Optional

from ..errors import JobRejected, ReproError
from ..runtime import CancelToken, RuntimeStats, ShutdownGuard
from .protocol import JobSpec
from .scheduler import ExplorationScheduler


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode())
                response = self.server.dispatch(request)
            except Exception as exc:  # malformed request: answer, don't die
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self.wfile.write((json.dumps(response) + "\n").encode())
            self.wfile.flush()
            if response.get("bye"):
                break


class ExplorationServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threaded Unix-socket server dispatching to a scheduler."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, scheduler: ExplorationScheduler,
                 stop_token: CancelToken) -> None:
        self.scheduler = scheduler
        self.stop_token = stop_token
        #: Set by a client ``shutdown`` request: drain or checkpoint.
        self.drain_requested = False
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        super().__init__(socket_path, _Handler)

    # -- request dispatch ------------------------------------------------
    def dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "submit":
                spec = JobSpec.from_dict(request.get("spec", {}))
                job_id = self.scheduler.submit(spec)
                return {"ok": True, "job_id": job_id}
            if op == "status":
                record = self.scheduler.status(request["job_id"])
                return {"ok": True, "job": record.to_dict()}
            if op == "wait":
                record = self.scheduler.wait(
                    request["job_id"], timeout=request.get("timeout")
                )
                return {"ok": True, "job": record.to_dict()}
            if op == "list":
                return {
                    "ok": True,
                    "jobs": [r.to_dict() for r in self.scheduler.list_jobs()],
                }
            if op == "cancel":
                record = self.scheduler.cancel(request["job_id"])
                return {"ok": True, "job": record.to_dict()}
            if op == "stats":
                return {"ok": True, "stats": self.scheduler.stats_snapshot()}
            if op == "shutdown":
                self.drain_requested = bool(request.get("drain", False))
                self.stop_token.shutdown("shutdown requested by client")
                return {"ok": True, "bye": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except JobRejected as exc:
            return {"ok": False, "rejected": True, "error": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}


def serve(
    socket_path: str,
    journal_dir: str,
    max_queue: int = 8,
    max_memory_mb: float = 0.0,
    max_concurrent: int = 1,
    cache_dir: Optional[str] = None,
    max_pool_workers: int = 0,
    checkpoint_every: int = 1,
    drain_on_term: bool = False,
    stats: Optional[RuntimeStats] = None,
    quiet: bool = False,
) -> int:
    """Run the daemon until SIGTERM/SIGINT or a client ``shutdown``.

    Returns the CLI exit code: ``0`` for a client-requested shutdown,
    ``128 + signum`` when a signal stopped the service (after the
    graceful checkpoint-and-drain sequence — the non-zero code reports
    *why* the daemon exited, not a failure to clean up).
    """
    def say(message: str) -> None:
        if not quiet:
            print(message, flush=True)

    scheduler = ExplorationScheduler(
        journal_dir,
        max_queue=max_queue,
        max_memory_bytes=int(max_memory_mb * 1e6),
        max_concurrent=max_concurrent,
        cache_dir=cache_dir,
        max_pool_workers=max_pool_workers,
        checkpoint_every=checkpoint_every,
        stats=stats,
    )
    recovered = scheduler.recover()
    if recovered:
        say(f"recovered {recovered} unfinished job(s) from the journal")
    scheduler.start()

    token = CancelToken()
    guard = ShutdownGuard(token)
    server = ExplorationServer(socket_path, scheduler, token)
    acceptor = threading.Thread(
        target=server.serve_forever, name="service-acceptor", daemon=True
    )
    acceptor.start()
    say(f"blasys service listening on {socket_path} (journal: {journal_dir})")
    try:
        with guard:
            while not token.cancelled:
                token_wait(token)
    finally:
        drain = drain_on_term if guard.signum is not None else server.drain_requested
        say(
            "shutting down ("
            + ("draining queued jobs" if drain
               else "checkpointing in-flight jobs") + ")"
        )
        # Scheduler first: in checkpoint mode this cancels in-flight jobs
        # immediately (they stop at the next iteration boundary) instead
        # of letting them race to completion behind the socket teardown.
        # The still-open socket correctly answers late submits with
        # "service is shutting down".
        scheduler.shutdown(drain=drain)
        server.shutdown()
        server.server_close()
        if os.path.exists(socket_path):
            os.unlink(socket_path)
    say(f"service stopped; {scheduler.stats.service_summary()}")
    if guard.signum is not None:
        return 128 + guard.signum
    return 0


def token_wait(token: CancelToken, interval: float = 0.2) -> None:
    """Park the main thread without blocking signal delivery."""
    # signal handlers only run between bytecodes on the main thread, so
    # sleep in short slices rather than one long block.
    import time

    time.sleep(interval)
