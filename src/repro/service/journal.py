"""Crash-safe job journal: append-only JSON lines with per-record CRCs.

The journal is the service's source of truth for job state across
crashes.  Its durability discipline mirrors the exploration checkpoint's
(:mod:`repro.runtime.checkpoint`), adapted to an append-only log:

* **Appends** are one line per event — ``{"rec": {...}, "crc":
  "<8 hex>"}`` where the checksum covers the canonical JSON encoding of
  the record — written with flush + ``fsync`` before :meth:`append`
  returns, so an acknowledged submit is on disk before the client hears
  about it.
* **Replay** tolerates a torn tail: a ``kill -9`` mid-append leaves at
  most one partial last line, which replay drops with a warning.  A
  corrupt line *before* intact ones means real damage (not a torn
  append — the log is append-only), so replay stops there too rather
  than resurrecting jobs whose later history is unreadable; everything
  up to the first bad line is recovered.
* **Compaction** rewrites the log as one ``submit`` event per live job
  via the checkpoint module's tmp + fsync + replace pattern, so a crash
  mid-compaction leaves the old journal intact.

Journal events are tiny dicts (``op`` plus payload); the scheduler owns
their semantics — this module only makes them durable and replayable.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Union

from .protocol import canonical_json


def _crc(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:8]


class JobJournal:
    """Append-only, checksummed, fsync-durable event log."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Lines dropped by the last :meth:`replay` (torn tail / damage).
        self.dropped = 0

    def append(self, record: Dict) -> None:
        """Durably append one event; returns only once it is on disk."""
        payload = canonical_json(record)
        line = canonical_json({"rec": record, "crc": _crc(payload)}) + "\n"
        with open(self.path, "ab") as fh:
            fh.write(line.encode())
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> List[Dict]:
        """Read back every intact event, dropping the torn tail."""
        self.dropped = 0
        if not self.path.exists():
            return []
        records: List[Dict] = []
        with open(self.path, "rb") as fh:
            lines = fh.read().split(b"\n")
        for pos, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw.decode())
                record = entry["rec"]
                if entry["crc"] != _crc(canonical_json(record)):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                remaining = sum(1 for l in lines[pos:] if l.strip())
                self.dropped = remaining
                warnings.warn(
                    f"job journal {self.path}: dropping {remaining} "
                    f"unreadable line(s) from position {pos} ({exc}); "
                    "recovered state stops at the last intact event",
                    RuntimeWarning,
                )
                break
            records.append(record)
        return records

    def compact(self, records: List[Dict]) -> None:
        """Atomically rewrite the journal to exactly ``records``.

        Same tmp + fsync + replace discipline as
        :func:`repro.runtime.checkpoint.save_checkpoint`: the journal is
        either the old complete log or the new complete log, never a
        prefix of either.
        """
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            for record in records:
                payload = canonical_json(record)
                line = canonical_json(
                    {"rec": record, "crc": _crc(payload)}
                ) + "\n"
                fh.write(line.encode())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
