"""Inline suppression comments for the contract linter.

Syntax (DESIGN.md "Static contracts"):

.. code-block:: python

    x = self._cache[key]
    return x  # contract-ok: cache-copy -- consumers only read; frozen under sanitize

    # contract-ok: set-iteration -- commutative accumulation into a set
    for v in members:
        inputs.add(v)

A suppression names one or more comma-separated rules and **must**
carry a justification after ``--``; a bare ``contract-ok`` without one
is itself reported (``bad-suppression``).  A trailing comment covers
findings on its own line; a full-line comment covers the next code
line.  Unused suppressions are reported (``unused-suppression``) so
stale waivers don't outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List

_MARKER = re.compile(r"#\s*contract-ok\s*:\s*(?P<body>.*)$")


@dataclass
class Suppression:
    """One parsed ``contract-ok`` comment."""

    line: int  # comment's own line (1-based)
    applies_to: int  # code line the suppression covers
    rules: tuple  # rule names, empty if malformed
    justification: str
    used: bool = False


@dataclass
class SuppressionIndex:
    """Suppressions of one source file, keyed by the line they cover."""

    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)
    malformed: List[Suppression] = field(default_factory=list)

    def matches(self, rule: str, line: int) -> bool:
        """True (and marks used) if ``rule`` is suppressed on ``line``."""
        hit = False
        for sup in self.by_line.get(line, ()):
            if rule in sup.rules:
                sup.used = True
                hit = True
        return hit

    def unused(self) -> List[Suppression]:
        return [
            sup
            for sups in self.by_line.values()
            for sup in sups
            if not sup.used
        ]


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract ``contract-ok`` comments via tokenize (string-literal safe)."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(tok.string)
        if match is None:
            continue
        body = match.group("body")
        rules_part, sep, justification = body.partition("--")
        rules = tuple(
            r.strip() for r in rules_part.split(",") if r.strip()
        )
        line = tok.start[0]
        # A comment with code before it on the same line covers that
        # line; a full-line comment covers the next line.
        own_line = tok.line[: tok.start[1]].strip()
        applies_to = line if own_line else line + 1
        sup = Suppression(
            line=line,
            applies_to=applies_to,
            rules=rules,
            justification=justification.strip(),
        )
        if not rules or not sep or not sup.justification:
            index.malformed.append(sup)
            continue
        index.by_line.setdefault(applies_to, []).append(sup)
    return index
