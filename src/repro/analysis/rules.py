"""Contract lint rules (see DESIGN.md "Static contracts").

Every rule encodes one documented invariant of the engines:

==================  ====================================================
rule                invariant guarded
==================  ====================================================
set-iteration       unordered set iteration must not feed ordered
                    outputs (BMF determinism contract)
unseeded-rng        stimulus randomness flows from one seeded generator
                    through ``flow.py`` / ``stimulus.py``
float-reduction     QoR float sums go through the canonical per-word
                    partials (``qor.word_partials``), never ad-hoc
                    ``np.sum`` over error arrays
cache-copy          arrays handed out of caches/memos are shared —
                    return a ``.copy()`` or a frozen view, never the raw
                    slice
listing-order       filesystem listings (glob/listdir/iterdir) are
                    OS-order; wrap in ``sorted()`` before iterating
mutable-default     no mutable default arguments (shared across calls)
kernel-purity       nopython kernel functions in ``repro/kernels/``
                    stay object-free: no dict/set literals or
                    comprehensions, no unordered set/dict iteration
shard-pickle        executor payloads must be statically picklable
                    (enforced by :mod:`repro.analysis.pickleaudit`)
==================  ====================================================

Rules are deliberately conservative: they track only direct bindings
inside one function scope, so a miss is possible but a hit is almost
always real.  False positives are waived inline with a justified
``# contract-ok: <rule> -- why`` (see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from .linter import Finding, LintContext, Rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> Tuple[str, ...]:
    """The name chain of a Name/Attribute expression (``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    return tuple(reversed(parts))


def _parent_map(tree: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _scope_body(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_TYPES + (ast.ClassDef,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_call_to(node: ast.AST, names: Set[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _dotted(node.func)
    return bool(chain) and chain[-1] in names


# ----------------------------------------------------------------------
# set-iteration
# ----------------------------------------------------------------------
_SET_ANNOTATIONS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return _is_call_to(node, {"set", "frozenset"})


def _is_set_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    chain = _dotted(node)
    return bool(chain) and chain[-1] in _SET_ANNOTATIONS


class SetIterationRule(Rule):
    """Iterating a set in an order-sensitive position.

    Set iteration order is insertion-history dependent (and, for interned
    objects, can vary across processes); any loop whose body feeds an
    ordered structure — a list, a tie-broken argmax, emitted output —
    must walk ``sorted(...)`` instead.  Commutative accumulations can be
    waived with a justification.
    """

    name = "set-iteration"
    anchor = "Static contracts: unordered iteration"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for scope in _scopes(ctx.tree):
            set_names = self._set_names(scope)
            for node in _scope_body(scope):
                yield from self._check_iter_sites(ctx, node, set_names)

    def _set_names(self, scope: ast.AST) -> Set[str]:
        names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
            ):
                if arg.annotation is not None and _is_set_annotation(
                    arg.annotation
                ):
                    names.add(arg.arg)
        for node in _scope_body(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if (
                    node.value is not None and _is_set_expr(node.value)
                ) or _is_set_annotation(node.annotation):
                    names.add(node.target.id)
        return names

    def _check_iter_sites(
        self, ctx: LintContext, node: ast.AST, set_names: Set[str]
    ) -> Iterator[Finding]:
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        elif _is_call_to(node, {"list", "tuple"}) and node.args:
            iters.append(node.args[0])
        for it in iters:
            hit = _is_set_expr(it) or (
                isinstance(it, ast.Name) and it.id in set_names
            )
            if hit:
                label = (
                    it.id
                    if isinstance(it, ast.Name)
                    else "a set expression"
                )
                yield self.finding(
                    ctx,
                    it,
                    f"iterating {label} in unordered set order — "
                    "walk sorted(...) or justify commutativity",
                )


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
_RNG_SANCTIONED = {"repro/flow.py", "repro/circuit/stimulus.py"}
#: The search package is stricter still: searchers must use the single
#: seeded generator threaded from ``ExplorerConfig.seed``, so *any*
#: generator construction there — seeded or not — breaks the replay
#: contract (DESIGN.md "Search strategies").
_RNG_FORBIDDEN_PREFIXES = ("repro/core/search/",)
_GLOBAL_RNG_FNS = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "shuffle",
    "permutation",
    "choice",
    "normal",
    "uniform",
    "standard_normal",
}


class UnseededRngRule(Rule):
    """RNG construction that breaks seeded-stimulus determinism.

    Outside the sanctioned ``flow.py`` / ``stimulus.py`` entry points,
    every generator must be constructed with an explicit seed, and the
    legacy global-state ``np.random.*`` functions are banned outright
    (their hidden state couples unrelated call sites).  Inside
    ``repro/core/search/`` the rule hardens: constructing a generator at
    all — even seeded — is a finding, because searchers must draw from
    the one generator threaded from ``ExplorerConfig.seed`` (a private
    stream would desynchronize checkpoint replay).
    """

    name = "unseeded-rng"
    anchor = "Static contracts: seeded stimulus"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.module_tail in _RNG_SANCTIONED:
            return
        forbidden = ctx.module_tail.startswith(_RNG_FORBIDDEN_PREFIXES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain:
                continue
            if chain[-1] in {"default_rng", "RandomState"}:
                if forbidden:
                    yield self.finding(
                        ctx,
                        node,
                        f"{chain[-1]}() constructed inside the search "
                        "package — searchers must draw from the seeded "
                        "generator threaded from ExplorerConfig.seed",
                    )
                elif not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"unseeded {chain[-1]}() — pass an explicit seed "
                        "or take a Generator parameter",
                    )
            elif (
                len(chain) >= 2
                and chain[-2] == "random"
                and chain[-1] in _GLOBAL_RNG_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"global-state np.random.{chain[-1]}() — use an "
                    "explicitly seeded np.random.default_rng instead",
                )


# ----------------------------------------------------------------------
# float-reduction
# ----------------------------------------------------------------------
#: The canonical implementation layer: qor.py owns the per-packed-word
#: partial-sum discipline, and the bmf kernels own the documented
#: ``dot(counts, w)`` weighted-error contract.
_SUM_SANCTIONED_PREFIXES = ("repro/core/qor.py", "repro/core/bmf/")
_ERRORISH = re.compile(r"(err|diff|delta|partial|qor|resid|mismatch)", re.I)
_REDUCERS = {"sum", "mean", "dot", "einsum", "matmul", "nansum"}


def _errorish_operand(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        chain = _dotted(sub)
        if chain and _ERRORISH.search(chain[-1]):
            return True
    return False


class FloatReductionRule(Rule):
    """Ad-hoc float reduction over error-like arrays.

    Float addition is not associative: QoR totals are only reproducible
    across chunked/sharded execution because every sum goes through the
    canonical per-packed-word partials (``qor.word_partials``) reduced
    in one fixed order.  ``np.sum``/``.sum()``/``np.dot`` over
    error-named operands outside the canonical layer bypasses that.
    Integer-exact counts (wrapped in ``int(...)``) are exempt.
    """

    name = "float-reduction"
    anchor = "Static contracts: canonical sums"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if any(
            ctx.module_tail == p
            or (p.endswith("/") and ctx.module_tail.startswith(p))
            for p in _SUM_SANCTIONED_PREFIXES
        ):
            return
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain or chain[-1] not in _REDUCERS:
                continue
            operands: List[ast.AST] = list(node.args)
            if isinstance(node.func, ast.Attribute) and chain[0] not in {
                "np",
                "numpy",
            }:
                operands.append(node.func.value)
            if not any(_errorish_operand(op) for op in operands):
                continue
            parent = parents.get(id(node))
            if _is_call_to(parent, {"int"}):
                continue  # exact integer count, associativity-safe
            yield self.finding(
                ctx,
                node,
                f"float {chain[-1]}() over an error-like operand — route "
                "through the canonical qor.word_partials helpers",
            )


# ----------------------------------------------------------------------
# cache-copy
# ----------------------------------------------------------------------
_CACHEISH = re.compile(
    r"(cache|memo|partial|entr(y|ies)|_exact_outputs|_out_words)", re.I
)


def _cacheish_source(node: ast.AST) -> bool:
    """True for ``<cacheish>[...]`` / ``<cacheish>.get(...)`` expressions."""
    if isinstance(node, ast.Subscript):
        chain = _dotted(node.value)
        return bool(chain) and bool(_CACHEISH.search(chain[-1]))
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
    ):
        chain = _dotted(node.func.value)
        return bool(chain) and bool(_CACHEISH.search(chain[-1]))
    return False


class CacheCopyRule(Rule):
    """Raw return of an array slice held by a cache or memo.

    A raw slice aliases the cache's storage: the caller can silently
    corrupt every later hit (and the parent's in-place repairs corrupt
    the caller).  Return ``.copy()`` — or a frozen view where the copy
    is the hot path's cost and the contract is read-only by design.
    Sanctioned raw returns carry a suppression and are frozen under
    ``REPRO_SANITIZE=1``.
    """

    name = "cache-copy"
    anchor = "Static contracts: cache aliasing"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for scope in _scopes(ctx.tree):
            if not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            tainted = self._tainted_names(scope)
            for node in _scope_body(scope):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                for expr in self._return_exprs(node.value):
                    if self._is_raw_cache_value(expr, tainted):
                        yield self.finding(
                            ctx,
                            node,
                            "raw return of a cache-held array — return "
                            ".copy() or a frozen view",
                        )
                        break

    @staticmethod
    def _tainted_names(scope: ast.AST) -> Set[str]:
        tainted: Set[str] = set()
        for node in _scope_body(scope):
            if isinstance(node, ast.Assign) and _cacheish_source(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    @staticmethod
    def _return_exprs(value: ast.AST) -> Iterator[ast.AST]:
        if isinstance(value, ast.IfExp):
            yield value.body
            yield value.orelse
        else:
            yield value

    @staticmethod
    def _is_raw_cache_value(expr: ast.AST, tainted: Set[str]) -> bool:
        if _cacheish_source(expr):
            return True
        if isinstance(expr, ast.Name) and expr.id in tainted:
            return True
        if isinstance(expr, ast.Subscript) and isinstance(
            expr.value, ast.Name
        ):
            return expr.value.id in tainted
        if isinstance(expr, ast.Attribute):
            return bool(
                re.search(r"(_exact_outputs|_out_words)$", expr.attr)
            )
        return False


# ----------------------------------------------------------------------
# listing-order
# ----------------------------------------------------------------------
#: Path-like methods flagged on any receiver, and os-level functions
#: flagged only as ``os.*`` (``walk`` alone would match ``ast.walk``).
_LISTING_METHODS = {"glob", "rglob", "iterdir"}
_OS_LISTING_FNS = {"listdir", "scandir", "walk"}


class ListingOrderRule(Rule):
    """Filesystem listing consumed without ``sorted()``.

    ``glob``/``listdir``/``iterdir`` order is filesystem-dependent;
    anything ordered built from a listing must sort it first.  Pure
    cardinality or existence checks can be waived.
    """

    name = "listing-order"
    anchor = "Static contracts: filesystem walks"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain:
                continue
            is_listing = chain[-1] in _LISTING_METHODS or (
                chain[-1] in _OS_LISTING_FNS
                and len(chain) >= 2
                and chain[-2] == "os"
            )
            if not is_listing:
                continue
            parent = parents.get(id(node))
            if _is_call_to(parent, {"sorted"}):
                continue
            yield self.finding(
                ctx,
                node,
                f"unsorted filesystem listing ({chain[-1]}) — wrap in "
                "sorted(...) or justify order-independence",
            )


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """Mutable default argument — shared across every call."""

    name = "mutable-default"
    anchor = "Static contracts: mutable defaults"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.SetComp,
                              ast.ListComp, ast.DictComp)
                ) or _is_call_to(
                    default, {"list", "dict", "set", "defaultdict"}
                ):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument — default to None and "
                        "construct inside the function",
                    )


# ----------------------------------------------------------------------
# kernel-purity
# ----------------------------------------------------------------------
_KERNELS_PREFIX = "repro/kernels/"

#: Builtins that force object mode (or, for sorted/set/dict, smuggle in
#: Python containers) inside an ``@njit`` nopython body.
_IMPURE_CALLS = {
    "set", "dict", "frozenset", "sorted", "vars",
    "getattr", "setattr", "hasattr", "eval", "exec",
}


def _decorator_tail(node: ast.AST) -> str:
    """Last name component of a decorator (``numba.njit(...)`` -> ``njit``)."""
    if isinstance(node, ast.Call):
        node = node.func
    chain = _dotted(node)
    return chain[-1] if chain else ""


class KernelPurityRule(Rule):
    """Python-object constructs inside a nopython kernel function.

    Applies to ``@njit``-decorated functions in ``repro/kernels/``: the
    bodies must compile in numba nopython mode *and* behave identically
    as plain Python when numba is absent (the fallback discipline of
    DESIGN.md "Kernel backends").  Dict/set literals, comprehensions and
    object-mode builtins break the first property; unordered set/dict
    iteration breaks the determinism contract either way.
    """

    name = "kernel-purity"
    anchor = "Kernel backends: nopython purity"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.module_tail.startswith(_KERNELS_PREFIX):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                _decorator_tail(d) == "njit" for d in fn.decorator_list
            ):
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.Dict, ast.DictComp)):
                    yield self.finding(
                        ctx, node,
                        "dict construction in a nopython kernel — numba "
                        "object mode; use typed arrays or scalars",
                    )
                elif isinstance(node, (ast.Set, ast.SetComp)):
                    yield self.finding(
                        ctx, node,
                        "set construction in a nopython kernel — object "
                        "mode and unordered; use arrays",
                    )
                elif _is_call_to(node, _IMPURE_CALLS):
                    yield self.finding(
                        ctx, node,
                        f"call to {_dotted(node.func)[-1]}() in a "
                        "nopython kernel — Python-object operation",
                    )
                elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                    yield self.finding(
                        ctx, node,
                        "iterating a set in a nopython kernel — "
                        "unordered iteration in a deterministic kernel",
                    )


#: Rule registry consumed by :func:`repro.analysis.linter.default_rules`.
#: ``shard-pickle`` findings come from :mod:`repro.analysis.pickleaudit`,
#: wired into the lint run by the linter core.
ALL_RULES = (
    SetIterationRule,
    UnseededRngRule,
    FloatReductionRule,
    CacheCopyRule,
    ListingOrderRule,
    MutableDefaultRule,
    KernelPurityRule,
)
