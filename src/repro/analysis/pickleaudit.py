"""Shard-boundary pickle-safety auditor.

Everything crossing the :class:`ProcessShardExecutor` boundary —
:class:`StreamContext` (shipped once per worker) and :class:`ScanShard`
/ :class:`ShardOutcome` (shipped per task) — must pickle cleanly and
must not smuggle mutable shared state into workers.  This module
enforces that two ways (DESIGN.md "Static contracts: shard
pickle-safety"):

* :func:`audit_payload_class` — a static walk over a payload class's
  dataclass field annotations, rejecting types that cannot pickle
  (callables/closures, generators, locks, open handles, modules) or
  that would share mutable state by reference.  The linter runs this
  over ``SHARD_PAYLOAD_CLASSES`` as the ``shard-pickle`` rule.
* :func:`audit_payload` — a runtime deep walk over a payload
  *instance*, used by the executor under ``REPRO_SANITIZE=1`` to catch
  dynamically injected members (a lambda stuffed into a field typed
  ``object``) that no static check can see.
"""

from __future__ import annotations

import dataclasses
import io
import threading
import types
import typing
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Set, Tuple

from ..errors import ContractViolation

#: Annotation head names that cannot survive (or must not cross) the
#: process boundary.  Matched against the unsubscripted origin of each
#: dataclass field annotation.
_BANNED_ANNOTATION_NAMES = {
    "Callable",
    "callable",
    "function",
    "lambda",
    "Generator",
    "Iterator",
    "AsyncGenerator",
    "Coroutine",
    "IO",
    "TextIO",
    "BinaryIO",
    "TextIOWrapper",
    "BufferedReader",
    "BufferedWriter",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "Thread",
    "Queue",
    "ModuleType",
    "memoryview",
}

#: Runtime types rejected by the instance walk.
_BANNED_INSTANCE_TYPES: Tuple[type, ...] = (
    types.GeneratorType,
    types.AsyncGeneratorType,
    types.CoroutineType,
    types.ModuleType,
    io.IOBase,
    memoryview,
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Event,
    threading.Condition,
    threading.Thread,
)


@dataclass(frozen=True)
class AuditProblem:
    """One payload violation: where it is and why it cannot ship."""

    location: str
    message: str
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.location}: {self.message}"


def _annotation_names(annotation: Any) -> Iterator[str]:
    """All head names reachable in an annotation (handles subscripts)."""
    if annotation is None:
        return
    origin = typing.get_origin(annotation)
    if origin is not None:
        name = getattr(origin, "__name__", None) or getattr(
            origin, "_name", None
        )
        if name:
            yield str(name)
        for arg in typing.get_args(annotation):
            yield from _annotation_names(arg)
        return
    name = getattr(annotation, "__name__", None)
    if name:
        yield str(name)
    elif isinstance(annotation, str):
        # Stringized annotations (``from __future__ import annotations``):
        # match on the raw head token(s).
        for token in (
            annotation.replace("[", " ")
            .replace("]", " ")
            .replace(",", " ")
            .replace('"', " ")
            .replace("'", " ")
            .split()
        ):
            yield token.split(".")[-1]


def audit_payload_class(cls: type) -> List[AuditProblem]:
    """Statically audit a shard payload class's field annotations.

    Rejects module-nested classes (unpicklable by qualname) and any
    dataclass field whose annotation names a banned type.  Fields typed
    ``object``/``Any`` pass here — the runtime walk covers them.
    """
    problems: List[AuditProblem] = []
    if "<locals>" in getattr(cls, "__qualname__", ""):
        problems.append(
            AuditProblem(
                location=cls.__qualname__,
                message="payload class is function-local — not picklable "
                "by qualified name",
            )
        )
    if not dataclasses.is_dataclass(cls):
        problems.append(
            AuditProblem(
                location=cls.__name__,
                message="shard payloads must be module-level dataclasses "
                "with auditable fields",
            )
        )
        return problems
    for field in dataclasses.fields(cls):
        banned = set(_annotation_names(field.type)) & _BANNED_ANNOTATION_NAMES
        if banned:
            problems.append(
                AuditProblem(
                    location=f"{cls.__name__}.{field.name}",
                    message=(
                        "field annotation names unpicklable/shared type(s) "
                        + ", ".join(sorted(banned))
                    ),
                )
            )
        if field.default_factory is not dataclasses.MISSING and (
            field.default_factory in (list, dict, set)
        ):
            # Fine for pickling but a red flag for a frozen payload:
            # per-instance mutable state crossing the boundary.
            problems.append(
                AuditProblem(
                    location=f"{cls.__name__}.{field.name}",
                    message="mutable default_factory on a shard payload "
                    "field — prefer immutable tuples",
                )
            )
    return problems


def _walk_instance(
    obj: Any, location: str, seen: Set[int]
) -> Iterator[AuditProblem]:
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, _BANNED_INSTANCE_TYPES):
        yield AuditProblem(
            location=location,
            message=f"unpicklable member of type {type(obj).__name__}",
        )
        return
    if isinstance(obj, (types.FunctionType, types.MethodType)):
        qualname = getattr(obj, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            yield AuditProblem(
                location=location,
                message=f"closure/lambda {qualname!r} cannot cross the "
                "shard boundary",
            )
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from _walk_instance(value, f"{location}[{key!r}]", seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for i, value in enumerate(obj):
            yield from _walk_instance(value, f"{location}[{i}]", seen)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            yield from _walk_instance(
                getattr(obj, field.name), f"{location}.{field.name}", seen
            )


def audit_payload(
    obj: Any, what: str = "payload", strict: bool = True
) -> List[AuditProblem]:
    """Deep-walk a payload instance; raise (strict) or return problems.

    Used by the executor under sanitize mode before shipping contexts
    and shards to the pool — a dynamically injected closure, generator,
    lock, or open handle raises :class:`ContractViolation` at submit
    time instead of a cryptic pickling error (or silent state sharing)
    inside the pool machinery.
    """
    problems = list(_walk_instance(obj, what, set()))
    if problems and strict:
        detail = "; ".join(str(p) for p in problems[:5])
        raise ContractViolation(
            f"shard payload audit failed for {what}: {detail} "
            "(DESIGN.md 'Static contracts: shard pickle-safety')"
        )
    return problems


def audit_payload_classes(
    classes: Optional[Tuple[type, ...]] = None,
) -> List[AuditProblem]:
    """Audit the registered executor payload classes (linter hook)."""
    if classes is None:
        from ..runtime import executor as executor_mod

        classes = executor_mod.SHARD_PAYLOAD_CLASSES
    problems: List[AuditProblem] = []
    for cls in classes:
        problems.extend(audit_payload_class(cls))
    return problems
