"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The engines document two invariants that plain runs only *assume*
(DESIGN.md "Static contracts"):

* **cache aliasing** — arrays handed out by :class:`ChunkBaseCache`, the
  preview memo, seed/index caches, and :class:`ProfileCache` payloads are
  shared state; callers must treat them as read-only and ``.copy()``
  before mutating.
* **tail-bit mask** — packed arrays crossing engine boundaries as window
  or seed values have their tail bits (beyond ``n_samples``) masked to
  zero, so valid-bit comparisons and canonical partial sums see no
  garbage.

Sanitize mode turns both into immediate tracebacks: shared arrays are
frozen (``flags.writeable = False``) so an aliasing write raises at the
write site, and tail masks are asserted at hand-off points so a missing
``mask_tail_words`` raises at the boundary rather than corrupting QoR
values three layers downstream.

The mode is off by default (freezing and asserting cost a little on hot
paths) and resolves per evaluator from ``ExplorerConfig.sanitize`` when
set, else the ``REPRO_SANITIZE`` environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import ContractViolation

#: Environment toggle: "1"/"true"/"yes"/"on" (case-insensitive) enable.
SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the sanitizer flag: explicit override, else environment."""
    if override is not None:
        return bool(override)
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


def freeze(arr: np.ndarray) -> np.ndarray:
    """Mark ``arr`` itself read-only (in place) and return it.

    Use for arrays the owner retains and never writes again (memo
    entries, exact outputs, packed stimulus).  Writers that aliased the
    array get ``ValueError: assignment destination is read-only``.
    """
    arr.flags.writeable = False
    return arr


def frozen_view(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr``; the base stays writable.

    Use for caches with a sanctioned in-place repair path (e.g.
    ``ChunkBaseCache``: ``get`` hands out frozen views while the parent
    evaluator repairs the writable base via ``peek``).
    """
    view = arr.view()
    view.flags.writeable = False
    return view


def freeze_payload(obj, _seen: Optional[set] = None):
    """Recursively freeze every ndarray reachable from ``obj``.

    Walks dicts, lists, tuples, sets, and dataclass-like objects (via
    ``__dict__``).  Returns ``obj`` for call-site convenience.  Used on
    :class:`ProfileCache` payloads so cached profiling results — shared
    across windows with identical content keys — cannot be mutated by
    one consumer under another's feet.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return obj
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        freeze(obj)
    elif isinstance(obj, dict):
        for value in obj.values():
            freeze_payload(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            freeze_payload(value, _seen)
    elif hasattr(obj, "__dict__"):
        for value in vars(obj).values():
            freeze_payload(value, _seen)
    return obj


def assert_tail_clean(words: np.ndarray, n_samples: int, what: str) -> None:
    """Raise :class:`ContractViolation` if tail bits past ``n_samples`` set.

    ``words`` is a packed uint64 array whose last axis is the word axis;
    only the final word can carry tail bits.  Matches the mask layout of
    ``repro.core.bmf.packed.mask_tail_words``.
    """
    tail = n_samples % 64
    if tail == 0 or words.size == 0:
        return
    last = np.asarray(words)[..., -1]
    garbage = last & ~np.uint64((1 << tail) - 1)
    if np.any(garbage):
        raise ContractViolation(
            f"tail-bit invariant violated in {what}: bits past "
            f"n_samples={n_samples} are set (DESIGN.md 'Tail-bit "
            "invariant') — a mask_tail_words call is missing upstream"
        )
