"""Static contract checking and runtime determinism sanitizing.

Five PRs of engine work hang on invariants DESIGN.md documents but
nothing enforced: the tail-bit mask on packed arrays, the canonical
per-packed-word partial-sum order, pickle-safety across the shard
executor boundary, and read-only discipline on cache-held arrays.
This package turns those contracts into tooling:

* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — the
  AST-based contract linter behind ``blasys lint`` and
  ``scripts/lint_contracts.py``.
* :mod:`repro.analysis.suppress` — the justified inline-waiver syntax
  (``# contract-ok: <rule> -- why``).
* :mod:`repro.analysis.pickleaudit` — static + runtime audits of shard
  payloads.
* :mod:`repro.analysis.sanitize` — the ``REPRO_SANITIZE=1`` runtime
  mode: frozen cache arrays and tail-bit assertions at engine
  boundaries.

See DESIGN.md "Static contracts" for the rule-to-invariant map.
"""

from .linter import Finding, Rule, default_rules, lint_file, run_lint
from .pickleaudit import AuditProblem, audit_payload, audit_payload_class
from .sanitize import (
    SANITIZE_ENV,
    assert_tail_clean,
    freeze,
    freeze_payload,
    frozen_view,
    sanitize_enabled,
)

__all__ = [
    "AuditProblem",
    "Finding",
    "Rule",
    "SANITIZE_ENV",
    "assert_tail_clean",
    "audit_payload",
    "audit_payload_class",
    "default_rules",
    "freeze",
    "freeze_payload",
    "frozen_view",
    "lint_file",
    "run_lint",
    "sanitize_enabled",
]
