"""AST-based contract linter core (``blasys lint``).

The linter walks Python sources and runs pluggable rules that encode
the determinism and safety contracts DESIGN.md documents ("Static
contracts"): unordered iteration feeding ordered outputs, unseeded RNG
construction, float reductions bypassing the canonical QoR partials,
raw cache returns without ``.copy()``, unsorted filesystem listings,
mutable default arguments, and shard-payload pickle-safety.

Each rule carries a ``name`` (used by the inline suppression syntax,
see :mod:`repro.analysis.suppress`) and a DESIGN.md ``anchor``.  The
linter exits non-zero on any unsuppressed finding; suppressions must
carry a justification, and unused or malformed suppressions are
findings themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .suppress import SuppressionIndex, parse_suppressions

DESIGN_DOC = "DESIGN.md"


@dataclass(frozen=True)
class Finding:
    """One lint hit, anchored to the invariant it guards."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    anchor: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
            f"{self.message} ({DESIGN_DOC} § {self.anchor})"
        )


@dataclass
class LintContext:
    """Per-file state handed to every rule."""

    path: Path
    #: Posix-style path tail used for sanctioned-module matching
    #: (e.g. ``repro/flow.py``) — stable regardless of checkout root.
    module_tail: str
    source: str
    tree: ast.AST
    suppressions: SuppressionIndex


class Rule:
    """Base class: subclasses set ``name``/``anchor`` and yield findings."""

    name: str = ""
    anchor: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            anchor=self.anchor,
        )


def module_tail(path: Path) -> str:
    """Package-relative posix path (``repro/core/qor.py``).

    Anchored at the last ``repro`` component so sanctioned-module
    matching is independent of the checkout root; paths outside the
    package fall back to their last three components (fixture files in
    temp dirs therefore never match a sanctioned set).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return "/".join(parts[-3:])


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))  # contract-ok: listing-order -- collected into a set, sorted on return
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_file(path: Path, rules: Sequence[Rule]) -> List[Finding]:
    """Run every rule over one file, applying inline suppressions."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
                anchor="Static contracts",
            )
        ]
    ctx = LintContext(
        path=path,
        module_tail=module_tail(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.suppressions.matches(finding.rule, finding.line):
                continue
            findings.append(finding)
    for sup in ctx.suppressions.malformed:
        findings.append(
            Finding(
                rule="bad-suppression",
                path=str(path),
                line=sup.line,
                col=0,
                message=(
                    "contract-ok needs rule name(s) and a '-- justification'"
                ),
                anchor="Static contracts",
            )
        )
    for sup in ctx.suppressions.unused():
        findings.append(
            Finding(
                rule="unused-suppression",
                path=str(path),
                line=sup.line,
                col=0,
                message=(
                    "suppression for "
                    + ", ".join(sup.rules)
                    + " matched no finding — remove the stale waiver"
                ),
                anchor="Static contracts",
            )
        )
    return findings


def default_rules() -> List[Rule]:
    """The shipped rule set (import deferred to avoid cycles)."""
    from .rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    audit_shards: bool = True,
) -> List[Finding]:
    """Lint ``paths`` (files or directories); returns all findings.

    ``audit_shards`` additionally runs the static shard-boundary audit
    (:mod:`repro.analysis.pickleaudit`) over the registered executor
    payload classes — an import-based check, so it is skipped when the
    executor module is not importable from the linted tree.
    """
    if rules is None:
        rules = default_rules()
    files = iter_python_files([Path(p) for p in paths])
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules))
    if audit_shards:
        findings.extend(_audit_shard_classes(files))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _audit_shard_classes(files: Sequence[Path]) -> List[Finding]:
    """Static audit of shard payload classes, if the executor is linted."""
    executor_files = [
        p for p in files if module_tail(p) == "repro/runtime/executor.py"
    ]
    if not executor_files:
        return []
    from ..runtime import executor as executor_mod
    from .pickleaudit import audit_payload_class

    findings: List[Finding] = []
    for cls in executor_mod.SHARD_PAYLOAD_CLASSES:
        for problem in audit_payload_class(cls):
            findings.append(
                Finding(
                    rule="shard-pickle",
                    path=str(executor_files[0]),
                    line=problem.line,
                    col=0,
                    message=problem.message,
                    anchor="Static contracts: shard pickle-safety",
                )
            )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point shared by ``blasys lint`` and scripts/lint_contracts."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="blasys lint",
        description="contract linter for the repro engines",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    parser.add_argument(
        "--no-shard-audit",
        action="store_true",
        help="skip the import-based shard payload audit",
    )
    args = parser.parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:<18} {DESIGN_DOC} § {rule.anchor}")
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    findings = run_lint(paths, rules, audit_shards=not args.no_shard_audit)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} contract finding(s)")
        return 1
    print("contract lint clean")
    return 0
