"""The compiled backend: numba loop kernels with pure-numpy fallbacks.

When numba is importable every kernel below runs as an
``@njit(cache=True)`` nopython loop; when it is not, the module-level
entry points fall back to optimized numpy (gather-free n-ary
accumulation, incremental gain scoring) and the decorated functions
remain plain Python — still callable, which is how the test suite
exercises the nopython bodies on small inputs even on numba-free hosts.

Byte-identity contract (DESIGN.md "Kernel backends"): integer/bitwise
kernels are trivially exact; the one float kernel
(:func:`word_partials`) replicates numpy's pairwise reduction order for
a 64-element row *exactly* — eight stride-8 accumulators combined as
``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))`` — so its partials match the
oracle's ``reshape(n_words, 64).sum(axis=1)`` bit for bit.

Nopython functions here must stay object-free (no dict/set literals or
comprehensions, no unordered iteration) — enforced by the
``kernel-purity`` lint rule.
"""

from __future__ import annotations

import numpy as np

from ..circuit.simulate import words_for
from . import reference

try:  # pragma: no cover - exercised only on numba-equipped hosts/CI legs
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the baked-in image has no numba
    numba = None
    HAVE_NUMBA = False


def njit(*args, **kwargs):
    """``numba.njit`` when available, identity decorator otherwise."""
    if HAVE_NUMBA:
        return numba.njit(*args, **kwargs)
    if args and callable(args[0]):
        return args[0]

    def deco(fn):
        return fn

    return deco


# SWAR popcount constants (64-bit parallel bit count).
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)


@njit(cache=True)
def _popcount_total(flat):
    total = np.uint64(0)
    for i in range(flat.shape[0]):
        x = flat[i]
        x = x - ((x >> _S1) & _M1)
        x = (x & _M2) + ((x >> _S2) & _M2)
        x = (x + (x >> _S4)) & _M4
        total += (x * _H01) >> _S56
    return np.int64(total)


@njit(cache=True)
def _popcount_rows(words, out):
    for r in range(words.shape[0]):
        acc = np.uint64(0)
        for i in range(words.shape[1]):
            x = words[r, i]
            x = x - ((x >> _S1) & _M1)
            x = (x & _M2) + ((x >> _S2) & _M2)
            x = (x + (x >> _S4)) & _M4
            acc += (x * _H01) >> _S56
        out[r] = acc


@njit(cache=True)
def _popcount_xor_rows(a, b, out):
    for r in range(a.shape[0]):
        acc = np.uint64(0)
        for i in range(a.shape[1]):
            x = a[r, i] ^ b[r, i]
            x = x - ((x >> _S1) & _M1)
            x = (x & _M2) + ((x >> _S2) & _M2)
            x = (x + (x >> _S4)) & _M4
            acc += (x * _H01) >> _S56
        out[r] = acc


def popcount_reduce(words: np.ndarray) -> int:
    if HAVE_NUMBA:
        flat = np.ascontiguousarray(words, dtype=np.uint64).reshape(-1)
        return int(_popcount_total(flat))
    return reference.popcount_reduce(words)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    if HAVE_NUMBA:
        w = np.ascontiguousarray(words, dtype=np.uint64)
        out = np.empty(w.shape[0], dtype=np.int64)
        _popcount_rows(w, out)
        return out
    return reference.popcount_rows(words)


def popcount_xor_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if HAVE_NUMBA:
        ac = np.ascontiguousarray(a, dtype=np.uint64)
        bc = np.ascontiguousarray(b, dtype=np.uint64)
        out = np.empty(ac.shape[0], dtype=np.int64)
        _popcount_xor_rows(ac, bc, out)
        return out
    return reference.popcount_xor_rows(a, b)


# ----------------------------------------------------------------------
# K2: incremental ASSO gain scoring
# ----------------------------------------------------------------------
@njit(cache=True)
def _gain_rows(M_masks, cov, full_mask, cand_masks, wtab, bonus, penalty,
               rows, gain):
    for ri in range(rows.shape[0]):
        r = rows[ri]
        nc = ~cov[r]
        g = M_masks[r] & nc
        b = ~M_masks[r] & nc & full_mask
        for c in range(cand_masks.shape[0]):
            cm = cand_masks[c]
            gain[r, c] = bonus * wtab[g & cm] - penalty * wtab[b & cm]


class IncrementalGainScorer:
    """Resident gain matrix, recomputed only for rows whose cover grew.

    ``gain[r, c]`` is a pure function of row ``r``'s good/bad masks, so
    rows untouched by a commit keep byte-identical floats; totals and
    usage are then evaluated with the oracle's exact expressions over
    the full matrix, making every level's ``(totals, usage)``
    bit-for-bit equal to a full recompute
    (:class:`repro.kernels.reference.FullGainScorer`).
    """

    __slots__ = (
        "_backend", "_M_masks", "_cand_masks", "_wtab", "_bonus",
        "_penalty", "_full_mask", "_cov", "_gain", "_dirty",
    )

    def __init__(
        self, backend, M_masks, cand_masks, wtab, bonus, penalty, m
    ) -> None:
        n = M_masks.shape[0]
        self._backend = backend
        self._M_masks = np.ascontiguousarray(M_masks, dtype=np.uint64)
        self._cand_masks = np.ascontiguousarray(cand_masks, dtype=np.uint64)
        self._wtab = np.ascontiguousarray(wtab, dtype=np.float64)
        self._bonus = float(bonus)
        self._penalty = float(penalty)
        self._full_mask = np.uint64((1 << m) - 1)
        self._cov = np.zeros(n, dtype=np.uint64)
        self._gain = np.empty((n, self._cand_masks.shape[0]), dtype=np.float64)
        self._dirty = np.ones(n, dtype=bool)

    def _refresh(self, rows: np.ndarray) -> None:
        if HAVE_NUMBA:
            _gain_rows(
                self._M_masks, self._cov, self._full_mask, self._cand_masks,
                self._wtab, self._bonus, self._penalty, rows, self._gain,
            )
            return
        good = self._M_masks[rows] & ~self._cov[rows]
        bad = ~self._M_masks[rows] & ~self._cov[rows] & self._full_mask
        good_sub = good[:, None] & self._cand_masks[None, :]
        bad_sub = bad[:, None] & self._cand_masks[None, :]
        self._gain[rows] = (
            self._bonus * self._wtab[good_sub]
            - self._penalty * self._wtab[bad_sub]
        )

    def score(self):
        self._backend.count_gain_score()
        rows = np.flatnonzero(self._dirty)
        if rows.size:
            self._refresh(rows)
            self._dirty[rows] = False
        usage = self._gain > 0
        totals = np.where(usage, self._gain, 0.0).sum(axis=0)
        return totals, usage

    def apply(self, use: np.ndarray, best: int) -> None:
        cm = self._cand_masks[best]
        idx = np.flatnonzero(use)
        old = self._cov[idx]
        new = old | cm
        self._cov[idx] = new
        self._dirty[idx[new != old]] = True


def make_gain_scorer(backend, M_masks, cand_masks, wtab, bonus, penalty, m):
    return IncrementalGainScorer(
        backend, M_masks, cand_masks, wtab, bonus, penalty, m
    )


# ----------------------------------------------------------------------
# K3: levelized n-ary gate sweep
# ----------------------------------------------------------------------
_OP_AND, _OP_OR, _OP_XOR = 0, 1, 2


@njit(cache=True)
def _nary_sweep(values, fanins, code, invert, out):
    n_words = values.shape[1]
    arity = fanins.shape[1]
    for gi in range(fanins.shape[0]):
        r0 = fanins[gi, 0]
        for wj in range(n_words):
            out[gi, wj] = values[r0, wj]
        for a in range(1, arity):
            r = fanins[gi, a]
            if code == _OP_AND:
                for wj in range(n_words):
                    out[gi, wj] &= values[r, wj]
            elif code == _OP_OR:
                for wj in range(n_words):
                    out[gi, wj] |= values[r, wj]
            else:
                for wj in range(n_words):
                    out[gi, wj] ^= values[r, wj]
        if invert:
            for wj in range(n_words):
                out[gi, wj] = ~out[gi, wj]


def nary_sweep(
    values: np.ndarray, fanins: np.ndarray, ufunc: np.ufunc, invert: bool
) -> np.ndarray:
    if ufunc is np.bitwise_and:
        code = _OP_AND
    elif ufunc is np.bitwise_or:
        code = _OP_OR
    elif ufunc is np.bitwise_xor:
        code = _OP_XOR
    else:  # pragma: no cover - engine only dispatches the three above
        return reference.nary_sweep(values, fanins, ufunc, invert)
    if HAVE_NUMBA:
        vals = np.ascontiguousarray(values, dtype=np.uint64)
        fi = np.ascontiguousarray(fanins, dtype=np.int64)
        out = np.empty((fi.shape[0], vals.shape[1]), dtype=np.uint64)
        _nary_sweep(vals, fi, code, invert, out)
        return out
    # Gather-free accumulation: one (g, W) row gather per fanin column
    # instead of the (g, arity, W) stacked gather + reduce.  Bitwise ops
    # are exact, so this is byte-identical to the oracle reduce.
    arity = fanins.shape[1]
    if arity == 1:
        acc = values[fanins[:, 0]].copy()
    else:
        acc = ufunc(values[fanins[:, 0]], values[fanins[:, 1]])
        for j in range(2, arity):
            ufunc(acc, values[fanins[:, j]], out=acc)
    if invert:
        np.invert(acc, out=acc)
    return acc


# ----------------------------------------------------------------------
# K4: per-packed-word QoR partial sums
# ----------------------------------------------------------------------
@njit(cache=True)
def _word_partials(terms, n_words):
    out = np.empty(n_words, dtype=np.float64)
    n = terms.shape[0]
    buf = np.zeros(64, dtype=np.float64)
    for wi in range(n_words):
        base = wi * 64
        if base + 64 <= n:
            a = terms[base:base + 64]
        else:
            for j in range(64):
                idx = base + j
                buf[j] = terms[idx] if idx < n else 0.0
            a = buf
        # numpy's pairwise reduction for a 64-element contiguous row:
        # eight stride-8 accumulators, then the fixed combine tree.
        r0 = a[0]
        r1 = a[1]
        r2 = a[2]
        r3 = a[3]
        r4 = a[4]
        r5 = a[5]
        r6 = a[6]
        r7 = a[7]
        for i in range(8, 64, 8):
            r0 += a[i]
            r1 += a[i + 1]
            r2 += a[i + 2]
            r3 += a[i + 3]
            r4 += a[i + 4]
            r5 += a[i + 5]
            r6 += a[i + 6]
            r7 += a[i + 7]
        out[wi] = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    return out


def word_partials(terms: np.ndarray, n_valid: int) -> np.ndarray:
    if HAVE_NUMBA:
        t = np.ascontiguousarray(terms, dtype=np.float64)
        return _word_partials(t, words_for(n_valid))
    return reference.word_partials(terms, n_valid)
