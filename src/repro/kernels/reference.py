"""The numpy reference backend — the byte-identity oracle.

Every function here is *the* canonical numpy expression the rest of the
codebase defines its results by; optimized backends are gated on
matching these outputs bit for bit (tests/test_kernels.py drives each
kernel against this module on randomized packed inputs).  Nothing here
may be "optimized" without a corresponding contract change in DESIGN.md
"Kernel backends".
"""

from __future__ import annotations

import numpy as np

from ..circuit.simulate import bit_count, words_for


def popcount_reduce(words: np.ndarray) -> int:
    """Total popcount: the canonical ``bit_count(words).sum()``."""
    return int(bit_count(words).sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcounts: the canonical ``bit_count(w).sum(axis=1)``."""
    return bit_count(words).sum(axis=1)


def popcount_xor_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row Hamming counts: ``bit_count(a ^ b).sum(axis=1)``."""
    return bit_count(a ^ b).sum(axis=1)


class FullGainScorer:
    """The oracle gain scorer: full recompute from the cover each level.

    ``score()`` is exactly :func:`repro.core.bmf.packed.
    candidate_gains_masks` applied to the good/bad masks of the current
    cover — the historical per-level computation, kept verbatim.
    """

    __slots__ = (
        "_backend", "_M_masks", "_cand_masks", "_wtab",
        "_bonus", "_penalty", "_full_mask", "_cov",
    )

    def __init__(
        self, backend, M_masks, cand_masks, wtab, bonus, penalty, m
    ) -> None:
        self._backend = backend
        self._M_masks = M_masks
        self._cand_masks = cand_masks
        self._wtab = wtab
        self._bonus = bonus
        self._penalty = penalty
        self._full_mask = np.uint64((1 << m) - 1)
        self._cov = np.zeros(M_masks.shape[0], dtype=np.uint64)

    def score(self):
        from ..core.bmf.packed import candidate_gains_masks

        self._backend.count_gain_score()
        good = self._M_masks & ~self._cov
        bad = ~self._M_masks & ~self._cov & self._full_mask
        return candidate_gains_masks(
            good, bad, self._cand_masks, self._wtab, self._bonus,
            self._penalty,
        )

    def apply(self, use: np.ndarray, best: int) -> None:
        self._cov[use] |= self._cand_masks[best]


def make_gain_scorer(backend, M_masks, cand_masks, wtab, bonus, penalty, m):
    return FullGainScorer(
        backend, M_masks, cand_masks, wtab, bonus, penalty, m
    )


def nary_sweep(
    values: np.ndarray, fanins: np.ndarray, ufunc: np.ufunc, invert: bool
) -> np.ndarray:
    """The canonical gather-and-reduce: ``ufunc.reduce(values[fanins], 1)``."""
    acc = ufunc.reduce(values[fanins], axis=1)
    return ~acc if invert else acc


def word_partials(terms: np.ndarray, n_valid: int) -> np.ndarray:
    """The canonical padded-reshape row sums (numpy pairwise per word)."""
    n_words = words_for(n_valid)
    padded = np.zeros(n_words * 64, dtype=float)
    padded[:n_valid] = terms
    return padded.reshape(n_words, 64).sum(axis=1)
