"""Pluggable kernel backends for the packed-bitset hot loops.

BLASYS spends its wall time in four inner loops: fused popcount
reductions over packed ``uint64`` words, the ASSO cover-gain scoring,
the levelized SoA gate-batch sweep, and the per-packed-word QoR partial
sums.  This package routes each through a :class:`KernelBackend` with
two implementations:

* ``numpy`` — the reference backend: exactly the vectorized numpy
  expressions the rest of the codebase has always used.  This is the
  byte-identity *oracle* of the two-engine discipline (DESIGN.md
  "Kernel backends"); every other backend is gated on matching it bit
  for bit.
* ``jit`` — the compiled backend: ``numba`` ``@njit(cache=True)`` loop
  kernels when numba is importable, and optimized pure-numpy fallbacks
  (incremental gain scoring, gather-free n-ary accumulation) when it is
  not.  Either way the outputs are byte-identical to the oracle, so
  backend choice never changes a trajectory, profile, or QoR float —
  only wall time.

Selection precedence is ``REPRO_KERNELS`` env > CLI ``--kernels`` >
``ExplorerConfig.kernels`` (the CLI writes the config field, so in
practice: env > config).  ``auto`` resolves to ``jit`` when numba is
available and to ``numpy`` (with a single warning per process) when it
is not; an explicit ``jit`` request without numba keeps the jit
backend's numpy fallbacks and also warns once.

Kernels receive read-only views under ``REPRO_SANITIZE=1`` (the
sanitizer's frozen-array hand-outs) and therefore never write their
inputs; anything a kernel mutates it allocated itself.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

#: Environment override (highest-precedence selection knob).
KERNELS_ENV = "REPRO_KERNELS"

#: Values accepted by ``ExplorerConfig.kernels`` / CLI ``--kernels``.
KERNEL_CHOICES = ("numpy", "jit", "auto")

#: Concrete backend names (``auto`` resolves to one of these).
BACKEND_NAMES = ("numpy", "jit")

#: Per-kernel call-counter keys, in display order.
KERNEL_COUNTERS = ("popcount", "gains", "sweep", "partials")


def numba_available() -> bool:
    """True when numba imports cleanly (the jit backend can compile)."""
    from . import jit

    return jit.HAVE_NUMBA


class KernelBackend:
    """One resolved backend: named kernel entry points plus call counters.

    Instances are process-wide singletons per name (see
    :func:`get_backend`), so the counters accumulate monotonically;
    callers that need per-run numbers snapshot before/after
    (:meth:`snapshot` / :meth:`delta`).
    """

    __slots__ = ("name", "compiled", "calls", "_impl")

    def __init__(self, name: str, impl, compiled: bool) -> None:
        self.name = name
        self._impl = impl
        #: True only when numba actually backs the kernels.
        self.compiled = compiled
        self.calls: Dict[str, int] = {k: 0 for k in KERNEL_COUNTERS}

    # -- K1: fused popcount reductions ---------------------------------
    def popcount_reduce(self, words: np.ndarray) -> int:
        """Total set-bit count of a packed array (any shape)."""
        self.calls["popcount"] += 1
        return self._impl.popcount_reduce(words)

    def popcount_rows(self, words: np.ndarray) -> np.ndarray:
        """Per-row set-bit counts of a ``(m, W)`` packed matrix (int64)."""
        self.calls["popcount"] += 1
        return self._impl.popcount_rows(words)

    def popcount_xor_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-row popcount of ``a ^ b`` — the fused Hamming primitive."""
        self.calls["popcount"] += 1
        return self._impl.popcount_xor_rows(a, b)

    # -- K2: ASSO cover-gain scoring -----------------------------------
    def make_gain_scorer(
        self,
        M_masks: np.ndarray,
        cand_masks: np.ndarray,
        wtab: np.ndarray,
        bonus: float,
        penalty: float,
        m: int,
    ):
        """A per-descent gain scorer owning the cover-mask state.

        The returned object exposes ``score() -> (totals, usage)`` and
        ``apply(use, best)`` with the exact semantics of
        :func:`repro.core.bmf.packed.candidate_gains_masks` over the
        current cover; backends differ only in *how* the gain matrix is
        produced (full recompute vs. incremental dirty-row updates), and
        both yield byte-identical totals/usage at every level.
        """
        return self._impl.make_gain_scorer(
            self, M_masks, cand_masks, wtab, bonus, penalty, m
        )

    def count_gain_score(self) -> None:
        """Counter hook for scorers (one per scored descent level)."""
        self.calls["gains"] += 1

    # -- K3: levelized SoA gate sweep ----------------------------------
    def nary_sweep(
        self,
        values: np.ndarray,
        fanins: np.ndarray,
        ufunc: np.ufunc,
        invert: bool,
    ) -> np.ndarray:
        """Reduce an n-ary bitwise gate batch: ``(g, W)`` results.

        ``ufunc`` is one of ``np.bitwise_and`` / ``or`` / ``xor``;
        bitwise reductions are exact and fully associative, so every
        backend matches ``ufunc.reduce(values[fanins], axis=1)`` bit for
        bit, unspecified gate tails included.
        """
        self.calls["sweep"] += 1
        return self._impl.nary_sweep(values, fanins, ufunc, invert)

    # -- K4: per-packed-word QoR partial sums --------------------------
    def word_partials(self, terms: np.ndarray, n_valid: int) -> np.ndarray:
        """Per-64-sample-word sums of an error-term vector.

        Element ``i`` sums ``terms[64*i : 64*(i+1)]`` (missing tail
        entries contribute exactly ``0.0``) in numpy's pairwise
        reduction order — the canonical partial of DESIGN.md "Streaming
        execution", so chunked accumulation stays byte-identical.
        """
        self.calls["partials"] += 1
        return self._impl.word_partials(terms, n_valid)

    # -- counters ------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        return dict(self.calls)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        return {k: self.calls[k] - before.get(k, 0) for k in KERNEL_COUNTERS}


_BACKENDS: Dict[str, KernelBackend] = {}
_WARNED_FALLBACK = False
_TLS = threading.local()


def _warn_no_numba(requested: str, resolved: str) -> None:
    global _WARNED_FALLBACK
    if _WARNED_FALLBACK:
        return
    _WARNED_FALLBACK = True
    warnings.warn(
        f"numba is not installed; --kernels {requested} resolves to the "
        f"{resolved} backend (pure-numpy kernels, byte-identical results)",
        RuntimeWarning,
        stacklevel=3,
    )


def get_backend(name: str) -> KernelBackend:
    """The process-wide backend instance for a concrete backend name."""
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    backend = _BACKENDS.get(name)
    if backend is None:
        if name == "jit":
            from . import jit as impl

            backend = KernelBackend("jit", impl, compiled=impl.HAVE_NUMBA)
        else:
            from . import reference as impl

            backend = KernelBackend("numpy", impl, compiled=False)
        _BACKENDS[name] = backend
    return backend


def resolve_backend(request: str = "auto") -> KernelBackend:
    """Resolve a selection request to a backend instance.

    ``REPRO_KERNELS`` overrides ``request`` when set (env > CLI/config);
    ``auto`` picks ``jit`` when numba is available and ``numpy``
    otherwise, warning once per process about the fallback.  An explicit
    ``jit`` without numba keeps the jit backend (numpy-fallback kernels)
    and also warns once.
    """
    env = os.environ.get(KERNELS_ENV, "").strip()
    if env:
        if env not in KERNEL_CHOICES:
            raise ValueError(
                f"{KERNELS_ENV}={env!r} is not one of {KERNEL_CHOICES}"
            )
        request = env
    if request not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel selection {request!r}; expected one of "
            f"{KERNEL_CHOICES}"
        )
    if request == "auto":
        if numba_available():
            return get_backend("jit")
        _warn_no_numba("auto", "numpy")
        return get_backend("numpy")
    if request == "jit" and not numba_available():
        _warn_no_numba("jit", "jit (numpy fallback)")
    return get_backend(request)


def active_backend() -> KernelBackend:
    """The backend governing kernel calls on this thread.

    Precedence: ``REPRO_KERNELS`` env, then the backend installed by
    :func:`use_backend` (``explore()`` installs its resolved config
    choice for the duration of a run), then the numpy oracle.  Code that
    never goes through ``explore()`` therefore keeps today's numpy
    behavior exactly; shard worker processes inherit the env override
    but not the thread-local, which is byte-identical by contract
    (counters are only aggregated in the parent).
    """
    env = os.environ.get(KERNELS_ENV, "").strip()
    if env:
        return resolve_backend(env)
    installed: Optional[KernelBackend] = getattr(_TLS, "backend", None)
    if installed is not None:
        return installed
    return get_backend("numpy")


class use_backend:
    """Context manager installing a backend as this thread's active one."""

    def __init__(self, backend: KernelBackend) -> None:
        self._backend = backend
        self._prev: Tuple[bool, Optional[KernelBackend]] = (False, None)

    def __enter__(self) -> KernelBackend:
        self._prev = (hasattr(_TLS, "backend"), getattr(_TLS, "backend", None))
        _TLS.backend = self._backend
        return self._backend

    def __exit__(self, *exc) -> None:
        had, prev = self._prev
        if had:
            _TLS.backend = prev
        else:
            del _TLS.backend


__all__ = [
    "BACKEND_NAMES",
    "KERNEL_CHOICES",
    "KERNEL_COUNTERS",
    "KERNELS_ENV",
    "KernelBackend",
    "active_backend",
    "get_backend",
    "numba_available",
    "resolve_backend",
    "use_backend",
]
