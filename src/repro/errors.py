"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid netlist operations."""


class SimulationError(ReproError):
    """Raised when simulation inputs do not match the circuit."""


class SynthesisError(ReproError):
    """Raised when logic synthesis or technology mapping fails."""


class FactorizationError(ReproError):
    """Raised for invalid Boolean matrix factorization requests."""


class DecompositionError(ReproError):
    """Raised when circuit decomposition cannot satisfy its constraints."""


class ExplorationError(ReproError):
    """Raised when design-space exploration is misconfigured."""


class ParseError(ReproError):
    """Raised when an interchange file (e.g. BLIF) cannot be parsed."""


class ContractViolation(ReproError):
    """Raised when a runtime contract check fails.

    The sanitizer mode (``REPRO_SANITIZE=1`` / ``ExplorerConfig.sanitize``,
    see :mod:`repro.analysis.sanitize`) turns documented invariants — the
    tail-bit mask on packed arrays at engine boundaries, pickle-safety of
    shard payloads — into immediate tracebacks instead of silent
    downstream corruption.  (Aliasing violations surface as numpy
    ``ValueError: assignment destination is read-only`` on the frozen
    array itself.)
    """
