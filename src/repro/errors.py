"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid netlist operations."""


class SimulationError(ReproError):
    """Raised when simulation inputs do not match the circuit."""


class SynthesisError(ReproError):
    """Raised when logic synthesis or technology mapping fails."""


class FactorizationError(ReproError):
    """Raised for invalid Boolean matrix factorization requests."""


class DecompositionError(ReproError):
    """Raised when circuit decomposition cannot satisfy its constraints."""


class ExplorationError(ReproError):
    """Raised when design-space exploration is misconfigured."""


class ParseError(ReproError):
    """Raised when an interchange file (e.g. BLIF) cannot be parsed."""
