"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid netlist operations."""


class SimulationError(ReproError):
    """Raised when simulation inputs do not match the circuit."""


class SynthesisError(ReproError):
    """Raised when logic synthesis or technology mapping fails."""


class FactorizationError(ReproError):
    """Raised for invalid Boolean matrix factorization requests."""


class DecompositionError(ReproError):
    """Raised when circuit decomposition cannot satisfy its constraints."""


class ExplorationError(ReproError):
    """Raised when design-space exploration is misconfigured."""


class ParseError(ReproError):
    """Raised when an interchange file (e.g. BLIF) cannot be parsed."""


class ShardFailure(ReproError):
    """Raised when a shard task fails permanently.

    The supervised executor (:mod:`repro.runtime.executor`) retries a
    failed shard on the pool (bounded, with backoff) and then re-runs it
    in-process; only when the in-process fallback *also* fails does the
    failure propagate — as this exception, carrying the shard index and
    the formatted worker traceback of the last pool attempt so the root
    cause is never lost behind the retry machinery.
    """


class WorkerTimeout(ReproError):
    """Raised (internally) when a worker exceeds its attempt timeout.

    A hung worker can no longer block a run forever: the supervisor
    times the attempt out, terminates and respawns the compromised pool
    (bounded by the respawn budget), and retries or falls back to
    in-process execution.  Instances surface to callers only inside a
    :class:`ShardFailure` chain.
    """


class CheckpointError(ReproError):
    """Raised when an exploration checkpoint cannot be loaded or applied.

    Covers unreadable/corrupt checkpoint files, format-version mismatches,
    and resuming against a different circuit or search configuration than
    the one that wrote the checkpoint (fingerprint mismatch — see
    :mod:`repro.runtime.checkpoint`).
    """


class FaultSpecError(ReproError):
    """Raised for malformed ``REPRO_FAULTS`` / ``--faults`` specs."""


class JobRejected(ReproError):
    """Raised when the exploration service refuses to admit a job.

    Admission control (:mod:`repro.service.scheduler`) bounds the queue
    depth and the summed memory estimate of admitted jobs; a saturated
    service rejects new work *at submit time* with the concrete reason
    (queue full, memory budget exceeded, service draining) instead of
    accepting jobs it cannot serve.  Rejection is an admission verdict,
    not a failure — nothing about the job itself is wrong.
    """


class JobDeadlineExceeded(ReproError):
    """Raised when a job's wall-clock deadline expires mid-exploration.

    Deadlines are enforced cooperatively: the exploration loop and the
    supervised pool layers check the job's :class:`~repro.runtime.cancel.
    CancelToken` at iteration/dispatch boundaries, so an expired job
    stops at the next safe point — after flushing a final checkpoint
    when checkpointing is active — and only that job fails; concurrent
    jobs proceed untouched.
    """


class JobCancelled(ReproError):
    """Raised inside a job whose caller requested cancellation.

    Same cooperative mechanism as :class:`JobDeadlineExceeded`, different
    verdict: the work was abandoned on purpose, not timed out.
    """


class ServiceShutdown(ReproError):
    """Raised inside in-flight work when a graceful shutdown begins.

    SIGTERM/SIGINT (daemon or plain CLI run — see
    :class:`~repro.runtime.cancel.ShutdownGuard`) cancels outstanding
    work with this exception; the exploration loop flushes a final
    checkpoint before letting it propagate, so an interrupted job
    resumes byte-identically on the next start.  Distinct from
    :class:`JobCancelled` so recovery logic can tell "abandon" from
    "continue later".
    """


class ContractViolation(ReproError):
    """Raised when a runtime contract check fails.

    The sanitizer mode (``REPRO_SANITIZE=1`` / ``ExplorerConfig.sanitize``,
    see :mod:`repro.analysis.sanitize`) turns documented invariants — the
    tail-bit mask on packed arrays at engine boundaries, pickle-safety of
    shard payloads — into immediate tracebacks instead of silent
    downstream corruption.  (Aliasing violations surface as numpy
    ``ValueError: assignment destination is read-only`` on the frozen
    array itself.)
    """
