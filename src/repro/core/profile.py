"""Factorization profiling (Algorithm 1, lines 3–10).

For every window and every factorization degree ``f`` in ``1 .. m_i - 1``,
factor the window's truth table and record the approximate table
``T_{s_i, f}`` together with an *area estimate* of the factored
implementation.  The paper's design-metric model during exploration is
exactly the sum of these per-window areas (§4.2); the final chosen netlist
is re-synthesized in full.

Two factorization families are profiled:

* **bmf** — general ASSO-style factorization; the compressor ``B`` is
  re-synthesized from its truth table (SOP/ANF/shared-BDD, whichever maps
  smallest).
* **cone** — column-subset factorization (``B`` = selected original output
  columns); the compressor reuses the window's own gates, so its area is
  bounded by the exact window and decreases monotonically with ``f``.

The default ``hybrid`` selection keeps, per degree, the cone variant unless
the general factorization is substantially more accurate — matching the
paper's observed behaviour of smooth area reduction with occasional bumps.
Espresso covers and variant areas are memoized by content; identical
windows (e.g. ripple-adder slices) hit the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit
from ..circuit.words import WordSpec
from ..synth.espresso import EspressoOptions
from ..synth.library import LIB65, Library
from ..synth.synthesis import resynthesize, synthesize_outputs_shared
from ..synth.techmap import tech_map
from .bmf import bool_product, factorize
from .bmf.asso import DEFAULT_TAUS
from .bmf.colsel import column_select_bmf
from ..partition.substitute import (
    ConeReplacement,
    FactoredReplacement,
    Replacement,
    substitute_windows,
)
from ..partition.windows import Window

#: Window-output weighting schemes for the WQoR factorization (§3.2).
WEIGHT_MODES = ("uniform", "significance")

#: Variant-selection policies.
SELECTIONS = ("bmf", "cone", "hybrid")

#: In hybrid mode, prefer the general BMF variant only when its error is
#: below this fraction of the cone variant's error.
HYBRID_ERROR_FACTOR = 0.8


@dataclass(frozen=True)
class CandidateVariant:
    """One profiled approximation of a window at degree ``f``.

    Attributes:
        f: Factorization degree.
        table: The approximate truth table ``B ∘ C`` (what gets simulated).
        B / C: The factor pair.
        area: Synthesized area estimate of compressor + decompressor (µm²).
        bmf_error: Weighted Hamming error of the factorization.
        replacement: How to realize this variant in the netlist.
        kind: ``"bmf"`` or ``"cone"``.
    """

    f: int
    table: np.ndarray
    B: np.ndarray
    C: np.ndarray
    area: float
    bmf_error: float
    replacement: Replacement
    kind: str


@dataclass
class WindowProfile:
    """Profiling output for one window.

    ``variants`` maps an approximation *level* to the candidate list for
    that level; level ``max_degree`` means exact, and exploration
    decrements levels one at a time, choosing among the level's candidates
    by measured whole-circuit error.  For BLASYS the level is the
    factorization degree ``f`` (with up to two candidates per degree: the
    weighted-QoR and the uniform factorization) and ``max_degree`` is the
    window's output count; other flows (e.g. the SALSA baseline) define
    their own ladder via ``levels``.
    """

    window: Window
    table: np.ndarray
    exact_area: float
    weights: Optional[np.ndarray]
    variants: Dict[int, List[CandidateVariant]] = field(default_factory=dict)
    levels: Optional[int] = None

    @property
    def max_degree(self) -> int:
        """The exact level; exploration starts here."""
        return self.levels if self.levels is not None else self.window.n_outputs


class _VariantCosting:
    """Memoized synthesis of factored window implementations."""

    def __init__(
        self, library: Library, options: EspressoOptions, match_macros: bool
    ) -> None:
        self.library = library
        self.options = options
        self.match_macros = match_macros
        self._cache: Dict[bytes, float] = {}

    def factored_area(self, B: np.ndarray, C: np.ndarray, algebra: str) -> float:
        key = B.tobytes() + b"|" + C.tobytes() + algebra.encode()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        builder = CircuitBuilder("variant")
        k = int(np.log2(B.shape[0]))
        ins = [builder.input(f"x{i}") for i in range(k)]
        combine = builder.or_ if algebra == "semiring" else builder.xor_
        t_sigs = synthesize_outputs_shared(builder, B, ins, self.options)
        for j in range(C.shape[1]):
            parts = [t_sigs[l] for l in range(C.shape[0]) if C[l, j]]
            if not parts:
                out = builder.const(False)
            elif len(parts) == 1:
                out = parts[0]
            else:
                out = combine(*parts)
            builder.output(f"y{j}", out)
        area = tech_map(
            builder.build(), self.library, match_macros=self.match_macros
        ).area
        self._cache[key] = area
        return area

    def cone_area(
        self,
        circuit: Circuit,
        window: Window,
        replacement: ConeReplacement,
    ) -> float:
        """Area of a cone variant: kept cone + decompressor gates."""
        sub = window.subcircuit(circuit)
        sub_window = Window(
            0,
            tuple(range(len(sub.inputs), sub.n_nodes)),
            tuple(sub.inputs),
            tuple(sub.output_nodes()),
        )
        # Splice the replacement into the standalone window circuit and map.
        approx = substitute_windows(
            sub, [sub_window], {0: replacement}, espresso_options=self.options
        )
        return tech_map(
            resynthesize(approx, options=self.options),
            self.library,
            match_macros=self.match_macros,
        ).area

    def window_area(self, circuit: Circuit, window: Window) -> float:
        return tech_map(
            resynthesize(window.subcircuit(circuit), options=self.options),
            self.library,
            match_macros=self.match_macros,
        ).area


def output_significance(circuit: Circuit) -> np.ndarray:
    """Heuristic numeric significance of every node.

    Primary-output drivers receive the place value of their bit within its
    output word, normalized so each word's MSB weighs 1; the scores then
    propagate backwards (summing over fanouts).  Reconvergence double-counts
    — acceptable for a *weighting* heuristic.  Used to build per-window
    WQoR weight vectors for windows whose outputs are internal wires.
    """
    sig = np.zeros(circuit.n_nodes, dtype=float)
    words: Sequence[WordSpec] = circuit.attrs.get("words") or []
    covered = set()
    for w in words:
        top = max(w.width - 1, 0)
        for bit, port_idx in enumerate(w.indices):
            port = circuit.outputs[port_idx]
            sig[port.node] += 2.0 ** (bit - top)
            covered.add(port_idx)
    for idx, port in enumerate(circuit.outputs):
        if idx not in covered:
            sig[port.node] += 1.0
    for nid in range(circuit.n_nodes - 1, -1, -1):
        if sig[nid] > 0:
            for f in circuit.node(nid).fanins:
                sig[f] += sig[nid]
    return sig


def window_weights(
    circuit: Circuit, window: Window, mode: str, significance: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Per-output WQoR weight vector for one window (None = uniform)."""
    if mode == "uniform":
        return None
    raw = np.array(
        [max(significance[o], 1e-12) for o in window.outputs], dtype=float
    )
    return raw * (len(raw) / raw.sum())


def profile_windows(
    circuit: Circuit,
    windows: Sequence[Window],
    method: str = "asso",
    algebra: str = "semiring",
    taus: Sequence[float] = DEFAULT_TAUS,
    weight_mode: str = "uniform",
    selection: str = "hybrid",
    library: Library = LIB65,
    espresso_options: EspressoOptions = EspressoOptions(),
    estimate_area: bool = True,
    match_macros: bool = False,
) -> List[WindowProfile]:
    """Run the profiling phase over all windows.

    Args:
        circuit: Parent circuit.
        windows: Its decomposition.
        method / algebra / taus: Passed to :func:`repro.core.bmf.factorize`
            for the general-BMF variants.
        weight_mode: ``"uniform"`` (plain BMF) or ``"significance"`` (§3.2
            weighted QoR, weights derived from output-bit significance).
        selection: ``"bmf"`` (general factorization only), ``"cone"``
            (column-subset only), or ``"hybrid"`` (best of both per degree).
        estimate_area: Skip area synthesis when False (faster).
        match_macros: Allow FA/HA macro cells in the area oracle.  Off by
            default so exact windows and re-synthesized variants are costed
            through an identical gate-level model.

    Returns:
        One :class:`WindowProfile` per window with variants for every
        ``f`` in ``1 .. m_i - 1``.
    """
    if weight_mode not in WEIGHT_MODES:
        raise ValueError(
            f"unknown weight mode {weight_mode!r}; expected {WEIGHT_MODES}"
        )
    if selection not in SELECTIONS:
        raise ValueError(
            f"unknown selection {selection!r}; expected {SELECTIONS}"
        )
    sig = output_significance(circuit) if weight_mode != "uniform" else None
    costing = _VariantCosting(library, espresso_options, match_macros)

    def build_variant(table, f, weights, w) -> CandidateVariant:
        """One candidate at degree ``f`` under one weighting (hybrid rule)."""
        bmf_variant = None
        cone_variant = None
        if selection in ("bmf", "hybrid"):
            result = factorize(
                table, f, weights=weights, algebra=algebra,
                method=method, taus=taus,
            )
            area = (
                costing.factored_area(result.B, result.C, algebra)
                if estimate_area
                else 0.0
            )
            bmf_variant = CandidateVariant(
                f, result.product, result.B, result.C, area, result.error,
                FactoredReplacement(result.B, result.C, algebra), "bmf",
            )
        if selection in ("cone", "hybrid"):
            cs = column_select_bmf(table, f, weights=weights, algebra=algebra)
            replacement = ConeReplacement(cs.selected, cs.C, algebra)
            area = (
                costing.cone_area(circuit, w, replacement)
                if estimate_area
                else 0.0
            )
            cone_variant = CandidateVariant(
                f, bool_product(cs.B, cs.C, algebra), cs.B, cs.C, area,
                cs.error, replacement, "cone",
            )
        if bmf_variant is None:
            return cone_variant
        if cone_variant is None:
            return bmf_variant
        take_bmf = bmf_variant.bmf_error < (
            HYBRID_ERROR_FACTOR * cone_variant.bmf_error
        )
        return bmf_variant if take_bmf else cone_variant

    profiles: List[WindowProfile] = []
    for w in windows:
        table = w.table(circuit)
        weights = window_weights(circuit, w, weight_mode, sig)
        exact_area = costing.window_area(circuit, w) if estimate_area else 0.0
        profile = WindowProfile(w, table, exact_area, weights)
        # Dual-rail candidates: the weighted factorization protects
        # numerically significant wires (right at tight error budgets); the
        # uniform one is free to break them (right at loose budgets, e.g.
        # cutting an adder's carry chain).  The explorer picks per step by
        # measured whole-circuit error.
        weight_rails = [weights] if weights is None else [weights, None]
        for f in range(1, w.n_outputs):
            by_table: Dict[bytes, CandidateVariant] = {}
            for rail in weight_rails:
                variant = build_variant(table, f, rail, w)
                key = variant.table.tobytes()
                held = by_table.get(key)
                # identical tables measure identically; keep the cheaper
                if held is None or variant.area < held.area:
                    by_table[key] = variant
            profile.variants[f] = list(by_table.values())
        profiles.append(profile)
    return profiles
