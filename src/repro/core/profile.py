"""Factorization profiling (Algorithm 1, lines 3–10).

For every window and every factorization degree ``f`` in ``1 .. m_i - 1``,
factor the window's truth table and record the approximate table
``T_{s_i, f}`` together with an *area estimate* of the factored
implementation.  The paper's design-metric model during exploration is
exactly the sum of these per-window areas (§4.2); the final chosen netlist
is re-synthesized in full.

Two factorization families are profiled:

* **bmf** — general ASSO-style factorization; the compressor ``B`` is
  re-synthesized from its truth table (SOP/ANF/shared-BDD, whichever maps
  smallest).
* **cone** — column-subset factorization (``B`` = selected original output
  columns); the compressor reuses the window's own gates, so its area is
  bounded by the exact window and decreases monotonically with ``f``.

The default ``hybrid`` selection keeps, per degree, the cone variant unless
the general factorization is substantially more accurate — matching the
paper's observed behaviour of smooth area reduction with occasional bumps.

Profiling is dispatched through :mod:`repro.runtime`: each window becomes
one self-contained :class:`WindowTask` (truth table + weights + standalone
subcircuit + parameters) executed by the module-level worker
:func:`profile_window_task`, so the work parallelizes across processes,
same-run duplicate windows (e.g. ripple-adder slices) are computed once,
and results persist in an optional content-addressed on-disk cache.

The worker runs on the **degree ladder**: both greedy kernels are
prefix-stable in ``f``, so one descent per (tau, weight rail) produces the
results for every degree (``factorize_ladder`` / ``column_select_ladder``)
instead of one descent per degree — an ``O(m)`` reduction in factorization
work with byte-identical output.  :func:`profile_window_task_reference`
keeps the literal per-degree path; the test suite runs both and asserts
equality, which is the contract that keeps existing
:class:`~repro.runtime.ProfileCache` entries valid (DESIGN.md "BMF
kernel").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit
from ..circuit.words import WordSpec
from ..runtime import ProfileCache, RuntimeStats, array_token, run_tasks
from ..runtime.cache import canonical_circuit_bytes
from ..synth.espresso import EspressoOptions
from ..synth.library import LIB65, Library
from ..synth.synthesis import resynthesize, synthesize_outputs_shared
from ..synth.techmap import tech_map
from .bmf import bool_product, factorize, factorize_ladder
from .bmf.asso import DEFAULT_TAUS
from .bmf.colsel import column_select_bmf, column_select_ladder
from ..partition.substitute import (
    ConeReplacement,
    FactoredReplacement,
    Replacement,
    substitute_windows,
)
from ..partition.windows import Window

#: Window-output weighting schemes for the WQoR factorization (§3.2).
WEIGHT_MODES = ("uniform", "significance")

#: Variant-selection policies.
SELECTIONS = ("bmf", "cone", "hybrid")

#: In hybrid mode, prefer the general BMF variant only when its error is
#: below this fraction of the cone variant's error.
HYBRID_ERROR_FACTOR = 0.8


@dataclass(frozen=True)
class CandidateVariant:
    """One profiled approximation of a window at degree ``f``.

    Attributes:
        f: Factorization degree.
        table: The approximate truth table ``B ∘ C`` (what gets simulated).
        B / C: The factor pair.
        area: Synthesized area estimate of compressor + decompressor (µm²).
        bmf_error: Weighted Hamming error of the factorization.
        replacement: How to realize this variant in the netlist.
        kind: ``"bmf"`` or ``"cone"``.
    """

    f: int
    table: np.ndarray
    B: np.ndarray
    C: np.ndarray
    area: float
    bmf_error: float
    replacement: Replacement
    kind: str


@dataclass
class WindowProfile:
    """Profiling output for one window.

    ``variants`` maps an approximation *level* to the candidate list for
    that level; level ``max_degree`` means exact, and exploration
    decrements levels one at a time, choosing among the level's candidates
    by measured whole-circuit error.  For BLASYS the level is the
    factorization degree ``f`` (with up to two candidates per degree: the
    weighted-QoR and the uniform factorization) and ``max_degree`` is the
    window's output count; other flows (e.g. the SALSA baseline) define
    their own ladder via ``levels``.
    """

    window: Window
    table: np.ndarray
    exact_area: float
    weights: Optional[np.ndarray]
    variants: Dict[int, List[CandidateVariant]] = field(default_factory=dict)
    levels: Optional[int] = None

    @property
    def max_degree(self) -> int:
        """The exact level; exploration starts here."""
        return self.levels if self.levels is not None else self.window.n_outputs


@dataclass(frozen=True)
class ProfileParams:
    """Everything besides the window itself that profiling depends on.

    One frozen record shared by all of a run's :class:`WindowTask`\\ s; its
    :meth:`cache_token` is part of every cache key (see DESIGN.md).  The
    WQoR weighting mode is *not* here — the weight vector itself travels
    with each task.
    """

    method: str = "asso"
    algebra: str = "semiring"
    taus: Tuple[float, ...] = tuple(DEFAULT_TAUS)
    selection: str = "hybrid"
    library: Library = LIB65
    espresso: EspressoOptions = EspressoOptions()
    estimate_area: bool = True
    match_macros: bool = False

    def cache_token(self) -> bytes:
        e = self.espresso
        # The library token covers cell contents (name + area per cell),
        # not just the library name — a same-named library with different
        # areas must not serve stale cached costs.
        cells = ",".join(
            f"{c.name}:{c.area!r}"
            for c in sorted(self.library.cells, key=lambda c: c.name)
        )
        return "|".join(
            [
                self.method,
                self.algebra,
                ",".join(repr(t) for t in self.taus),
                self.selection,
                f"{self.library.name}[{cells}]",
                repr((e.quality, e.literal_order_msb_first, e.seed)),
                repr((self.estimate_area, self.match_macros)),
            ]
        ).encode()


@dataclass(frozen=True)
class WindowTask:
    """A self-contained profiling work item for one window.

    Attributes:
        table: The window's exact truth table.
        weights: WQoR weight vector, or None for uniform.
        sub: The window as a standalone circuit (needed for cone and exact
            areas); None when ``estimate_area`` is off.
        params: Shared profiling parameters.
    """

    table: np.ndarray
    weights: Optional[np.ndarray]
    sub: Optional[Circuit]
    params: ProfileParams

    def cache_key(self) -> str:
        sub_token = (
            canonical_circuit_bytes(self.sub) if self.sub is not None else b"~"
        )
        return ProfileCache.key_of(
            array_token(self.table),
            array_token(self.weights),
            self.params.cache_token(),
            sub_token,
        )


@dataclass
class WindowTaskResult:
    """Worker output: window identity comes from task order, not payload.

    The work counters feed :class:`repro.runtime.RuntimeStats`; cache hits
    contribute zero, which is how tests assert warm runs do no BMF work.
    ``n_factorizations`` counts factorization *calls* (each internally a
    full tau sweep) — one per ladder on the ladder path, one per degree on
    the legacy reference path — and ``n_ladder_levels`` the degree results
    those calls produced, so ``n_ladder_levels / n_factorizations`` is the
    amortization the ladder achieves.
    """

    exact_area: float
    variants: Dict[int, List[CandidateVariant]]
    n_factorizations: int = 0
    n_syntheses: int = 0
    n_ladder_levels: int = 0


class _VariantCosting:
    """Memoized synthesis of factored window implementations."""

    def __init__(
        self, library: Library, options: EspressoOptions, match_macros: bool
    ) -> None:
        self.library = library
        self.options = options
        self.match_macros = match_macros
        self.n_syntheses = 0
        self._cache: Dict[bytes, float] = {}

    def factored_area(self, B: np.ndarray, C: np.ndarray, algebra: str) -> float:
        key = B.tobytes() + b"|" + C.tobytes() + algebra.encode()
        hit = self._cache.get(key)
        if hit is not None:
            return hit  # contract-ok: cache-copy -- cached float, immutable
        self.n_syntheses += 1
        builder = CircuitBuilder("variant")
        k = int(np.log2(B.shape[0]))
        ins = [builder.input(f"x{i}") for i in range(k)]
        combine = builder.or_ if algebra == "semiring" else builder.xor_
        t_sigs = synthesize_outputs_shared(builder, B, ins, self.options)
        for j in range(C.shape[1]):
            parts = [t_sigs[l] for l in range(C.shape[0]) if C[l, j]]
            if not parts:
                out = builder.const(False)
            elif len(parts) == 1:
                out = parts[0]
            else:
                out = combine(*parts)
            builder.output(f"y{j}", out)
        area = tech_map(
            builder.build(), self.library, match_macros=self.match_macros
        ).area
        self._cache[key] = area
        return area

    def cone_area(self, sub: Circuit, replacement: ConeReplacement) -> float:
        """Area of a cone variant: kept cone + decompressor gates.

        ``sub`` is the window materialized as a standalone circuit; the
        replacement is spliced into it and the result re-mapped.
        """
        self.n_syntheses += 1
        sub_window = Window(
            0,
            tuple(range(len(sub.inputs), sub.n_nodes)),
            tuple(sub.inputs),
            tuple(sub.output_nodes()),
        )
        approx = substitute_windows(
            sub, [sub_window], {0: replacement}, espresso_options=self.options
        )
        return tech_map(
            resynthesize(approx, options=self.options),
            self.library,
            match_macros=self.match_macros,
        ).area

    def window_area(self, sub: Circuit) -> float:
        self.n_syntheses += 1
        return tech_map(
            resynthesize(sub, options=self.options),
            self.library,
            match_macros=self.match_macros,
        ).area


def _bmf_candidate(
    costing: _VariantCosting, p: ProfileParams, result
) -> CandidateVariant:
    """Wrap one general-BMF factorization as a profiled candidate."""
    area = (
        costing.factored_area(result.B, result.C, p.algebra)
        if p.estimate_area
        else 0.0
    )
    return CandidateVariant(
        result.f, result.product, result.B, result.C, area, result.error,
        FactoredReplacement(result.B, result.C, p.algebra), "bmf",
    )


def _cone_candidate(
    costing: _VariantCosting, p: ProfileParams, task: WindowTask, f: int, cs
) -> CandidateVariant:
    """Wrap one column-subset factorization as a profiled candidate."""
    replacement = ConeReplacement(cs.selected, cs.C, p.algebra)
    area = (
        costing.cone_area(task.sub, replacement) if p.estimate_area else 0.0
    )
    return CandidateVariant(
        f, bool_product(cs.B, cs.C, p.algebra), cs.B, cs.C, area,
        cs.error, replacement, "cone",
    )


def _pick_hybrid(
    bmf_variant: Optional[CandidateVariant],
    cone_variant: Optional[CandidateVariant],
) -> CandidateVariant:
    """The hybrid rule: cone unless general BMF is substantially better."""
    if bmf_variant is None:
        return cone_variant
    if cone_variant is None:
        return bmf_variant
    take_bmf = bmf_variant.bmf_error < (
        HYBRID_ERROR_FACTOR * cone_variant.bmf_error
    )
    return bmf_variant if take_bmf else cone_variant


def _weight_rails(task: WindowTask) -> List[Optional[np.ndarray]]:
    # Dual-rail candidates: the weighted factorization protects
    # numerically significant wires (right at tight error budgets); the
    # uniform one is free to break them (right at loose budgets, e.g.
    # cutting an adder's carry chain).  The explorer picks per step by
    # measured whole-circuit error.
    return [task.weights] if task.weights is None else [task.weights, None]


def profile_window_task(task: WindowTask) -> WindowTaskResult:
    """Profile one window in isolation (the process-pool worker entry).

    Pure function of the task's contents — this is what makes parallel
    runs byte-identical to serial ones and results content-cacheable.

    Factorization runs on the degree ladder: one greedy descent per
    (weight rail, kernel family) covers every degree ``1 .. m-1`` (the
    ladder calls below), instead of the ``O(m)`` per-degree descents of
    :func:`profile_window_task_reference` — with byte-identical variants.
    """
    p = task.params
    n_outputs = int(task.table.shape[1])
    costing = _VariantCosting(p.library, p.espresso, p.match_macros)
    n_factorizations = 0
    n_ladder_levels = 0
    rails = _weight_rails(task)

    bmf_ladders: Dict[int, Dict[int, object]] = {}
    cone_ladders: Dict[int, Dict[int, object]] = {}
    if n_outputs > 1:
        for idx, rail in enumerate(rails):
            if p.selection in ("bmf", "hybrid"):
                bmf_ladders[idx] = factorize_ladder(
                    task.table, n_outputs - 1, weights=rail,
                    algebra=p.algebra, method=p.method, taus=p.taus,
                )
                n_factorizations += 1
                n_ladder_levels += n_outputs - 1
            if p.selection in ("cone", "hybrid"):
                cone_ladders[idx] = column_select_ladder(
                    task.table, n_outputs - 1, weights=rail, algebra=p.algebra
                )
                n_factorizations += 1
                n_ladder_levels += n_outputs - 1

    exact_area = costing.window_area(task.sub) if p.estimate_area else 0.0
    variants: Dict[int, List[CandidateVariant]] = {}
    for f in range(1, n_outputs):
        by_table: Dict[bytes, CandidateVariant] = {}
        for idx in range(len(rails)):
            bmf_variant = (
                _bmf_candidate(costing, p, bmf_ladders[idx][f])
                if idx in bmf_ladders
                else None
            )
            cone_variant = (
                _cone_candidate(costing, p, task, f, cone_ladders[idx][f])
                if idx in cone_ladders
                else None
            )
            variant = _pick_hybrid(bmf_variant, cone_variant)
            key = variant.table.tobytes()
            held = by_table.get(key)
            # identical tables measure identically; keep the cheaper
            if held is None or variant.area < held.area:
                by_table[key] = variant
        variants[f] = list(by_table.values())
    return WindowTaskResult(
        exact_area, variants, n_factorizations, costing.n_syntheses,
        n_ladder_levels,
    )


def profile_window_task_reference(task: WindowTask) -> WindowTaskResult:
    """The legacy per-degree worker: one greedy descent per (degree, rail).

    Kept verbatim as the executable specification of
    :func:`profile_window_task` — the kernel-equivalence tests and
    ``benchmarks/bench_bmf_kernel.py`` run both and assert byte-identical
    profiles, which is the cache-compatibility contract of DESIGN.md.
    """
    p = task.params
    n_outputs = int(task.table.shape[1])
    costing = _VariantCosting(p.library, p.espresso, p.match_macros)
    n_factorizations = 0

    def build_variant(f: int, rail: Optional[np.ndarray]) -> CandidateVariant:
        nonlocal n_factorizations
        bmf_variant = None
        cone_variant = None
        if p.selection in ("bmf", "hybrid"):
            result = factorize(
                task.table, f, weights=rail, algebra=p.algebra,
                method=p.method, taus=p.taus,
            )
            n_factorizations += 1
            bmf_variant = _bmf_candidate(costing, p, result)
        if p.selection in ("cone", "hybrid"):
            cs = column_select_bmf(task.table, f, weights=rail, algebra=p.algebra)
            n_factorizations += 1
            cone_variant = _cone_candidate(costing, p, task, f, cs)
        return _pick_hybrid(bmf_variant, cone_variant)

    exact_area = costing.window_area(task.sub) if p.estimate_area else 0.0
    variants: Dict[int, List[CandidateVariant]] = {}
    for f in range(1, n_outputs):
        by_table: Dict[bytes, CandidateVariant] = {}
        for rail in _weight_rails(task):
            variant = build_variant(f, rail)
            key = variant.table.tobytes()
            held = by_table.get(key)
            if held is None or variant.area < held.area:
                by_table[key] = variant
        variants[f] = list(by_table.values())
    return WindowTaskResult(
        exact_area, variants, n_factorizations, costing.n_syntheses,
        n_ladder_levels=n_factorizations,
    )


def output_significance(circuit: Circuit) -> np.ndarray:
    """Heuristic numeric significance of every node.

    Primary-output drivers receive the place value of their bit within its
    output word, normalized so each word's MSB weighs 1; the scores then
    propagate backwards (summing over fanouts).  Reconvergence double-counts
    — acceptable for a *weighting* heuristic.  Used to build per-window
    WQoR weight vectors for windows whose outputs are internal wires.
    """
    sig = np.zeros(circuit.n_nodes, dtype=float)
    words: Sequence[WordSpec] = circuit.attrs.get("words") or []
    covered = set()
    for w in words:
        top = max(w.width - 1, 0)
        for bit, port_idx in enumerate(w.indices):
            port = circuit.outputs[port_idx]
            sig[port.node] += 2.0 ** (bit - top)
            covered.add(port_idx)
    for idx, port in enumerate(circuit.outputs):
        if idx not in covered:
            sig[port.node] += 1.0
    for nid in range(circuit.n_nodes - 1, -1, -1):
        if sig[nid] > 0:
            for f in circuit.node(nid).fanins:
                sig[f] += sig[nid]
    return sig


def window_weights(
    circuit: Circuit, window: Window, mode: str, significance: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Per-output WQoR weight vector for one window (None = uniform)."""
    if mode == "uniform":
        return None
    raw = np.array(
        [max(significance[o], 1e-12) for o in window.outputs], dtype=float
    )
    return raw * (len(raw) / raw.sum())


def profile_windows(
    circuit: Circuit,
    windows: Sequence[Window],
    method: str = "asso",
    algebra: str = "semiring",
    taus: Sequence[float] = DEFAULT_TAUS,
    weight_mode: str = "uniform",
    selection: str = "hybrid",
    library: Library = LIB65,
    espresso_options: EspressoOptions = EspressoOptions(),
    estimate_area: bool = True,
    match_macros: bool = False,
    jobs: int = 1,
    cache: Optional[ProfileCache] = None,
    runtime_stats: Optional[RuntimeStats] = None,
    policy=None,
    faults=None,
    cancel=None,
) -> List[WindowProfile]:
    """Run the profiling phase over all windows.

    Args:
        circuit: Parent circuit.
        windows: Its decomposition.
        method / algebra / taus: Passed to :func:`repro.core.bmf.factorize`
            for the general-BMF variants.
        weight_mode: ``"uniform"`` (plain BMF) or ``"significance"`` (§3.2
            weighted QoR, weights derived from output-bit significance).
        selection: ``"bmf"`` (general factorization only), ``"cone"``
            (column-subset only), or ``"hybrid"`` (best of both per degree).
        estimate_area: Skip area synthesis when False (faster).
        match_macros: Allow FA/HA macro cells in the area oracle.  Off by
            default so exact windows and re-synthesized variants are costed
            through an identical gate-level model.
        jobs: Worker processes for per-window tasks (``0`` = all cores,
            ``1`` = serial).  Results are byte-identical whatever the count.
        cache: Optional persistent :class:`~repro.runtime.ProfileCache`;
            hits skip factorization and synthesis entirely.
        runtime_stats: Optional accumulator updated in place with task,
            cache, and work counters.
        policy / faults: Supervised-dispatch retry bounds and
            deterministic fault plan, forwarded to
            :func:`~repro.runtime.run_tasks` (see DESIGN.md "Fault
            tolerance").
        cancel: Cooperative :class:`~repro.runtime.CancelToken` checked
            at dispatch boundaries, likewise forwarded.

    Returns:
        One :class:`WindowProfile` per window with variants for every
        ``f`` in ``1 .. m_i - 1``, in window order.
    """
    if weight_mode not in WEIGHT_MODES:
        raise ValueError(
            f"unknown weight mode {weight_mode!r}; expected {WEIGHT_MODES}"
        )
    if selection not in SELECTIONS:
        raise ValueError(
            f"unknown selection {selection!r}; expected {SELECTIONS}"
        )
    windows = list(windows)  # consumed twice; accept one-shot iterables
    sig = output_significance(circuit) if weight_mode != "uniform" else None
    params = ProfileParams(
        method=method,
        algebra=algebra,
        taus=tuple(taus),
        selection=selection,
        library=library,
        espresso=espresso_options,
        estimate_area=estimate_area,
        match_macros=match_macros,
    )
    tasks: List[WindowTask] = []
    for w in windows:
        table = w.table(circuit)
        weights = window_weights(circuit, w, weight_mode, sig)
        sub = w.subcircuit(circuit) if estimate_area else None
        tasks.append(WindowTask(table, weights, sub, params))
    payloads, _ = run_tasks(
        tasks,
        profile_window_task,
        key_fn=WindowTask.cache_key,
        cache=cache,
        jobs=jobs,
        stats=runtime_stats,
        policy=policy,
        faults=faults,
        cancel=cancel,
    )
    return [
        WindowProfile(
            w, task.table, payload.exact_area, task.weights,
            dict(payload.variants),
        )
        for w, task, payload in zip(windows, tasks, payloads)
    ]
