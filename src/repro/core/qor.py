"""Quality-of-result metrics over word-interpreted circuit outputs.

Implements the paper's Eq. 1 (average relative error) and Eq. 2 (average
absolute error), plus normalized-absolute and bit-level Hamming variants.
Outputs are grouped into words via the :class:`~repro.circuit.words.
WordSpec` metadata that benchmark circuits carry; a circuit without word
metadata is treated as a single unsigned word.

The one deviation from Eq. 1 (documented in DESIGN.md): relative error uses
``|R - R'| / max(|R|, 1)`` since the paper's formula is undefined at
``R = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import SimulationError
from ..circuit.netlist import Circuit
from ..circuit.simulate import unpack_bits
from ..circuit.words import WordSpec, default_output_word

#: Metric names accepted by :class:`QoRSpec`.
METRICS = ("mre", "mae", "nmae", "hamming")


@dataclass(frozen=True)
class QoRSpec:
    """Which error metric drives exploration.

    Attributes:
        metric: One of ``mre`` (average relative error, Eq. 1 — the paper's
            headline metric), ``mae`` (average absolute error, Eq. 2),
            ``nmae`` (``mae`` normalized to each word's maximum magnitude,
            as plotted in Figure 5), ``hamming`` (mean flipped output bits
            per sample).
    """

    metric: str = "mre"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise SimulationError(
                f"unknown QoR metric {self.metric!r}; expected one of {METRICS}"
            )


def circuit_words(circuit: Circuit) -> List[WordSpec]:
    """Output word specs of a circuit (fallback: one unsigned word)."""
    words = circuit.attrs.get("words")
    if words:
        return list(words)
    return default_output_word(circuit.n_outputs)


class QoREvaluator:
    """Compares approximate outputs against cached exact outputs.

    Built once per pattern set; every candidate evaluation then costs one
    unpack + a handful of vector ops.
    """

    def __init__(
        self,
        circuit: Circuit,
        exact_output_words: np.ndarray,
        n_samples: int,
        spec: QoRSpec = QoRSpec(),
    ) -> None:
        self.spec = spec
        self.n = n_samples
        self.words = circuit_words(circuit)
        self._exact_bits = unpack_bits(exact_output_words, n_samples).T
        self._exact_vals = {
            w.name: w.to_ints(self._exact_bits) for w in self.words
        }
        # Relative-error denominators depend only on the exact outputs;
        # hoisted out of evaluate()/metrics(), which sit on the explorer's
        # per-candidate hot path.
        self._rel_denoms = {
            name: np.maximum(np.abs(vals), 1).astype(float)
            for name, vals in self._exact_vals.items()
        }

    # ------------------------------------------------------------------
    def metrics(self, approx_output_words: np.ndarray) -> Dict[str, float]:
        """All supported metrics for one approximate output set."""
        bits = unpack_bits(approx_output_words, self.n).T
        rel_terms: List[np.ndarray] = []
        abs_terms: List[np.ndarray] = []
        nabs_terms: List[np.ndarray] = []
        for w in self.words:
            exact = self._exact_vals[w.name]
            approx = w.to_ints(bits)
            diff = np.abs(exact - approx).astype(float)
            rel_terms.append(diff / self._rel_denoms[w.name])
            abs_terms.append(diff)
            nabs_terms.append(diff / max(w.max_abs, 1))
        hamming = float((bits != self._exact_bits).sum()) / self.n
        return {
            "mre": float(np.concatenate(rel_terms).mean()),
            "mae": float(np.concatenate(abs_terms).mean()),
            "nmae": float(np.concatenate(nabs_terms).mean()),
            "hamming": hamming,
        }

    def evaluate(self, approx_output_words: np.ndarray) -> float:
        """The configured metric only (cheaper than :meth:`metrics`)."""
        bits = unpack_bits(approx_output_words, self.n).T
        if self.spec.metric == "hamming":
            return float((bits != self._exact_bits).sum()) / self.n
        terms: List[np.ndarray] = []
        for w in self.words:
            exact = self._exact_vals[w.name]
            approx = w.to_ints(bits)
            diff = np.abs(exact - approx).astype(float)
            if self.spec.metric == "mre":
                terms.append(diff / self._rel_denoms[w.name])
            elif self.spec.metric == "mae":
                terms.append(diff)
            else:  # nmae
                terms.append(diff / max(w.max_abs, 1))
        return float(np.concatenate(terms).mean())
