"""Quality-of-result metrics over word-interpreted circuit outputs.

Implements the paper's Eq. 1 (average relative error) and Eq. 2 (average
absolute error), plus normalized-absolute and bit-level Hamming variants.
Outputs are grouped into words via the :class:`~repro.circuit.words.
WordSpec` metadata that benchmark circuits carry; a circuit without word
metadata is treated as a single unsigned word.

The one deviation from Eq. 1 (documented in DESIGN.md): relative error uses
``|R - R'| / max(|R|, 1)`` since the paper's formula is undefined at
``R = 0``.

Determinism contract (see DESIGN.md "Streaming execution"): every metric
value is derived from **canonical per-packed-word partial sums** — each
64-sample block (one ``uint64`` word of the packed output matrix)
contributes one float partial, the full partials vector is reduced with a
single ``ndarray.sum()``, and the per-output-word totals are combined
left-associatively in word order, divided by the total term count.  A
partial depends only on its own 64 samples, so any word-aligned chunking
of the pattern axis reproduces the identical partials vector and
therefore the identical float: full evaluation
(:meth:`QoREvaluator.evaluate` / :meth:`QoREvaluator.metrics`), the
incremental delta path (:meth:`QoREvaluator.evaluate_delta`) and the
streaming chunk accumulation (:meth:`QoREvaluator.word_partials` +
:meth:`QoREvaluator.evaluate_spliced`) all route through the same
per-word-partials helper and the same combination loop, so the paths
cannot drift.  Hamming errors are integer mismatch popcounts
(order-independent, exact under any chunking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sanitize import assert_tail_clean, freeze, sanitize_enabled
from ..errors import SimulationError
from ..circuit.netlist import Circuit
from ..circuit.simulate import (
    mask_tail_words,
    tail_mask,
    unpack_bits,
    words_for,
)
from ..circuit.words import WordSpec, default_output_word
from ..kernels import active_backend

#: Metric names accepted by :class:`QoRSpec`.
METRICS = ("mre", "mae", "nmae", "hamming")


@dataclass(frozen=True)
class QoRSpec:
    """Which error metric drives exploration.

    Attributes:
        metric: One of ``mre`` (average relative error, Eq. 1 — the paper's
            headline metric), ``mae`` (average absolute error, Eq. 2),
            ``nmae`` (``mae`` normalized to each word's maximum magnitude,
            as plotted in Figure 5), ``hamming`` (mean flipped output bits
            per sample).
    """

    metric: str = "mre"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise SimulationError(
                f"unknown QoR metric {self.metric!r}; expected one of {METRICS}"
            )


def circuit_words(circuit: Circuit) -> List[WordSpec]:
    """Output word specs of a circuit (fallback: one unsigned word)."""
    words = circuit.attrs.get("words")
    if words:
        return list(words)
    return default_output_word(circuit.n_outputs)


class QoREvaluator:
    """Compares approximate outputs against cached exact outputs.

    Built once per pattern set; every candidate evaluation then costs a
    few per-word vector ops — or, on the delta path, only the vector ops
    of the words a candidate actually dirtied:

    * :meth:`rebase` caches the per-word error sums of the current
      committed outputs;
    * :meth:`evaluate_delta` recomputes sums only for the words whose
      output rows a candidate changed and combines them with the cached
      sums in the canonical order, yielding the exact same float as
      :meth:`evaluate` on the full output matrix.
    """

    def __init__(
        self,
        circuit: Circuit,
        exact_output_words: np.ndarray,
        n_samples: int,
        spec: QoRSpec = QoRSpec(),
        sanitize: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.n = n_samples
        self._sanitize = sanitize_enabled(sanitize)
        self.words = circuit_words(circuit)
        exact = np.atleast_2d(np.asarray(exact_output_words, dtype=np.uint64))
        self._exact_words = mask_tail_words(exact.copy(), n_samples)
        if self._sanitize:
            assert_tail_clean(self._exact_words, n_samples, "exact words")
            freeze(self._exact_words)
        self._exact_vals = {
            w.name: self._word_ints(exact, w) for w in self.words
        }
        # Relative-error denominators depend only on the exact outputs;
        # hoisted out of evaluate()/metrics(), which sit on the explorer's
        # per-candidate hot path.
        self._rel_denoms = {
            name: np.maximum(np.abs(vals), 1).astype(float)
            for name, vals in self._exact_vals.items()
        }
        self._row_words: List[Tuple[int, ...]] = [
            tuple(
                pos
                for pos, w in enumerate(self.words)
                if row in w.indices
            )
            for row in range(exact.shape[0])
        ]
        self._base_sums: Optional[List[float]] = None
        self._base_partials: Optional[List[np.ndarray]] = None
        self._base_row_hamming: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Shared per-word primitives (the single source of truth for all
    # metric paths — full, per-metric, delta, and streaming).
    # ------------------------------------------------------------------
    def _word_ints(
        self,
        output_words: np.ndarray,
        w: WordSpec,
        n_valid: Optional[int] = None,
    ) -> np.ndarray:
        """Integer interpretation of one word, unpacking only its rows.

        Matches :meth:`repro.circuit.words.WordSpec.to_ints` exactly
        (integer arithmetic; no float rounding anywhere).  ``n_valid``
        restricts the unpack to the first samples of ``output_words`` —
        chunk-sliced calls produce the exact same integers as slicing a
        full-width call.
        """
        n = self.n if n_valid is None else n_valid
        bits = unpack_bits(output_words[list(w.indices)], n)
        vals = bits.T.astype(np.int64) @ (
            np.int64(1) << np.arange(w.width, dtype=np.int64)
        )
        if w.signed and w.width:
            sign = np.int64(1) << np.int64(w.width - 1)
            vals = np.where(bits[-1] > 0, vals - (sign << 1), vals)
        return vals

    def _word_partials(
        self,
        w: WordSpec,
        output_words: np.ndarray,
        metric: str,
        word_start: int = 0,
        n_valid: Optional[int] = None,
    ) -> np.ndarray:
        """Canonical per-packed-word error partials of one output word.

        Element ``i`` is the error-term sum of the 64 samples packed in
        word ``word_start + i``; samples past the valid count contribute
        exactly ``0.0``.  A partial depends only on its own 64 samples, so
        concatenating chunk-sliced calls reproduces the full-width vector
        byte for byte — this is what makes chunked QoR accumulation
        bit-identical to resident evaluation (DESIGN.md "Streaming
        execution").

        Args:
            w: The output word spec.
            output_words: Packed approximate outputs, full row set, whose
                word axis covers ``[word_start, word_start + width)``.
            metric: ``mre`` / ``mae`` / ``nmae`` (hamming partials are the
                integer popcounts of :meth:`row_hamming`).
            word_start: First packed word the matrix covers.
            n_valid: Valid samples inside the slice (default: all samples
                from ``word_start`` on).
        """
        s0 = word_start * 64
        if n_valid is None:
            n_valid = max(self.n - s0, 0)
        if n_valid <= 0:
            return np.zeros(0, dtype=float)
        approx = self._word_ints(output_words, w, n_valid)
        exact = self._exact_vals[w.name][s0 : s0 + n_valid]
        diff = np.abs(exact - approx).astype(float)
        if metric == "mre":
            terms = diff / self._rel_denoms[w.name][s0 : s0 + n_valid]
        elif metric == "mae":
            terms = diff
        else:
            terms = diff / max(w.max_abs, 1)
        return active_backend().word_partials(terms, n_valid)

    def word_partials(
        self,
        pos: int,
        output_words: np.ndarray,
        word_start: int = 0,
        n_valid: Optional[int] = None,
    ) -> np.ndarray:
        """Per-packed-word partials of word ``pos`` under the configured
        metric (the streaming accumulation primitive; see
        :meth:`_word_partials` for the exact semantics)."""
        return self._word_partials(
            self.words[pos], output_words, self.spec.metric, word_start, n_valid
        )

    def _word_sum(
        self, w: WordSpec, output_words: np.ndarray, metric: str
    ) -> float:
        """Error-term sum of one word: the canonical partials, reduced."""
        return float(self._word_partials(w, output_words, metric).sum())

    def row_hamming(
        self,
        output_words: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        word_start: int = 0,
        n_valid: Optional[int] = None,
    ) -> np.ndarray:
        """Per-output-row mismatch popcounts over the valid bits.

        ``word_start``/``n_valid`` select a word-aligned chunk of the
        pattern axis; counts are exact integers, so per-chunk counts sum
        to the full-width count under any chunking.
        """
        if n_valid is None:
            n_valid = max(self.n - word_start * 64, 0)
        w_valid = words_for(n_valid)
        sel = output_words if rows is None else output_words[list(rows)]
        exact = (
            self._exact_words if rows is None else self._exact_words[list(rows)]
        )
        exact = exact[:, word_start : word_start + w_valid]
        x = sel[:, :w_valid] ^ exact
        if w_valid:
            x[:, -1] &= tail_mask(n_valid)
        return active_backend().popcount_rows(x)

    # Backwards-compatible private alias (delta path predates streaming).
    _row_hamming = row_hamming

    def _combine(
        self,
        metric: str,
        output_words: Optional[np.ndarray],
        sums: Optional[Iterable[float]] = None,
        row_hamming: Optional[np.ndarray] = None,
    ) -> float:
        """Canonical combination: left-associated word sums / term count."""
        if metric == "hamming":
            counts = (
                row_hamming
                if row_hamming is not None
                else self._row_hamming(output_words)
            )
            return float(int(counts.sum())) / self.n
        if sums is None:
            sums = (
                self._word_sum(w, output_words, metric) for w in self.words
            )
        total = 0.0
        for s in sums:
            total += s
        return total / (self.n * len(self.words))

    # ------------------------------------------------------------------
    def metrics(self, approx_output_words: np.ndarray) -> Dict[str, float]:
        """All supported metrics for one approximate output set."""
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        return {m: self._combine(m, out) for m in METRICS}

    def evaluate(self, approx_output_words: np.ndarray) -> float:
        """The configured metric only (cheaper than :meth:`metrics`)."""
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        return self._combine(self.spec.metric, out)

    # ------------------------------------------------------------------
    # Delta API (see DESIGN.md "Exploration engine")
    # ------------------------------------------------------------------
    def rebase(self, output_words: np.ndarray) -> None:
        """Cache the canonical error state of the *committed* outputs.

        Stores, per output word, both the per-packed-word partials vector
        and its reduced sum (per-row mismatch popcounts for hamming).
        Call after every commit; :meth:`evaluate_delta` then reuses the
        cached sums for every word a candidate leaves untouched, and the
        streaming engine splices candidate chunk partials over
        :meth:`base_partials` (every word a chunk leaves clean keeps the
        committed partial, which a fresh sweep would reproduce exactly).

        Determinism: the cached values are the same canonical
        per-packed-word partials every other path computes, so reusing
        them can never shift a float.
        """
        out = np.atleast_2d(np.asarray(output_words, dtype=np.uint64))
        if self.spec.metric == "hamming":
            self._base_row_hamming = self.row_hamming(out)
            if self._sanitize:
                freeze(self._base_row_hamming)
        else:
            self._base_partials = [
                self._word_partials(w, out, self.spec.metric)
                for w in self.words
            ]
            if self._sanitize:
                for p in self._base_partials:
                    freeze(p)
            self._base_sums = [float(p.sum()) for p in self._base_partials]

    def base_partials(self, pos: int) -> np.ndarray:
        """Committed per-packed-word partials of word ``pos`` (rebased).

        Raises:
            SimulationError: before the first :meth:`rebase`.
        """
        if self._base_partials is None:
            raise SimulationError("base_partials requires rebase() first")
        # Consumers splice via splice_partials, which copies before
        # writing; sanitize mode freezes the cached vectors.
        return self._base_partials[pos]  # contract-ok: cache-copy -- spliced via copy, frozen under sanitize

    def base_row_hamming(self) -> np.ndarray:
        """Committed per-row mismatch counts (hamming metric, rebased)."""
        if self._base_row_hamming is None:
            raise SimulationError("base_row_hamming requires rebase() first")
        return self._base_row_hamming

    def word_positions(self, rows: Iterable[int]) -> Tuple[int, ...]:
        """Output-word positions (indices into ``self.words``) that the
        given output rows feed, sorted."""
        return tuple(
            sorted({pos for row in rows for pos in self._row_words[row]})
        )

    def splice_partials(
        self, pos: int, slices: Iterable[Tuple[int, int, np.ndarray]]
    ) -> float:
        """Total error sum of word ``pos`` with chunk slices spliced in.

        ``slices`` are ``(word start, word stop, partials)`` pieces over
        disjoint word-aligned ranges of the pattern axis — the chunks a
        candidate actually dirtied; every other range keeps the rebased
        committed partial, which a fresh evaluation would reproduce
        exactly.  The splice rebuilds the identical partials vector a
        resident evaluation computes (a partial depends only on its own
        64 samples) and reduces it with the same single ``ndarray.sum()``
        — so the returned float is bit-identical whatever the chunking or
        sharding that produced the slices (DESIGN.md "Parallel
        streaming").

        Raises:
            SimulationError: before the first :meth:`rebase`.
        """
        vec = self.base_partials(pos).copy()
        for start, stop, part in slices:
            vec[start:stop] = part
        return float(vec.sum())

    def evaluate_spliced(self, word_sums: Dict[int, float]) -> float:
        """Configured metric from the rebased sums with per-word overrides.

        ``word_sums`` maps word positions to replacement totals (each a
        canonical partials-vector reduction).  This is the terminal step
        of both the delta path and the streaming path; given identical
        override floats it is bit-identical to :meth:`evaluate` on the
        full matrix by construction.

        Raises:
            SimulationError: before the first :meth:`rebase`, or for the
                hamming metric (use :meth:`evaluate_spliced_hamming`).
        """
        if self.spec.metric == "hamming":
            raise SimulationError(
                "evaluate_spliced is undefined for hamming; use "
                "evaluate_spliced_hamming"
            )
        if self._base_sums is None:
            raise SimulationError("evaluate_spliced requires rebase() first")
        sums = list(self._base_sums)
        for pos, s in word_sums.items():
            sums[pos] = s
        return self._combine(self.spec.metric, None, sums=sums)

    def evaluate_spliced_hamming(self, row_counts: Dict[int, int]) -> float:
        """Hamming metric from the rebased per-row counts with overrides.

        ``row_counts`` maps output rows to absolute mismatch popcounts;
        unlisted rows keep their committed counts.  Integer arithmetic —
        exact under any chunking.
        """
        counts = self.base_row_hamming()
        if row_counts:
            counts = counts.copy()
            for row, cnt in row_counts.items():
                counts[row] = cnt
        return self._combine("hamming", None, row_hamming=counts)

    def evaluate_delta(
        self, approx_output_words: np.ndarray, dirty_rows: Sequence[int]
    ) -> float:
        """Configured metric, recomputing only the words ``dirty_rows`` touch.

        Args:
            approx_output_words: Full packed approximate output matrix.
            dirty_rows: Output-row indices whose valid bits differ from
                the outputs last passed to :meth:`rebase`; any row *not*
                listed must be byte-identical to the rebased state (the
                compiled engine's dirty tracking guarantees exactly this).

        Determinism: the result is bit-identical to :meth:`evaluate` on
        the same matrix — recomputed words use the same canonical
        per-packed-word partials, untouched words reuse the rebased sums
        those partials produced.  Invalidation is the caller's contract:
        stale base sums (a commit without a fresh :meth:`rebase`) produce
        silently wrong floats, which is why the explorer rebases after
        every commit.  Without any rebase the call falls back to a full
        evaluation.
        """
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        if self.spec.metric == "hamming":
            if self._base_row_hamming is None:
                return self._combine("hamming", out)
            counts = self._base_row_hamming
            if dirty_rows:
                counts = counts.copy()
                counts[list(dirty_rows)] = self.row_hamming(out, dirty_rows)
            return self._combine("hamming", None, row_hamming=counts)
        if self._base_sums is None:
            return self._combine(self.spec.metric, out)
        sums = {
            pos: self._word_sum(self.words[pos], out, self.spec.metric)
            for pos in self.word_positions(dirty_rows)
        }
        return self.evaluate_spliced(sums)
