"""Quality-of-result metrics over word-interpreted circuit outputs.

Implements the paper's Eq. 1 (average relative error) and Eq. 2 (average
absolute error), plus normalized-absolute and bit-level Hamming variants.
Outputs are grouped into words via the :class:`~repro.circuit.words.
WordSpec` metadata that benchmark circuits carry; a circuit without word
metadata is treated as a single unsigned word.

The one deviation from Eq. 1 (documented in DESIGN.md): relative error uses
``|R - R'| / max(|R|, 1)`` since the paper's formula is undefined at
``R = 0``.

Determinism contract (see DESIGN.md "Exploration engine"): all metric
values are **canonical per-word sums combined left-associatively in word
order**, divided by the total term count.  :meth:`QoREvaluator.evaluate`,
:meth:`QoREvaluator.metrics` and the incremental
:meth:`QoREvaluator.evaluate_delta` all route through the same per-word
helper and the same combination loop, so the three paths cannot drift —
a delta evaluation is bit-identical to a full one.  Hamming errors are
integer mismatch popcounts (order-independent, exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..circuit.netlist import Circuit
from ..circuit.simulate import (
    bit_count,
    mask_tail_words,
    tail_mask,
    unpack_bits,
    words_for,
)
from ..circuit.words import WordSpec, default_output_word

#: Metric names accepted by :class:`QoRSpec`.
METRICS = ("mre", "mae", "nmae", "hamming")


@dataclass(frozen=True)
class QoRSpec:
    """Which error metric drives exploration.

    Attributes:
        metric: One of ``mre`` (average relative error, Eq. 1 — the paper's
            headline metric), ``mae`` (average absolute error, Eq. 2),
            ``nmae`` (``mae`` normalized to each word's maximum magnitude,
            as plotted in Figure 5), ``hamming`` (mean flipped output bits
            per sample).
    """

    metric: str = "mre"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise SimulationError(
                f"unknown QoR metric {self.metric!r}; expected one of {METRICS}"
            )


def circuit_words(circuit: Circuit) -> List[WordSpec]:
    """Output word specs of a circuit (fallback: one unsigned word)."""
    words = circuit.attrs.get("words")
    if words:
        return list(words)
    return default_output_word(circuit.n_outputs)


class QoREvaluator:
    """Compares approximate outputs against cached exact outputs.

    Built once per pattern set; every candidate evaluation then costs a
    few per-word vector ops — or, on the delta path, only the vector ops
    of the words a candidate actually dirtied:

    * :meth:`rebase` caches the per-word error sums of the current
      committed outputs;
    * :meth:`evaluate_delta` recomputes sums only for the words whose
      output rows a candidate changed and combines them with the cached
      sums in the canonical order, yielding the exact same float as
      :meth:`evaluate` on the full output matrix.
    """

    def __init__(
        self,
        circuit: Circuit,
        exact_output_words: np.ndarray,
        n_samples: int,
        spec: QoRSpec = QoRSpec(),
    ) -> None:
        self.spec = spec
        self.n = n_samples
        self.words = circuit_words(circuit)
        exact = np.atleast_2d(np.asarray(exact_output_words, dtype=np.uint64))
        self._exact_words = mask_tail_words(exact.copy(), n_samples)
        self._exact_vals = {
            w.name: self._word_ints(exact, w) for w in self.words
        }
        # Relative-error denominators depend only on the exact outputs;
        # hoisted out of evaluate()/metrics(), which sit on the explorer's
        # per-candidate hot path.
        self._rel_denoms = {
            name: np.maximum(np.abs(vals), 1).astype(float)
            for name, vals in self._exact_vals.items()
        }
        self._row_words: List[Tuple[int, ...]] = [
            tuple(
                pos
                for pos, w in enumerate(self.words)
                if row in w.indices
            )
            for row in range(exact.shape[0])
        ]
        self._base_sums: Optional[List[float]] = None
        self._base_row_hamming: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Shared per-word primitives (the single source of truth for all
    # metric paths — full, per-metric, and delta).
    # ------------------------------------------------------------------
    def _word_ints(self, output_words: np.ndarray, w: WordSpec) -> np.ndarray:
        """Integer interpretation of one word, unpacking only its rows.

        Matches :meth:`repro.circuit.words.WordSpec.to_ints` exactly
        (integer arithmetic; no float rounding anywhere).
        """
        bits = unpack_bits(output_words[list(w.indices)], self.n)
        vals = bits.T.astype(np.int64) @ (
            np.int64(1) << np.arange(w.width, dtype=np.int64)
        )
        if w.signed and w.width:
            sign = np.int64(1) << np.int64(w.width - 1)
            vals = np.where(bits[-1] > 0, vals - (sign << 1), vals)
        return vals

    def _word_sum(
        self, w: WordSpec, output_words: np.ndarray, metric: str
    ) -> float:
        """Error-term sum of one word under one metric (canonical float)."""
        approx = self._word_ints(output_words, w)
        diff = np.abs(self._exact_vals[w.name] - approx).astype(float)
        if metric == "mre":
            return float((diff / self._rel_denoms[w.name]).sum())
        if metric == "mae":
            return float(diff.sum())
        return float((diff / max(w.max_abs, 1)).sum())

    def _row_hamming(
        self, output_words: np.ndarray, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-output-row mismatch popcounts over the valid bits."""
        w_valid = words_for(self.n)
        sel = output_words if rows is None else output_words[list(rows)]
        exact = (
            self._exact_words if rows is None else self._exact_words[list(rows)]
        )
        x = sel[:, :w_valid] ^ exact[:, :w_valid]
        if w_valid:
            x[:, -1] &= tail_mask(self.n)
        return bit_count(x).sum(axis=1)

    def _combine(
        self,
        metric: str,
        output_words: Optional[np.ndarray],
        sums: Optional[Iterable[float]] = None,
        row_hamming: Optional[np.ndarray] = None,
    ) -> float:
        """Canonical combination: left-associated word sums / term count."""
        if metric == "hamming":
            counts = (
                row_hamming
                if row_hamming is not None
                else self._row_hamming(output_words)
            )
            return float(int(counts.sum())) / self.n
        if sums is None:
            sums = (
                self._word_sum(w, output_words, metric) for w in self.words
            )
        total = 0.0
        for s in sums:
            total += s
        return total / (self.n * len(self.words))

    # ------------------------------------------------------------------
    def metrics(self, approx_output_words: np.ndarray) -> Dict[str, float]:
        """All supported metrics for one approximate output set."""
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        return {m: self._combine(m, out) for m in METRICS}

    def evaluate(self, approx_output_words: np.ndarray) -> float:
        """The configured metric only (cheaper than :meth:`metrics`)."""
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        return self._combine(self.spec.metric, out)

    # ------------------------------------------------------------------
    # Delta API (see DESIGN.md "Exploration engine")
    # ------------------------------------------------------------------
    def rebase(self, output_words: np.ndarray) -> None:
        """Cache per-word error sums of the *committed* outputs.

        Call after every commit; :meth:`evaluate_delta` then reuses the
        cached sums for every word a candidate leaves untouched.
        """
        out = np.atleast_2d(np.asarray(output_words, dtype=np.uint64))
        if self.spec.metric == "hamming":
            self._base_row_hamming = self._row_hamming(out)
        else:
            self._base_sums = [
                self._word_sum(w, out, self.spec.metric) for w in self.words
            ]

    def evaluate_delta(
        self, approx_output_words: np.ndarray, dirty_rows: Sequence[int]
    ) -> float:
        """Configured metric, recomputing only the words ``dirty_rows`` touch.

        ``dirty_rows`` are output-row indices whose valid bits differ from
        the outputs last passed to :meth:`rebase`; any row *not* listed
        must be byte-identical to the rebased state (the compiled engine's
        dirty tracking guarantees exactly this).  The result is
        bit-identical to :meth:`evaluate` on the same matrix.
        """
        out = np.atleast_2d(np.asarray(approx_output_words, dtype=np.uint64))
        if self.spec.metric == "hamming":
            if self._base_row_hamming is None:
                return self._combine("hamming", out)
            counts = self._base_row_hamming
            if dirty_rows:
                counts = counts.copy()
                counts[list(dirty_rows)] = self._row_hamming(out, dirty_rows)
            return self._combine("hamming", None, row_hamming=counts)
        if self._base_sums is None:
            return self._combine(self.spec.metric, out)
        affected = sorted(
            {pos for row in dirty_rows for pos in self._row_words[row]}
        )
        sums = list(self._base_sums)
        for pos in affected:
            sums[pos] = self._word_sum(self.words[pos], out, self.spec.metric)
        return self._combine(self.spec.metric, None, sums=sums)
