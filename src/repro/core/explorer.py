"""Greedy design-space exploration — Algorithm 1 of the paper.

Starting from the exact circuit (every window at degree ``f_i = m_i``), each
iteration previews, for every window, the whole-circuit QoR if that window's
degree were decremented, commits the window with the smallest error increase
and repeats until the error threshold is crossed (or the space is
exhausted).  The design-metric model during exploration is the paper's own:
circuit area ≈ sum of per-window synthesized areas.

Two greedy candidate-selection strategies are provided here:

* ``"full"`` — Algorithm 1 verbatim: every active window re-evaluated each
  iteration.
* ``"lazy"`` — lazy-greedy: stale errors are kept in a priority queue and a
  candidate is only re-evaluated when it reaches the top; chosen when its
  fresh error still beats the next stale entry.  Errors here are "almost"
  monotone in commits, so this gives near-identical trajectories at a
  fraction of the evaluations (the paper's future-work item on "fewer design
  point evaluations").

Beyond greedy, ``strategy`` also selects the stochastic portfolio in
:mod:`repro.core.search` — ``"anneal"`` (simulated annealing over
(window, degree) moves), ``"bo"`` (GP surrogate + expected improvement
over the degree vector) and ``"ranker"`` (online logistic move-ranking).
All of them drive the same memoized preview machinery one move at a
time, draw every random number from the run's single seeded generator,
and checkpoint their internal state, so the byte-identical replay
discipline (across engines, chunk sizes, shard counts, and
checkpoint/resume interruption points) extends to them unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sanitize import sanitize_enabled
from ..errors import (
    ExplorationError,
    JobCancelled,
    JobDeadlineExceeded,
    ServiceShutdown,
)
from ..circuit.netlist import Circuit
from ..circuit.stimulus import stimulus_input_words
from ..partition.decompose import decompose
from ..partition.substitute import substitute_windows
from ..partition.windows import Window
from ..runtime import (
    ExploreCheckpoint,
    FaultPlan,
    ProfileCache,
    RetryPolicy,
    RunContext,
    RuntimeStats,
    canonical_circuit_bytes,
    effective_jobs,
    faults_enabled,
    fingerprint_tokens,
    load_checkpoint,
    save_checkpoint,
)
from ..synth.espresso import EspressoOptions
from ..synth.library import LIB65, Library
from ..circuit.simulate import words_for
from ..kernels import KERNEL_CHOICES, resolve_backend, use_backend
from .bmf.asso import DEFAULT_TAUS
from .engine import ENGINES, CompiledEvaluator, make_evaluator
from .profile import WindowProfile, profile_windows
from .qor import QoREvaluator, QoRSpec
from .search import SEARCHER_STRATEGIES, make_searcher
from .streaming import StreamingEvaluator, auto_chunk_words

#: Candidate selection strategies: the greedy sweeps implemented here
#: plus the stochastic portfolio in :mod:`repro.core.search`.
STRATEGIES = ("full", "lazy") + SEARCHER_STRATEGIES


@dataclass(frozen=True)
class ExplorerConfig:
    """Knobs of the exploration flow (paper defaults where they exist).

    Attributes:
        max_inputs / max_outputs: k×m decomposition budgets (paper: 10/10).
        method: BMF method for profiling (``asso`` is the paper's).
        algebra: ``semiring`` (OR decompressor, paper default) or ``field``.
        taus: ASSO threshold sweep.
        weight_mode: ``significance`` (WQoR, §3.2 — the modified weighted
            ASSO the paper uses throughout its evaluation; default) or
            ``uniform`` (plain UQoR, Figure 4's control arm).
        selection: Variant policy per degree — ``bmf``, ``cone`` or
            ``hybrid`` (see :mod:`repro.core.profile`).
        match_macros: Allow FA/HA macro cells in the cost oracle (off keeps
            exact windows and variants on an identical gate-level model).
        qor: Error metric guiding the search (paper: average relative
            error).
        n_samples: Monte-Carlo sample count (paper used 10^6; the default
            here is CI-friendly and configurable).
        seed: RNG seed for the sample set.
        threshold: Stop once the metric exceeds this (None = exhaust).
        error_cap: Hard stop for exhaustive sweeps (useful for Figure 5).
        max_iterations: Hard iteration cap (None = unlimited).
        max_evaluations: Hard cap on candidate evaluations (None =
            unlimited).  Checked at the top of every search step, for
            every strategy — this is the equal-budget knob the
            strategy-portfolio benchmark pivots on.  Like the other stop
            conditions it is excluded from the checkpoint fingerprint.
        strategy: Candidate selection — ``full`` / ``lazy`` greedy, or
            one of the stochastic searchers (``anneal`` / ``bo`` /
            ``ranker``; see :mod:`repro.core.search`).
        anneal_t0 / anneal_alpha / anneal_stall: Simulated-annealing
            schedule: initial temperature, geometric decay per proposed
            move, and the consecutive-rejection count that stops the
            walk.
        bo_init / bo_lengthscale: BO surrogate warm-up (uniform random
            proposals before the GP takes over) and RBF kernel
            lengthscale over the normalized degree vector.
        ranker_epsilon / ranker_lr: Move-ranker exploration rate
            (epsilon-greedy) and online logistic learning rate.
        tie_epsilon / tie_epsilon_scale: Measured errors within
            ``max(tie_epsilon, tie_epsilon_scale * current_error)`` of the
            best candidate count as tied and resolve by estimated area.
            This is what lets the cheap uniform-weight factorization win
            over the weighted one when both are equally harmless (Monte-
            Carlo estimates are noisy at that granularity anyway).
        refine_passes: Decomposition refinement passes.
        estimate_area: Synthesize per-variant area estimates during
            profiling (needed for area trajectories).
        jobs: Worker processes for the profiling phase *and*, unless
            ``shard_jobs`` overrides it, for streaming shard scans
            (``0`` = all cores, ``1`` = serial); results are
            byte-identical whatever the count.
        shard_jobs: Worker processes for the streaming engine's
            chunk-sharded candidate scans.  ``None`` (default) follows
            ``jobs`` — one knob governs both phases; set explicitly to
            decouple them (``0`` = all cores, ``1`` = in-process).
            Only meaningful with streaming execution (``chunk_words`` or
            ``chunk_budget_mb``); sharded trajectories are byte-identical
            to serial streaming for every worker count.
        chunk_cache_chunks: Capacity of the streaming engine's cone-epoch
            base-slice cache (cached per-chunk committed base states; a
            commit invalidates exactly the chunks whose valid bits it
            changed).  ``0`` (default) disables cross-iteration chunk
            caching.  Each cached slice costs up to ``8 × n_nodes ×
            chunk_words`` bytes per process — the auto budget accounts
            for it (see :func:`repro.core.streaming.auto_chunk_words`).
        cache_dir: Directory for the persistent profiling cache (None
            disables caching).  Warm runs skip all BMF factorization and
            variant synthesis.
        engine: Candidate-evaluation engine — ``compiled`` (cone-scheduled
            SoA sweeps + delta-QoR; default) or ``reference`` (the
            interpreted full-plan evaluator).  Trajectories are
            byte-identical between the two (asserted by the test suite
            and ``benchmarks/bench_explore.py``).
        chunk_words: Streaming execution (compiled engine only): process
            the pattern axis in word-aligned chunks of at most this many
            packed uint64 words, bounding peak sample-matrix memory by
            ``2 × 8 × n_nodes × chunk_words`` bytes instead of the full
            ``8 × n_nodes × words_for(n_samples)`` resident matrix.
            ``None`` (default) keeps resident execution.  Trajectories
            are byte-identical for every chunk size (DESIGN.md
            "Streaming execution").
        chunk_budget_mb: Auto mode for ``chunk_words``: pick the largest
            chunk whose sample-matrix working set fits this many
            megabytes (resident execution when the whole matrix already
            fits).  Ignored when ``chunk_words`` is set explicitly.
        sanitize: Runtime contract sanitizer (DESIGN.md "Static
            contracts"): freeze arrays handed out by the chunk cache,
            preview memo, and profile cache; assert the tail-bit mask at
            engine boundaries; audit shard payloads at submit time.
            ``None`` (default) defers to the ``REPRO_SANITIZE``
            environment variable.  Trajectories are byte-identical with
            the sanitizer on or off — it only adds tripwires.
        shard_timeout: Per-attempt wall-clock bound (seconds) for
            supervised pool work — a hung worker is timed out, the pool
            killed and rebuilt, and the item retried/fallback-executed.
            ``None`` (default) waits forever.
        shard_retries: Pool re-submissions per failed shard/task before
            it falls back to in-process execution.  Recovery never
            changes results — items are pure functions of their inputs.
        faults: Deterministic fault-injection spec for chaos testing
            (grammar in :mod:`repro.runtime.faults`; DESIGN.md "Fault
            tolerance").  ``None`` (default) defers to the
            ``REPRO_FAULTS`` environment variable.  Trajectories are
            byte-identical with any recoverable plan injected.
        checkpoint_path: Write an atomic exploration checkpoint here
            every ``checkpoint_every`` committed iterations (``None``
            disables checkpointing).
        checkpoint_every: Commit period of checkpoint writes (≥ 1).
        resume: Load this checkpoint and continue the search from it —
            the final trajectory is byte-identical to an uninterrupted
            run.  The checkpoint must fingerprint-match the circuit and
            every search-defining config field (stop conditions and
            execution knobs excluded; see
            :mod:`repro.runtime.checkpoint`).
        kernels: Kernel backend for the packed hot loops — ``numpy``
            (the reference oracle), ``jit`` (numba-compiled loops, with
            pure-numpy fallbacks when numba is absent) or ``auto``
            (default: jit when numba imports, numpy otherwise).  The
            ``REPRO_KERNELS`` environment variable overrides this field.
            Results are byte-identical for every choice (DESIGN.md
            "Kernel backends"), so like ``engine`` this is excluded from
            the checkpoint fingerprint.
    """

    max_inputs: int = 10
    max_outputs: int = 10
    method: str = "asso"
    algebra: str = "semiring"
    taus: Sequence[float] = DEFAULT_TAUS
    weight_mode: str = "significance"
    selection: str = "hybrid"
    match_macros: bool = False
    qor: QoRSpec = QoRSpec("mre")
    n_samples: int = 4096
    seed: int = 7
    threshold: Optional[float] = None
    error_cap: Optional[float] = None
    max_iterations: Optional[int] = None
    strategy: str = "full"
    tie_epsilon: float = 1e-4
    tie_epsilon_scale: float = 0.05
    refine_passes: int = 1
    estimate_area: bool = True
    library: Library = LIB65
    espresso: EspressoOptions = EspressoOptions()
    jobs: int = 1
    shard_jobs: Optional[int] = None
    chunk_cache_chunks: int = 0
    cache_dir: Optional[str] = None
    engine: str = "compiled"
    chunk_words: Optional[int] = None
    chunk_budget_mb: Optional[float] = None
    sanitize: Optional[bool] = None
    shard_timeout: Optional[float] = None
    shard_retries: int = 2
    faults: Optional[str] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    resume: Optional[str] = None
    max_evaluations: Optional[int] = None
    anneal_t0: float = 0.2
    anneal_alpha: float = 0.97
    anneal_stall: int = 24
    bo_init: int = 6
    bo_lengthscale: float = 0.25
    ranker_epsilon: float = 0.15
    ranker_lr: float = 0.5
    kernels: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ExplorationError(
                f"unknown strategy {self.strategy!r}; expected {STRATEGIES}"
            )
        if self.engine not in ENGINES:
            raise ExplorationError(
                f"unknown engine {self.engine!r}; expected {ENGINES}"
            )
        if self.kernels not in KERNEL_CHOICES:
            raise ExplorationError(
                f"unknown kernel backend {self.kernels!r}; expected "
                f"{KERNEL_CHOICES}"
            )
        if self.chunk_words is not None and self.chunk_words < 1:
            raise ExplorationError(
                f"chunk_words must be >= 1, got {self.chunk_words}"
            )
        if self.chunk_budget_mb is not None and self.chunk_budget_mb <= 0:
            raise ExplorationError(
                f"chunk_budget_mb must be positive, got {self.chunk_budget_mb}"
            )
        if self.chunk_cache_chunks < 0:
            raise ExplorationError(
                f"chunk_cache_chunks must be >= 0, got {self.chunk_cache_chunks}"
            )
        if self.engine == "reference" and (
            self.chunk_words is not None or self.chunk_budget_mb is not None
        ):
            raise ExplorationError(
                "chunked (streaming) execution requires the compiled engine"
            )
        streaming = (
            self.chunk_words is not None or self.chunk_budget_mb is not None
        )
        if not streaming and (
            self.shard_jobs is not None or self.chunk_cache_chunks > 0
        ):
            raise ExplorationError(
                "shard_jobs / chunk_cache_chunks require streaming "
                "execution (set chunk_words or chunk_budget_mb)"
            )
        if self.shard_retries < 0:
            raise ExplorationError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ExplorationError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.checkpoint_every < 1:
            raise ExplorationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ExplorationError(
                f"max_evaluations must be >= 1, got {self.max_evaluations}"
            )
        if self.anneal_t0 <= 0:
            raise ExplorationError(
                f"anneal_t0 must be positive, got {self.anneal_t0}"
            )
        if not 0 < self.anneal_alpha < 1:
            raise ExplorationError(
                f"anneal_alpha must be in (0, 1), got {self.anneal_alpha}"
            )
        if self.anneal_stall < 1:
            raise ExplorationError(
                f"anneal_stall must be >= 1, got {self.anneal_stall}"
            )
        if self.bo_init < 1:
            raise ExplorationError(
                f"bo_init must be >= 1, got {self.bo_init}"
            )
        if self.bo_lengthscale <= 0:
            raise ExplorationError(
                f"bo_lengthscale must be positive, got {self.bo_lengthscale}"
            )
        if not 0 <= self.ranker_epsilon <= 1:
            raise ExplorationError(
                f"ranker_epsilon must be in [0, 1], got {self.ranker_epsilon}"
            )
        if self.ranker_lr <= 0:
            raise ExplorationError(
                f"ranker_lr must be positive, got {self.ranker_lr}"
            )
        if isinstance(self.faults, str):
            # Fail fast on malformed specs (raises FaultSpecError) rather
            # than mid-run on the first injection check.
            FaultPlan.parse(self.faults)


@dataclass(frozen=True)
class TrajectoryPoint:
    """State after one committed approximation step.

    ``strategy`` / ``seed`` / ``move_id`` make every point
    self-describing for replay: the strategy and seed that produced it,
    and (for the stochastic searchers) the ordinal of the proposal that
    committed — gaps in ``move_id`` are rejected proposals, so a
    trajectory alone pins down the searcher's accept/reject history.
    Greedy strategies record ``move_id = -1``.
    """

    iteration: int
    window_index: int
    f: int
    qor: float
    est_area: float
    fs: Tuple[int, ...]
    strategy: str = ""
    seed: int = 0
    move_id: int = -1

    def normalized_area(self, baseline: float) -> float:
        return self.est_area / baseline if baseline else 0.0


@dataclass
class ExplorationResult:
    """Everything the exploration produced.

    The trajectory starts at the exact design (iteration 0, qor 0) and each
    later point is one committed degree decrement.  ``chosen`` records
    which candidate variant won at each committed (window, degree) pair —
    profiles may offer several per degree (dual-rail weighting).
    """

    circuit: Circuit
    windows: List[Window]
    profiles: List[WindowProfile]
    trajectory: List[TrajectoryPoint]
    baseline_est_area: float
    config: ExplorerConfig
    n_evaluations: int = 0
    chosen: Dict[Tuple[int, int], "CandidateVariant"] = field(
        default_factory=dict
    )
    #: Work accounting: profiling counters (zero when profiles were passed
    #: in) plus the exploration engine's sweep/cone counters.
    runtime_stats: Optional[RuntimeStats] = None

    def points_within(self, threshold: float) -> List[TrajectoryPoint]:
        return [p for p in self.trajectory if p.qor <= threshold]

    def estimated_reduction(self, point: TrajectoryPoint) -> float:
        """Absolute estimated area saved at ``point`` (µm²).

        ``baseline_est_area`` covers only the *profiled* windows, so
        relative savings are not comparable between flows whose windows
        cover different fractions of the circuit (e.g. BLASYS vs. the
        SALSA baseline); the absolute reduction is.
        """
        return self.baseline_est_area - point.est_area

    def best_point(self, threshold: float) -> Optional[TrajectoryPoint]:
        """Lowest-estimated-area trajectory point within ``threshold``."""
        candidates = self.points_within(threshold)
        if not candidates:
            return None
        return min(candidates, key=lambda p: (p.est_area, -p.iteration))

    def variant_at(self, window_index: int, f: int) -> "CandidateVariant":
        """The candidate realized for a window at degree ``f``."""
        picked = self.chosen.get((window_index, f))
        if picked is not None:
            return picked
        profile = next(
            p for p in self.profiles if p.window.index == window_index
        )
        return profile.variants[f][0]

    def realize(self, point: TrajectoryPoint, name: Optional[str] = None) -> Circuit:
        """Build the actual netlist for a trajectory point.

        Every window whose degree is below exact is substituted with its
        synthesized compressor/decompressor structure.
        """
        replacements = {}
        for profile, f in zip(self.profiles, point.fs):
            if f >= profile.max_degree:
                continue
            replacements[profile.window.index] = self.variant_at(
                profile.window.index, f
            ).replacement
        return substitute_windows(
            self.circuit,
            self.windows,
            replacements,
            name=name or f"{self.circuit.name}_approx",
            espresso_options=self.config.espresso,
        )


def _estimated_area(
    profiles: Sequence[WindowProfile],
    fs: Dict[int, int],
    chosen: Dict[Tuple[int, int], "CandidateVariant"],
) -> float:
    total = 0.0
    for p in profiles:
        f = fs[p.window.index]
        if f >= p.max_degree:
            total += p.exact_area
        else:
            picked = chosen.get((p.window.index, f))
            total += (picked or p.variants[f][0]).area
    return total


def explore(
    circuit: Circuit,
    config: ExplorerConfig = ExplorerConfig(),
    windows: Optional[Sequence[Window]] = None,
    profiles: Optional[Sequence[WindowProfile]] = None,
    context: Optional[RunContext] = None,
) -> ExplorationResult:
    """Run Algorithm 1 end to end.

    Args:
        circuit: The accurate input circuit.
        config: See :class:`ExplorerConfig`.
        windows / profiles: Reuse a previous decomposition/profiling (e.g.
            to sweep several thresholds or strategies without re-profiling).
        context: Per-run hooks (:class:`~repro.runtime.RunContext`):
            cooperative cancellation/deadline token, per-step progress
            callback, a shared profile cache overriding
            ``config.cache_dir``, and a shard-executor factory.  A
            cancelled run raises the token's verdict exception
            (:class:`~repro.errors.JobCancelled` /
            :class:`~repro.errors.JobDeadlineExceeded` /
            :class:`~repro.errors.ServiceShutdown`) at the next safe
            boundary — after flushing a final checkpoint when
            ``config.checkpoint_path`` is set, so resuming that
            checkpoint continues the search byte-identically.

    Returns:
        An :class:`ExplorationResult` whose trajectory records QoR and
        estimated area after every committed step.
    """
    # Resolve the kernel backend once (env > config precedence) and
    # install it for the whole run — profiling descents, the evaluator,
    # and QoR partials all pick it up via the thread-local.  Per-kernel
    # call deltas land in the result's RuntimeStats either way the run
    # ends (the stats object is shared with the result).
    runtime_stats = RuntimeStats()
    kernels = resolve_backend(config.kernels)
    runtime_stats.kernel_backend = kernels.name
    kernel_calls = kernels.snapshot()
    try:
        with use_backend(kernels):
            return _explore_impl(
                circuit, config, windows, profiles, context, runtime_stats
            )
    finally:
        delta = kernels.delta(kernel_calls)
        runtime_stats.n_kernel_popcounts += delta["popcount"]
        runtime_stats.n_kernel_gain_scores += delta["gains"]
        runtime_stats.n_kernel_sweeps += delta["sweep"]
        runtime_stats.n_kernel_partials += delta["partials"]


def _explore_impl(
    circuit: Circuit,
    config: ExplorerConfig,
    windows: Optional[Sequence[Window]],
    profiles: Optional[Sequence[WindowProfile]],
    context: Optional[RunContext],
    runtime_stats: RuntimeStats,
) -> ExplorationResult:
    if context is None:
        context = RunContext()
    context.check_cancel()
    if windows is None:
        windows = decompose(
            circuit, config.max_inputs, config.max_outputs, config.refine_passes
        )
    windows = list(windows)
    sanitize = sanitize_enabled(config.sanitize)
    # One fault-plan instance and one retry policy per run, threaded
    # through every supervised layer (profiling pool, shard executor,
    # profile cache) so "fire once" clauses fire once globally and the
    # retry bounds cannot drift between layers.
    fault_plan = faults_enabled(config.faults)
    retry_policy = RetryPolicy(
        max_retries=config.shard_retries, timeout=config.shard_timeout
    )
    if profiles is None:
        if context.cache is not None:
            # A live shared cache (the exploration service's) overrides
            # the per-run directory: concurrent jobs on the same circuit
            # dedup identical window truth tables through one store.
            cache = context.cache
        else:
            cache = (
                ProfileCache(
                    config.cache_dir, sanitize=sanitize, faults=fault_plan
                )
                if config.cache_dir
                else None
            )
        profiles = profile_windows(
            circuit,
            windows,
            method=config.method,
            algebra=config.algebra,
            taus=config.taus,
            weight_mode=config.weight_mode,
            selection=config.selection,
            library=config.library,
            espresso_options=config.espresso,
            estimate_area=config.estimate_area,
            match_macros=config.match_macros,
            jobs=config.jobs,
            cache=cache,
            runtime_stats=runtime_stats,
            policy=retry_policy,
            faults=fault_plan,
            cancel=context.cancel,
        )
    profiles = list(profiles)
    context.check_cancel()

    rng = np.random.default_rng(config.seed)
    input_words = stimulus_input_words(circuit, config.n_samples, rng)
    # One jobs policy for every dispatch layer: --jobs governs profiling
    # *and* (unless shard_jobs overrides it) streaming shard scans.
    shard_jobs = effective_jobs(
        config.jobs if config.shard_jobs is None else config.shard_jobs
    )
    chunk_words = config.chunk_words
    if chunk_words is None and config.chunk_budget_mb is not None:
        chunk_words = auto_chunk_words(
            circuit.n_nodes,
            int(config.chunk_budget_mb * 1e6),
            words_for(config.n_samples),
            jobs=shard_jobs,
            cache_chunks=config.chunk_cache_chunks,
        )
    evaluator = make_evaluator(
        circuit,
        windows,
        input_words,
        config.n_samples,
        engine=config.engine,
        stats=runtime_stats,
        chunk_words=chunk_words,
        shard_jobs=shard_jobs,
        cache_chunks=config.chunk_cache_chunks,
        sanitize=sanitize,
        policy=retry_policy,
        faults=fault_plan,
        executor_factory=context.executor_factory,
        cancel=context.cancel,
    )
    try:
        return _run_exploration(
            circuit, config, windows, profiles, evaluator, runtime_stats,
            rng=rng, context=context,
        )
    finally:
        evaluator.close()


def _search_fingerprint(circuit: Circuit, config: ExplorerConfig) -> str:
    """Checkpoint-compatibility fingerprint of this search.

    Hashes the canonical circuit structure plus every *search-defining*
    config field.  Stop conditions (``threshold`` / ``error_cap`` /
    ``max_iterations``) and execution knobs that are byte-identical by
    contract (engine, chunking, sharding, jobs, cache dir, sanitize,
    faults, checkpoint/resume paths) are deliberately excluded so an
    interrupted run can be resumed with different stop bounds or on a
    differently-provisioned host (see :mod:`repro.runtime.checkpoint`).
    """
    return fingerprint_tokens(
        canonical_circuit_bytes(circuit),
        config.max_inputs,
        config.max_outputs,
        config.method,
        config.algebra,
        tuple(config.taus),
        config.weight_mode,
        config.selection,
        config.match_macros,
        config.qor,
        config.n_samples,
        config.seed,
        config.strategy,
        config.tie_epsilon,
        config.tie_epsilon_scale,
        config.anneal_t0,
        config.anneal_alpha,
        config.anneal_stall,
        config.bo_init,
        config.bo_lengthscale,
        config.ranker_epsilon,
        config.ranker_lr,
        config.refine_passes,
        config.estimate_area,
        config.library.name,
        config.espresso,
    )


def _variant_pos(variants: Sequence, variant) -> int:
    """Position of ``variant`` in its profile's per-degree list.

    Identity comparison on purpose: committed variants always *are*
    entries of the profile list, and ``CandidateVariant`` holds numpy
    arrays, which makes value equality both expensive and ambiguous.
    """
    for i, v in enumerate(variants):
        if v is variant:
            return i
    raise ExplorationError(
        "committed variant is not an entry of its window profile"
    )


def _run_exploration(
    circuit: Circuit,
    config: ExplorerConfig,
    windows: List[Window],
    profiles: List[WindowProfile],
    evaluator,
    runtime_stats: RuntimeStats,
    rng=None,
    context: Optional[RunContext] = None,
) -> ExplorationResult:
    """Algorithm 1's greedy loop over a constructed evaluation engine."""
    if context is None:
        context = RunContext()
    profile_by_index = {p.window.index: p for p in profiles}
    qor_eval = QoREvaluator(
        circuit, evaluator.exact_outputs, config.n_samples, config.qor,
        sanitize=sanitize_enabled(config.sanitize),
    )
    # The compiled engine reports exactly which output rows each candidate
    # dirtied, so QoR evaluation only recomputes the words those rows feed
    # (bit-identical to a full evaluation — see DESIGN.md).  The streaming
    # engine goes one step further: it folds the same canonical QoR
    # accumulation into its chunk loop and returns error floats directly.
    streaming = isinstance(evaluator, StreamingEvaluator)
    delta_qor = isinstance(evaluator, CompiledEvaluator)
    if delta_qor:
        qor_eval.rebase(evaluator.exact_outputs)

    fs: Dict[int, int] = {p.window.index: p.max_degree for p in profiles}
    result = ExplorationResult(
        circuit, windows, profiles, [], 0.0, config,
        runtime_stats=runtime_stats,
    )
    baseline_area = _estimated_area(profiles, fs, result.chosen)
    result.baseline_est_area = baseline_area
    trajectory = result.trajectory
    trajectory.append(
        TrajectoryPoint(
            0, -1, 0, 0.0, baseline_area,
            tuple(fs[p.window.index] for p in profiles),
            strategy=config.strategy, seed=config.seed,
        )
    )

    def active(idx: int) -> bool:
        return fs[idx] > 1 and (fs[idx] - 1) in profile_by_index[idx].variants

    def score_previews(variants, previews) -> List[Tuple[float, "CandidateVariant"]]:
        """(error, variant) per candidate, via the engine's QoR path."""
        scored = []
        if streaming:
            for variant, (err, _dirty_rows) in zip(variants, previews):
                result.n_evaluations += 1
                scored.append((err, variant))
        elif delta_qor:
            for variant, (out, dirty_rows) in zip(variants, previews):
                result.n_evaluations += 1
                scored.append(
                    (qor_eval.evaluate_delta(out, dirty_rows), variant)
                )
        else:
            for variant, out in zip(variants, previews):
                result.n_evaluations += 1
                scored.append((qor_eval.evaluate(out), variant))
        return scored

    def pick_best(
        variants, previews, current: float
    ) -> Tuple[float, "CandidateVariant"]:
        """Best (error, variant) among one window's candidate previews.

        Candidates whose measured error is within the tie tolerance of the
        best count as equivalent and resolve by estimated area (see
        :class:`ExplorerConfig`).
        """
        scored = score_previews(variants, previews)
        best_err = min(err for err, _ in scored)
        eps = max(config.tie_epsilon, config.tie_epsilon_scale * current)
        tied = [(err, v) for err, v in scored if err <= best_err + eps]
        err, variant = min(tied, key=lambda ev: (ev[1].area, ev[0]))
        return err, variant

    def preview_error(
        idx: int, current: float
    ) -> Tuple[float, "CandidateVariant"]:
        """Evaluate one window's next-degree candidates and pick the best.

        All of the window's candidates run through one batched evaluator
        pass (shared input unpack / stacked seed gather — or one chunked
        scan on the streaming engine).
        """
        variants = profile_by_index[idx].variants[fs[idx] - 1]
        tables = [v.table for v in variants]
        if streaming:
            previews = evaluator.scan_errors([(idx, tables)], qor_eval)[0]
        elif delta_qor:
            previews = evaluator.preview_batch_delta(idx, tables)
        else:
            previews = evaluator.preview_batch(idx, tables)
        return pick_best(variants, previews, current)

    iteration = 0
    current_qor = 0.0
    # Lazy-greedy queue: (stale error, tie-break, window index).
    heap: List[Tuple[float, int, int]] = []
    counter = 0
    if config.strategy == "lazy":
        for p in profiles:
            if active(p.window.index):
                heap.append((0.0, counter, p.window.index))
                counter += 1
        heapq.heapify(heap)

    searcher = None
    if config.strategy in SEARCHER_STRATEGIES:
        if rng is None:
            # explore() always threads its post-stimulus generator in;
            # this fallback only serves direct _run_exploration callers.
            rng = np.random.default_rng(config.seed)
        searcher = make_searcher(config, profiles, rng)

    fingerprint: Optional[str] = None
    if config.checkpoint_path or config.resume:
        fingerprint = _search_fingerprint(circuit, config)

    if config.resume:
        # Replay the checkpoint's committed steps through the fresh
        # evaluator.  Engine memo/cache state starts cold — a performance
        # difference only; the determinism discipline guarantees every
        # subsequent preview float matches the uninterrupted run.
        ckpt = load_checkpoint(config.resume, expect_fingerprint=fingerprint)
        for point in ckpt.trajectory[1:]:
            widx, f = int(point[1]), int(point[2])
            variant = profile_by_index[widx].variants[f][ckpt.chosen[(widx, f)]]
            evaluator.commit(widx, variant.table)
            fs[widx] = f
            result.chosen[(widx, f)] = variant
        if delta_qor and len(ckpt.trajectory) > 1:
            qor_eval.rebase(evaluator.current_outputs())
        trajectory[:] = [TrajectoryPoint(*point) for point in ckpt.trajectory]
        iteration = ckpt.iteration
        current_qor = ckpt.current_qor
        result.n_evaluations = ckpt.n_evaluations
        heap = list(ckpt.heap)
        counter = ckpt.counter
        if rng is not None and ckpt.rng_state is not None:
            rng.bit_generator.state = ckpt.rng_state
        if searcher is not None and ckpt.searcher_state is not None:
            searcher.load_state_dict(ckpt.searcher_state)

    def write_checkpoint() -> None:
        # Committed-variant identities and the trajectory's own floats are
        # the whole logical loop state (module docstring of
        # repro.runtime.checkpoint); everything engine-internal is rebuilt
        # on resume by re-committing these steps.
        chosen_positions = {
            (widx, f): _variant_pos(profile_by_index[widx].variants[f], v)
            for (widx, f), v in result.chosen.items()
        }
        save_checkpoint(
            config.checkpoint_path,
            ExploreCheckpoint(
                fingerprint=fingerprint,
                iteration=iteration,
                current_qor=current_qor,
                n_evaluations=result.n_evaluations,
                fs=dict(fs),
                chosen=chosen_positions,
                trajectory=[
                    (p.iteration, p.window_index, p.f, p.qor, p.est_area,
                     tuple(p.fs), p.strategy, p.seed, p.move_id)
                    for p in trajectory
                ],
                heap=list(heap),
                counter=counter,
                rng_state=(
                    rng.bit_generator.state if rng is not None else None
                ),
                searcher_state=(
                    searcher.state_dict() if searcher is not None else None
                ),
            ),
        )
        runtime_stats.n_checkpoints += 1

    def stop_reached() -> bool:
        if config.max_iterations is not None and iteration >= config.max_iterations:
            return True
        if (
            config.max_evaluations is not None
            and result.n_evaluations >= config.max_evaluations
        ):
            return True
        if config.threshold is not None and current_qor > config.threshold:
            return True
        if config.error_cap is not None and current_qor >= config.error_cap:
            return True
        return False

    def greedy_loop() -> None:
        nonlocal iteration, current_qor, counter
        while True:
            context.check_cancel()
            if stop_reached():
                break

            chosen: Optional[int] = None
            chosen_error: Optional[float] = None
            chosen_variant = None
            if config.strategy == "full":
                candidates = [idx for idx in fs if active(idx)]
                if not candidates:
                    break
                if delta_qor:
                    # One stacked pass evaluates the whole iteration's scan:
                    # every window's candidates share a single wide execution
                    # of the quotient schedule (resident: CompiledEvaluator.
                    # preview_scan; streaming: one chunked pass sharing each
                    # chunk's base state); scoring order matches the serial
                    # loop.
                    per_window = [
                        profile_by_index[idx].variants[fs[idx] - 1]
                        for idx in candidates
                    ]
                    requests = [
                        (idx, [v.table for v in variants])
                        for idx, variants in zip(candidates, per_window)
                    ]
                    if streaming:
                        scans = evaluator.scan_errors(requests, qor_eval)
                    else:
                        scans = evaluator.preview_scan(requests)
                    for idx, variants, previews in zip(
                        candidates, per_window, scans
                    ):
                        err, variant = pick_best(variants, previews, current_qor)
                        if chosen_error is None or err < chosen_error:
                            chosen, chosen_error, chosen_variant = (
                                idx, err, variant,
                            )
                else:
                    for idx in candidates:
                        err, variant = preview_error(idx, current_qor)
                        if chosen_error is None or err < chosen_error:
                            chosen, chosen_error, chosen_variant = (
                                idx, err, variant,
                            )
            else:
                while heap:
                    # Peek, don't pop: cancellation can surface *inside*
                    # the preview (streaming scans check the token at
                    # chunk boundaries), and the exception handler below
                    # flushes the heap into the checkpoint.  The entry
                    # only comes off once its fresh error is in hand, so
                    # an interrupted selection resumes with the heap
                    # complete and replays the identical pop sequence.
                    _, _, idx = heap[0]
                    if not active(idx):
                        heapq.heappop(heap)
                        continue
                    fresh, variant = preview_error(idx, current_qor)
                    heapq.heappop(heap)
                    if not heap or fresh <= heap[0][0]:
                        chosen, chosen_error, chosen_variant = idx, fresh, variant
                        break
                    heapq.heappush(heap, (fresh, counter, idx))
                    counter += 1
                if chosen is None:
                    break

            evaluator.commit(chosen, chosen_variant.table)
            if delta_qor:
                qor_eval.rebase(evaluator.current_outputs())
            fs[chosen] -= 1
            result.chosen[(chosen, fs[chosen])] = chosen_variant
            current_qor = chosen_error
            iteration += 1
            trajectory.append(
                TrajectoryPoint(
                    iteration,
                    chosen,
                    fs[chosen],
                    current_qor,
                    _estimated_area(profiles, fs, result.chosen),
                    tuple(fs[p.window.index] for p in profiles),
                    strategy=config.strategy,
                    seed=config.seed,
                )
            )
            if context.on_progress is not None:
                context.on_progress(trajectory[-1])
            if config.strategy == "lazy" and active(chosen):
                heapq.heappush(heap, (current_qor, counter, chosen))
                counter += 1
            if (
                config.checkpoint_path
                and iteration % config.checkpoint_every == 0
            ):
                write_checkpoint()

    def searcher_loop() -> None:
        # One proposed move per step: the searcher picks a window, the
        # engine previews it through the same memoized machinery the
        # greedy loop uses, and the searcher decides commit/reject.
        # Rejected moves consume evaluations (the budget is spent on
        # previews) but commit nothing and advance no iteration.
        nonlocal iteration, current_qor
        while True:
            context.check_cancel()
            if stop_reached():
                break
            idx = searcher.propose(fs, active, current_qor)
            if idx is None:
                break
            err, variant = preview_error(idx, current_qor)
            if not searcher.observe(idx, err, current_qor, fs):
                continue
            evaluator.commit(idx, variant.table)
            if delta_qor:
                qor_eval.rebase(evaluator.current_outputs())
            fs[idx] -= 1
            result.chosen[(idx, fs[idx])] = variant
            current_qor = err
            iteration += 1
            trajectory.append(
                TrajectoryPoint(
                    iteration,
                    idx,
                    fs[idx],
                    current_qor,
                    _estimated_area(profiles, fs, result.chosen),
                    tuple(fs[p.window.index] for p in profiles),
                    strategy=config.strategy,
                    seed=config.seed,
                    move_id=searcher.last_move_id,
                )
            )
            if context.on_progress is not None:
                context.on_progress(trajectory[-1])
            if (
                config.checkpoint_path
                and iteration % config.checkpoint_every == 0
            ):
                write_checkpoint()

    try:
        if searcher is not None:
            searcher_loop()
        else:
            greedy_loop()
    except (JobCancelled, JobDeadlineExceeded, ServiceShutdown):
        # Cancellation surfaces only at safe boundaries — the loop top,
        # or inside a preview scan, which mutates no committed state —
        # so the committed trajectory is always consistent; flush it
        # and let the verdict propagate.  The lazy heap (peeked, not
        # popped, across previews) and any pending searcher proposal
        # (carried in searcher_state) are both checkpoint-complete at
        # these boundaries, so resuming continues the search
        # byte-identically to an uninterrupted run.
        if config.checkpoint_path:
            write_checkpoint()
        raise

    return result
