"""Compiled exploration engine: cone schedules + SoA gate programs.

Algorithm 1's inner loop evaluates every candidate substitution against the
whole sample set; :class:`~repro.core.incremental.IncrementalEvaluator`
already prunes that to the candidate's downstream cone, but it still *walks
the entire quotient plan in interpreted Python* per candidate, paying one
``any(dirty[f] ...)`` + one numpy dispatch per touched node.  This module
compiles the evaluation so a candidate sweep costs a handful of vectorized
array ops:

* **Static cone schedules** — each window's transitive fanout restricted to
  the quotient plan (:meth:`~repro.partition.plan.QuotientGraph.cone`) is
  extracted once per decomposition; a sweep touches only the cone's units
  instead of all of them.  The window's packed input-index vector is cached
  and invalidated on commit instead of being rebuilt via ``unpack_bits``
  per preview.
* **Structure-of-arrays gate programs** — cone gates grouped by
  (level, op, arity) with fanin index matrices, executed as gathered-row
  bitwise ufunc reductions over a local packed value matrix.  Windows not
  yet substituted are *inlined* into the surrounding levelization (wide
  levels span window boundaries — crucial for shallow-but-wide datapaths);
  substituted windows become single table-gather instructions.  A cone
  program is therefore specialized to the committed set and lazily
  recompiled when a window inside it is first committed — the committed
  set only grows, so total recompiles are bounded by the number of
  (cone, window) incidences, not by the iteration count.  The same
  compiler serves whole-circuit simulation (:func:`simulate_full_compiled`
  behind :func:`repro.circuit.simulate.simulate_full`).
* **Stacked candidate gather** — all candidate tables of one window are
  pushed through the shared input index in a single ``(n_cand, m, n)``
  fancy-index plus one ``pack_bits`` call, and dirty tracking happens in
  one bulk valid-bit compare per sweep instead of per node.

Determinism contract (see DESIGN.md "Exploration engine"): on every
**valid bit** the engine is byte-identical to the interpreted reference —
bitwise ops are per-pattern, so valid output bits depend only on valid
input bits, and LUT/window gathers mask their tails to zero.  Unspecified
*gate tails* may differ from the reference's (the reference re-reads
cached tails for clean nodes; the engine does not), which the repo's
tail-bit invariant explicitly permits: packed values from different
evaluation paths are only comparable under the tail mask.  With
``n_samples % 64 == 0`` there are no tail bits and full words are
identical.  Exploration trajectories (qor floats, areas, window choices)
derive exclusively from valid bits and are bit-identical between engines —
asserted by the test suite and ``benchmarks/bench_explore.py``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.gate import Op
from ..circuit.netlist import Circuit
from ..circuit.simulate import (
    _FULL_WORD,
    WORD_BITS,
    _lut_eval,
    mask_tail_words,
    pack_bits,
    unpack_bits,
)
from ..analysis.sanitize import assert_tail_clean, freeze
from ..errors import SimulationError
from ..kernels import active_backend
from ..runtime import RuntimeStats
from .incremental import IncrementalEvaluator

#: Evaluation engines selectable via ``ExplorerConfig.engine``.
ENGINES = ("compiled", "reference")


# ----------------------------------------------------------------------
# SoA gate programs
# ----------------------------------------------------------------------
@dataclass
class GateBatch:
    """One vectorized instruction: all same-level (op, arity) nodes at once.

    ``out``/``fanins`` hold *local slot* indices into the value matrix the
    program runs over (equal to node ids for whole-circuit programs);
    ``out_ids`` holds the global node ids, and ``table`` carries the LUT
    table for singleton LUT instructions.
    """

    op: Op
    out: np.ndarray
    fanins: np.ndarray
    out_ids: np.ndarray
    table: Optional[np.ndarray] = None


_NARY = {
    Op.AND: (np.bitwise_and, False),
    Op.NAND: (np.bitwise_and, True),
    Op.OR: (np.bitwise_or, False),
    Op.NOR: (np.bitwise_or, True),
    Op.XOR: (np.bitwise_xor, False),
    Op.XNOR: (np.bitwise_xor, True),
}


def execute_batch(
    batch: GateBatch, values: np.ndarray, n_valid: Optional[int]
) -> np.ndarray:
    """Evaluate one batch over ``values``; returns ``(g, W)`` results.

    Bitwise ufunc reductions are exact and fully associative, so results
    match the per-node interpreter (:func:`repro.circuit.simulate.
    _eval_node`) bit for bit, unspecified gate tails included.
    """
    op = batch.op
    if op is Op.LUT:
        ins = [values[int(s)] for s in batch.fanins[0]]
        return _lut_eval(batch.table, ins, n_valid)[None, :]
    if op is Op.BUF:
        return values[batch.fanins][:, 0]
    if op is Op.NOT:
        return ~values[batch.fanins][:, 0]
    if op is Op.MUX:
        gathered = values[batch.fanins]
        s, a, b = gathered[:, 0], gathered[:, 1], gathered[:, 2]
        return (a & ~s) | (b & s)
    fn, invert = _NARY[op]
    return active_backend().nary_sweep(values, batch.fanins, fn, invert)


def input_index_from_rows(in_words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Per-pattern table-row indices from packed input rows.

    ``in_words`` is a ``(k, W)`` packed matrix (input ``i`` supplies bit
    ``i`` of the index).  Patterns beyond the valid count produce garbage
    indices; callers mask the gathered outputs (see
    :func:`gather_window_outputs`).
    """
    idx = np.zeros(n_patterns, dtype=np.uint32)
    for bit in range(in_words.shape[0]):
        idx |= unpack_bits(in_words[bit], n_patterns).astype(
            np.uint32
        ) << np.uint32(bit)
    return idx


def gather_window_outputs(
    table: np.ndarray, in_words: np.ndarray, n_valid: int
) -> np.ndarray:
    """Evaluate a window table on packed inputs; ``(m, W)`` packed outputs.

    The single table-gather primitive shared by the resident cone sweeps,
    the streaming engine's chunk passes and commits.  Output tails beyond
    ``n_valid`` are masked to zero (tail-bit invariant: garbage indices in
    the tail would otherwise read arbitrary table rows).
    """
    n_pat = in_words.shape[1] * WORD_BITS
    idx = input_index_from_rows(in_words, n_pat)
    packed = pack_bits(np.ascontiguousarray(table[idx, :].T).astype(np.uint8))
    return mask_tail_words(packed, n_valid)


def stacked_seed_gather(
    tables: Sequence[np.ndarray], idx: np.ndarray, n_valid: int
) -> np.ndarray:
    """All candidate tables through one shared input index at once.

    One ``(n_cand, m, n)`` fancy-index plus a single ``pack_bits`` —
    returns packed seeds of shape ``(n_cand, m, W)``, tails masked.
    """
    stacked = np.stack([t.astype(np.uint8) for t in tables])
    gathered = stacked[:, idx, :]
    seeds = pack_bits(np.ascontiguousarray(gathered.transpose(0, 2, 1)))
    mask_tail_words(seeds, n_valid)
    return seeds


def _levelize(
    circuit: Circuit, node_ids: Sequence[int], slot_of
) -> List[GateBatch]:
    """Compile gate nodes (in topological order) into levelized batches.

    Fanins outside ``node_ids`` (boundary values, earlier program
    segments) count as level 0 — they are already available in the value
    matrix when the program runs.  ``slot_of`` maps a global node id to
    its local slot, allocating on first use.
    """
    level: Dict[int, int] = {}
    groups: Dict[Tuple[int, Op, int], List[int]] = {}
    for nid in node_ids:
        node = circuit.node(nid)
        lv = 0
        for f in node.fanins:
            if f in level:
                lv = max(lv, level[f] + 1)
        level[nid] = lv
        key = (lv, node.op, nid if node.op is Op.LUT else len(node.fanins))
        groups.setdefault(key, []).append(nid)
    batches: List[GateBatch] = []
    for (lv, op, _), nids in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[1][0])
    ):
        out = np.array([slot_of(n) for n in nids], dtype=np.int64)
        fanins = np.array(
            [[slot_of(f) for f in circuit.node(n).fanins] for n in nids],
            dtype=np.int64,
        )
        table = circuit.node(nids[0]).table if op is Op.LUT else None
        batches.append(
            GateBatch(op, out, fanins, np.array(nids, dtype=np.int64), table)
        )
    return batches


# ----------------------------------------------------------------------
# Whole-circuit programs (simulate_full fast path)
# ----------------------------------------------------------------------
@dataclass
class CircuitProgram:
    """Compiled full-circuit program; slots are node ids."""

    n_nodes: int
    input_ids: np.ndarray
    const0_ids: np.ndarray
    const1_ids: np.ndarray
    batches: List[GateBatch]


_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Circuit, CircuitProgram]" = (
    weakref.WeakKeyDictionary()
)


def circuit_program(circuit: Circuit) -> CircuitProgram:
    """The circuit's compiled program (cached; nodes are append-only, so a
    node-count match means the cached program is still valid)."""
    prog = _PROGRAM_CACHE.get(circuit)
    if prog is None or prog.n_nodes != circuit.n_nodes:
        prog = _compile_circuit(circuit)
        _PROGRAM_CACHE[circuit] = prog
    # CircuitProgram is a frozen compile artifact shared across every
    # evaluator of the circuit — never mutated after construction.
    return prog  # contract-ok: cache-copy -- immutable compiled program, shared by design


def _compile_circuit(circuit: Circuit) -> CircuitProgram:
    const0: List[int] = []
    const1: List[int] = []
    gates: List[int] = []
    for nid, node in enumerate(circuit.nodes):
        if node.op is Op.CONST0:
            const0.append(nid)
        elif node.op is Op.CONST1:
            const1.append(nid)
        elif node.op.is_gate:
            gates.append(nid)
    return CircuitProgram(
        circuit.n_nodes,
        np.array(circuit.inputs, dtype=np.int64),
        np.array(const0, dtype=np.int64),
        np.array(const1, dtype=np.int64),
        _levelize(circuit, gates, lambda nid: nid),
    )


def simulate_full_compiled(
    circuit: Circuit,
    input_words: np.ndarray,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Gate-program equivalent of the per-node ``simulate_full`` loop.

    Byte-identical to :func:`repro.circuit.simulate.simulate_full_reference`
    on every word, tails included (no overlay semantics involved here —
    every node is computed exactly as the interpreter computes it).
    """
    input_words = np.atleast_2d(np.asarray(input_words, dtype=np.uint64))
    if input_words.shape[0] != circuit.n_inputs:
        raise SimulationError(
            f"expected {circuit.n_inputs} input rows, got {input_words.shape[0]}"
        )
    w = input_words.shape[1]
    prog = circuit_program(circuit)
    values = np.zeros((circuit.n_nodes, w), dtype=np.uint64)
    if prog.input_ids.size:
        values[prog.input_ids] = input_words
    if prog.const1_ids.size:
        values[prog.const1_ids] = _FULL_WORD
    for batch in prog.batches:
        values[batch.out] = execute_batch(batch, values, n_samples)
    return values


# ----------------------------------------------------------------------
# Cone schedules
# ----------------------------------------------------------------------
@dataclass
class WindowInstr:
    """A *substituted* window inside a cone: a single table gather through
    the window's packed input rows (un-substituted windows are inlined
    into the surrounding gate batches at compile time)."""

    index: int
    in_slots: np.ndarray
    in_ids: np.ndarray
    out_slots: np.ndarray
    out_ids: np.ndarray


ConeInstr = Union[GateBatch, WindowInstr]


@dataclass
class ConeSchedule:
    """Compiled downstream cone of one window, over local slots.

    Specialized to the committed set it was compiled against
    (``step_windows`` lists the non-root windows inside the cone; the
    evaluator drops the schedule when one of them is first committed).
    ``recorded_slots``/``recorded_ids`` are the units whose results are
    compared against the cached value matrix in one bulk valid-bit pass;
    ``out_rec_idx``/``out_rows`` map recorded positions to primary-output
    rows for delta-QoR dirty reporting.  ``n_units`` is the quotient-plan
    unit count of the cone (root included) for work accounting.
    """

    root_index: int
    n_slots: int
    boundary_slots: np.ndarray
    boundary_ids: np.ndarray
    root_out_slots: np.ndarray
    root_out_ids: np.ndarray
    instructions: List[ConeInstr]
    recorded_slots: np.ndarray
    recorded_ids: np.ndarray
    out_rec_idx: np.ndarray
    out_rows: List[Tuple[int, ...]]
    step_windows: frozenset
    n_units: int


@dataclass
class IterationSchedule:
    """Whole-plan program for stacked multi-candidate scans.

    Slots are node ids.  Uncommitted windows are inlined as gates,
    committed ones are gather instructions — like a cone schedule, but
    rooted at every window at once: the full-strategy explorer evaluates
    *all* windows' candidates in one pass with candidates stacked along
    the word axis (block-columns), so the per-unit dispatch cost is paid
    once per iteration instead of once per candidate.
    """

    instructions: List[ConeInstr]
    source_ids: np.ndarray
    #: node id -> position of the instruction producing it (-1 for none);
    #: lets a scan map its seed overrides to instructions in O(#seeds).
    producer_of: np.ndarray
    n_units: int


#: Upper bound on candidate blocks stacked into one scan pass (bounds the
#: stacked value matrix at n_nodes x MAX_SCAN_BLOCKS x W words).
MAX_SCAN_BLOCKS = 64


# ----------------------------------------------------------------------
# The compiled evaluator
# ----------------------------------------------------------------------
class CompiledEvaluator(IncrementalEvaluator):
    """Drop-in :class:`IncrementalEvaluator` running compiled cone sweeps.

    Args:
        circuit: The accurate netlist being explored.
        windows: The decomposition's windows (candidate substitution
            sites).
        input_words: Packed Monte-Carlo stimulus, shape
            ``(n_inputs, words_for(n_samples))``.
        n_samples: Valid pattern count (tail bits beyond it are
            unspecified; see DESIGN.md's tail-bit invariant).
        stats: Optional :class:`~repro.runtime.RuntimeStats` accumulator
            for sweep/memo/cone counters.

    Determinism guarantees: public behaviour (previews, batched previews,
    commits, the committed map) matches the reference implementation
    bit-for-bit on every valid bit (full words when ``n_samples`` is a
    multiple of 64 — see the module docstring for the tail contract); in
    addition, :meth:`preview_batch_delta` reports which *output rows*
    each candidate actually dirtied, which feeds the delta-QoR path
    (:meth:`repro.core.qor.QoREvaluator.evaluate_delta`).

    Invalidation semantics: a :meth:`commit` (a) folds the cone's changed
    valid bits into the resident value cache, (b) drops the packed
    input-index / stacked-seed caches of every window whose inputs the
    changed values touch, (c) drops memoized previews of every window
    whose cone state the commit touched (changed values, or any table of
    the committed window — a new table is a different *function* even
    when it matches the old one on the current samples), and (d) on a
    window's *first* commit drops the schedules that had inlined it as
    plain gates (the committed set only grows, so each schedule
    recompiles at most once per window it contains).

    Memory: this engine is *resident* — it holds the full
    ``(n_nodes, words_for(n_samples))`` value matrix.  For pattern counts
    where that matrix is the bottleneck, use the streaming subclass
    (:class:`repro.core.streaming.StreamingEvaluator`, selected via
    ``chunk_words``), which bounds sample-matrix memory by a chunk budget
    and stays trajectory-identical.
    """

    def __init__(
        self,
        circuit: Circuit,
        windows,
        input_words: np.ndarray,
        n_samples: int,
        stats: Optional[RuntimeStats] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        super().__init__(
            circuit, windows, input_words, n_samples, stats=stats,
            sanitize=sanitize,
        )
        self._cones: Dict[int, ConeSchedule] = {}
        self._idx_cache: Dict[int, np.ndarray] = {}
        self._seed_cache: Dict[int, Tuple] = {}
        self._touch_cache: Dict[int, frozenset] = {}
        self._iter_sched: Optional[IterationSchedule] = None
        # Memoized preview results: window -> (tables, touch_ids, entries).
        # A commit invalidates exactly the windows whose cones its changed
        # values intersect; everything else re-serves the cached sweeps.
        self._preview_cache: Dict[int, Tuple] = {}
        self._win_input_sets = {
            w.index: frozenset(w.inputs) for w in self.windows
        }
        self._out_nodes_arr = np.array(circuit.output_nodes(), dtype=np.int64)
        self._out_rows_by_nid: Dict[int, List[int]] = {}
        for row, nid in enumerate(circuit.output_nodes()):
            self._out_rows_by_nid.setdefault(nid, []).append(row)

    # -- schedule compilation ------------------------------------------
    def _cone(self, index: int) -> ConeSchedule:
        cone = self._cones.get(index)
        if cone is None:
            cone = self._compile_cone(index)
            self._cones[index] = cone
            if self._stats is not None:
                self._stats.n_cones_compiled += 1
        return cone

    def _compile_cone(self, index: int) -> ConeSchedule:
        steps = self._graph.cone(("window", index))
        root_w = self._window_by_index[index]
        slot_of_map: Dict[int, int] = {}

        def slot_of(gid: int) -> int:
            s = slot_of_map.get(gid)
            if s is None:
                s = len(slot_of_map)
                slot_of_map[gid] = s
            return s

        recorded: List[int] = list(root_w.outputs)
        root_out_slots = np.array(
            [slot_of(o) for o in root_w.outputs], dtype=np.int64
        )
        instructions: List[ConeInstr] = []
        pending: List[int] = []
        step_windows: set = set()

        def flush() -> None:
            if pending:
                instructions.extend(_levelize(self.circuit, pending, slot_of))
                recorded.extend(pending)
                pending.clear()

        for kind, key in steps[1:]:
            if kind == "node":
                if self.circuit.node(key).op.is_gate:
                    pending.append(key)
                continue
            step_windows.add(key)
            w = self._window_by_index[key]
            if key in self._committed:
                flush()
                instructions.append(
                    WindowInstr(
                        key,
                        np.array(
                            [slot_of(n) for n in w.inputs], dtype=np.int64
                        ),
                        np.array(w.inputs, dtype=np.int64),
                        np.array(
                            [slot_of(o) for o in w.outputs], dtype=np.int64
                        ),
                        np.array(w.outputs, dtype=np.int64),
                    )
                )
                recorded.extend(w.outputs)
            else:
                # Not substituted: members evaluate as plain gates and may
                # levelize together with surrounding loose logic (the plan
                # order keeps the concatenation topological).
                pending.extend(w.members)
        flush()

        computed = set(recorded)
        boundary = [
            (s, gid) for gid, s in slot_of_map.items() if gid not in computed
        ]
        out_rec_idx: List[int] = []
        out_rows: List[Tuple[int, ...]] = []
        for i, gid in enumerate(recorded):
            rows = self._out_rows_by_nid.get(gid)
            if rows:
                out_rec_idx.append(i)
                out_rows.append(tuple(rows))
        return ConeSchedule(
            index,
            len(slot_of_map),
            np.array([s for s, _ in boundary], dtype=np.int64),
            np.array([g for _, g in boundary], dtype=np.int64),
            root_out_slots,
            np.array(root_w.outputs, dtype=np.int64),
            instructions,
            np.array([slot_of_map[g] for g in recorded], dtype=np.int64),
            np.array(recorded, dtype=np.int64),
            np.array(out_rec_idx, dtype=np.int64),
            out_rows,
            frozenset(step_windows),
            len(steps),
        )

    def _cone_touch(self, index: int) -> frozenset:
        """Every node id a sweep of ``index``'s cone can read or write.

        A cached preview of the window stays valid exactly as long as
        none of these cached values change and no in-cone window's table
        changes.  Independent of the committed set (a conservative
        superset of any specialization's read/write set), so it is
        computed once per window.
        """
        touch = self._touch_cache.get(index)
        if touch is None:
            ids = set(self._window_by_index[index].inputs)
            for kind, key in self._graph.cone(("window", index)):
                if kind == "node":
                    ids.add(key)
                    ids.update(self.circuit.node(key).fanins)
                else:
                    w = self._window_by_index[key]
                    ids.update(w.members)
                    ids.update(w.inputs)
                    ids.update(w.outputs)
            touch = frozenset(ids)
            self._touch_cache[index] = touch
        return touch  # contract-ok: cache-copy -- frozenset is immutable

    # -- execution ------------------------------------------------------
    def _rows_neq(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized valid-bit inequality over packed rows."""
        x = a ^ b
        x[:, -1] &= self._tail
        return x.any(axis=1)

    def _apply_window_table(
        self, instr: WindowInstr, table: np.ndarray, local: np.ndarray
    ) -> None:
        if not self._rows_neq(
            local[instr.in_slots], self._values[instr.in_ids]
        ).any():
            # Inputs clean and the table is the committed one the cache
            # already reflects: outputs are the cached rows.
            local[instr.out_slots] = self._values[instr.out_ids]
            return
        local[instr.out_slots] = gather_window_outputs(
            table, local[instr.in_slots], self.n
        )

    def _run_cone(
        self, cone: ConeSchedule, seed: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Sweep the cone under root-output ``seed`` rows.

        Returns ``None`` when the seed matches the committed state on
        every valid bit (nothing can change), else ``(local, neq)``: the
        local value matrix plus the bulk valid-bit dirty mask aligned
        with ``cone.recorded_slots``.
        """
        stats = self._stats
        if not self._rows_neq(seed, self._values[cone.root_out_ids]).any():
            if stats is not None:
                stats.n_sweep_units += 1
            return None
        if stats is not None:
            stats.n_sweep_units += cone.n_units
        local = np.empty((cone.n_slots, self._n_words), dtype=np.uint64)
        if cone.boundary_slots.size:
            local[cone.boundary_slots] = self._values[cone.boundary_ids]
        local[cone.root_out_slots] = seed
        for instr in cone.instructions:
            if isinstance(instr, WindowInstr):
                self._apply_window_table(
                    instr, self._committed[instr.index], local
                )
            else:
                local[instr.out] = execute_batch(instr, local, self.n)
        neq = self._rows_neq(
            local[cone.recorded_slots], self._values[cone.recorded_ids]
        )
        return local, neq

    # -- shared input index (commit-invalidated cache) ------------------
    def _window_input_index(self, index: int) -> np.ndarray:
        idx = self._idx_cache.get(index)
        if idx is None:
            idx = self._input_index(self._window_by_index[index], {})
            if self._sanitize:
                freeze(idx)
            self._idx_cache[index] = idx
        # Shared read-only gather index; every consumer only indexes
        # with it, and sanitize mode freezes the cached array.
        return idx  # contract-ok: cache-copy -- read-only gather index, frozen under sanitize

    # -- memoized previews ----------------------------------------------
    def _memo_lookup(
        self, index: int, tables: Sequence[np.ndarray]
    ) -> Optional[List[Tuple[np.ndarray, Tuple[int, ...]]]]:
        """Replay a cached preview if its cone state is unchanged.

        Nothing a sweep of the cone would read has changed since the
        cached run (commit invalidation is exact), so the dirty rows and
        their values are still correct; clean rows read the *current*
        cache, which by the same argument equals what a fresh sweep would
        leave there.
        """
        cached = self._preview_cache.get(index)
        if (
            cached is None
            or len(cached[0]) != len(tables)
            or not all(a is b for a, b in zip(cached[0], tables))
        ):
            return None
        if self._stats is not None:
            self._stats.n_preview_cache_hits += len(cached[2])
        results = []
        for rows, vals in cached[2]:
            out = self._values[self._out_nodes_arr]
            for row, v in zip(rows, vals):
                out[row] = v
            results.append((out, rows))
        return results

    def _memo_store(self, index, tables, results) -> None:
        # The tables tuple keeps the candidate arrays alive, so identity
        # (`is`) checks on later calls cannot collide with recycled ids.
        entries = [
            (rows, [out[row].copy() for row in rows]) for out, rows in results
        ]
        if self._sanitize:
            # Memoized preview rows are replayed into fresh output
            # matrices on every hit; freezing catches any aliasing writer.
            for _, vals in entries:
                for v in vals:
                    freeze(v)
        self._preview_cache[index] = (
            tuple(tables),
            self._cone_touch(index),
            entries,
        )

    def _stacked_seeds(
        self, index: int, checked: Sequence[np.ndarray]
    ) -> np.ndarray:
        """All candidate tables through the shared input index in one
        ``(n_cand, m, n)`` fancy-index plus a single ``pack_bits``.

        Seeds are cached per window: they only change when the window's
        input index is invalidated (an upstream commit) or the candidate
        tables do — a downstream-only invalidation reuses them.
        """
        idx = self._window_input_index(index)
        cached = self._seed_cache.get(index)
        if (
            cached is not None
            and cached[1] is idx
            and len(cached[0]) == len(checked)
            and all(a is b for a, b in zip(cached[0], checked))
        ):
            # Seeds are consumed read-only by cone sweeps and frozen
            # under sanitize; copying (n_cand, m, W) per scan would
            # defeat the cache.
            return cached[2]  # contract-ok: cache-copy -- read-only seed stack, frozen under sanitize
        seeds = stacked_seed_gather(checked, idx, self.n)
        if self._sanitize:
            assert_tail_clean(seeds, self.n, "stacked candidate seeds")
            freeze(seeds)
        self._seed_cache[index] = (tuple(checked), idx, seeds)
        return seeds

    # -- public API -----------------------------------------------------
    def preview_batch_delta(
        self, index: int, tables: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, Tuple[int, ...]]]:
        """Per candidate: (packed outputs, dirtied output rows).

        All candidates share one stacked seed gather; each then sweeps
        only its own compiled cone.  Outputs match :meth:`preview` on
        every valid bit; the dirty-row sets are exact (a row is reported
        iff its valid bits differ from the committed state), which is
        what the delta-QoR path relies on.
        """
        memo = self._memo_lookup(index, tables)
        if memo is not None:
            return memo
        w = self._window_by_index[index]
        checked = [self._check_table(w, t) for t in tables]
        if not checked:
            return []
        cone = self._cone(index)
        seeds = self._stacked_seeds(index, checked)
        results: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
        for c in range(len(checked)):
            swept = self._run_cone(cone, seeds[c])
            if self._stats is not None:
                self._stats.n_preview_sweeps += 1
            out = self._values[self._out_nodes_arr]
            rows: List[int] = []
            if swept is not None:
                local, neq = swept
                for j in np.nonzero(neq[cone.out_rec_idx])[0]:
                    i = int(cone.out_rec_idx[j])
                    vals = local[cone.recorded_slots[i]]
                    for row in cone.out_rows[j]:
                        out[row] = vals
                        rows.append(row)
            results.append((out, tuple(rows)))
        self._memo_store(index, tables, results)
        return results

    def preview_batch(
        self, index: int, tables: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        return [out for out, _ in self.preview_batch_delta(index, tables)]

    # -- stacked iteration scans ----------------------------------------
    def _iteration_schedule(self) -> IterationSchedule:
        sched = self._iter_sched
        if sched is not None:
            return sched
        circuit = self.circuit
        instructions: List[ConeInstr] = []
        pending: List[int] = []
        sources: List[int] = []
        ident = lambda nid: nid  # noqa: E731 - slots are node ids

        def flush() -> None:
            if pending:
                instructions.extend(_levelize(circuit, pending, ident))
                pending.clear()

        for kind, key in self._plan:
            if kind == "node":
                if circuit.node(key).op.is_gate:
                    pending.append(key)
                else:
                    sources.append(key)
                continue
            w = self._window_by_index[key]
            if key in self._committed:
                flush()
                instructions.append(
                    WindowInstr(
                        key,
                        np.array(w.inputs, dtype=np.int64),
                        np.array(w.inputs, dtype=np.int64),
                        np.array(w.outputs, dtype=np.int64),
                        np.array(w.outputs, dtype=np.int64),
                    )
                )
            else:
                pending.extend(w.members)
        flush()
        producer = np.full(circuit.n_nodes, -1, dtype=np.int64)
        for i, instr in enumerate(instructions):
            producer[instr.out_ids] = i
        sched = IterationSchedule(
            instructions,
            np.array(sources, dtype=np.int64),
            producer,
            len(self._plan),
        )
        self._iter_sched = sched
        return sched

    def preview_scan(
        self, requests: Sequence[Tuple[int, Sequence[np.ndarray]]]
    ) -> List[List[Tuple[np.ndarray, Tuple[int, ...]]]]:
        """One iteration's whole candidate scan, stacked into wide passes.

        Args:
            requests: ``(window index, candidate tables)`` pairs for
                *distinct* windows — the full-strategy explorer's
                per-iteration scan.

        Returns:
            Per request, per candidate: ``(packed outputs, dirtied output
            rows)`` exactly as :meth:`preview_batch_delta` would return
            them.

        Memoized windows replay their cached sweeps; the rest are
        evaluated in a single execution of the whole-plan schedule with
        every candidate stacked along the word axis (its seed scattered
        into its own block-column right after the producing instruction),
        so the per-unit dispatch cost is paid once per pass instead of
        once per candidate.  At most :data:`MAX_SCAN_BLOCKS` candidate
        blocks stack into one pass; larger scans split into several.

        Determinism: results are identical to per-window
        :meth:`preview_batch_delta` on every valid bit, and the reported
        dirty-row sets are exact (a row appears iff its valid bits differ
        from the committed state).  Invalidation: the memo a scan
        populates is dropped by :meth:`commit` exactly for the windows
        whose cone state the commit touched — see the class docstring.
        """
        results: List = [None] * len(requests)
        todo: List[Tuple[int, int, List[np.ndarray], Sequence]] = []
        for pos, (index, tables) in enumerate(requests):
            memo = self._memo_lookup(index, tables)
            if memo is not None:
                results[pos] = memo
                continue
            w = self._window_by_index[index]
            checked = [self._check_table(w, t) for t in tables]
            if not checked:
                results[pos] = []
                continue
            todo.append((pos, index, checked, tables))
        start = 0
        while start < len(todo):
            stop, blocks = start, 0
            while stop < len(todo):
                n_cand = len(todo[stop][2])
                if blocks and blocks + n_cand > MAX_SCAN_BLOCKS:
                    break
                blocks += n_cand
                stop += 1
            self._run_scan_chunk(todo[start:stop], blocks, results)
            start = stop
        return results

    def _run_scan_chunk(self, chunk, n_blocks: int, results: List) -> None:
        if not n_blocks:
            for pos, _, _, _ in chunk:
                results[pos] = []
            return
        values = self._values
        w_words = self._n_words
        sched = self._iteration_schedule()
        if self._stats is not None:
            self._stats.n_preview_sweeps += n_blocks
            self._stats.n_sweep_units += sched.n_units
        # Seeds per request; scatter[instruction] lists (gid, block, seed
        # row) overrides applied right after the producing instruction.
        scatter: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
        spans: List[Tuple[int, int, Sequence, int, int]] = []
        block = 0
        for pos, index, checked, tables in chunk:
            w = self._window_by_index[index]
            seeds = self._stacked_seeds(index, checked)
            for out_pos, gid in enumerate(w.outputs):
                at = int(sched.producer_of[gid])
                entry = scatter.setdefault(at, [])
                for c in range(len(checked)):
                    entry.append((gid, block + c, seeds[c, out_pos]))
            spans.append((pos, index, tables, block, len(checked)))
            block += len(checked)
        stacked = np.empty(
            (self.circuit.n_nodes, n_blocks * w_words), dtype=np.uint64
        )
        if sched.source_ids.size:
            stacked[sched.source_ids] = np.broadcast_to(
                values[sched.source_ids][:, None, :],
                (sched.source_ids.size, n_blocks, w_words),
            ).reshape(sched.source_ids.size, n_blocks * w_words)
        word_span = np.arange(w_words, dtype=np.int64)
        for instr_pos, instr in enumerate(sched.instructions):
            if isinstance(instr, WindowInstr):
                # Gather only the blocks whose candidate dirtied this
                # window's inputs — every other block's outputs are the
                # committed rows (one broadcast fill).
                x = stacked[instr.in_slots].reshape(
                    -1, n_blocks, w_words
                ) ^ values[instr.in_ids][:, None, :]
                x[..., -1] &= self._tail
                dirty_blocks = np.flatnonzero(x.any(axis=(0, 2)))
                m = len(instr.out_slots)
                stacked[instr.out_slots] = np.broadcast_to(
                    values[instr.out_ids][:, None, :],
                    (m, n_blocks, w_words),
                ).reshape(m, n_blocks * w_words)
                if dirty_blocks.size:
                    table = self._committed[instr.index]
                    cols = (
                        dirty_blocks[:, None] * w_words + word_span
                    ).ravel()
                    sub = stacked[np.ix_(instr.in_slots, cols)]
                    n_pat = dirty_blocks.size * w_words * WORD_BITS
                    idx = np.zeros(n_pat, dtype=np.uint32)
                    for bit in range(len(instr.in_slots)):
                        idx |= unpack_bits(sub[bit], n_pat).astype(
                            np.uint32
                        ) << np.uint32(bit)
                    stacked[np.ix_(instr.out_slots, cols)] = pack_bits(
                        np.ascontiguousarray(table[idx, :].T).astype(np.uint8)
                    )
            else:
                stacked[instr.out] = execute_batch(instr, stacked, None)
            overrides = scatter.get(instr_pos)
            if overrides:
                for gid, blk, seed_row in overrides:
                    stacked[gid, blk * w_words : (blk + 1) * w_words] = (
                        seed_row
                    )
        # One block-masked compare yields every candidate's dirty rows.
        out_stack = stacked[self._out_nodes_arr]
        blocked = out_stack.reshape(
            len(self._out_nodes_arr), n_blocks, w_words
        ) ^ values[self._out_nodes_arr][:, None, :]
        blocked[..., -1] &= self._tail
        neq = blocked.any(axis=2)
        for pos, index, tables, b0, n_cand in spans:
            per_window: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
            for c in range(n_cand):
                rows = tuple(int(r) for r in np.nonzero(neq[:, b0 + c])[0])
                out = np.ascontiguousarray(
                    out_stack[:, (b0 + c) * w_words : (b0 + c + 1) * w_words]
                )
                per_window.append((out, rows))
            results[pos] = per_window
            self._memo_store(index, tables, per_window)

    def commit(self, index: int, table: np.ndarray) -> None:
        w = self._window_by_index[index]
        table = self._check_table(w, table)
        idx = self._window_input_index(index)
        seed = pack_bits(np.ascontiguousarray(table[idx, :].T).astype(np.uint8))
        mask_tail_words(seed, self.n)
        if self._sanitize:
            assert_tail_clean(seed, self.n, "commit seed")
        cone = self._cone(index)
        swept = self._run_cone(cone, seed)
        first_commit = index not in self._committed
        self._committed[index] = table
        changed = set()
        if swept is not None:
            local, neq = swept
            for i in np.nonzero(neq)[0]:
                gid = int(cone.recorded_ids[i])
                self._values[gid] = local[cone.recorded_slots[i]]
                changed.add(gid)
            # Any cached input index built from a changed node is stale.
            for widx in list(self._idx_cache):
                if self._win_input_sets[widx] & changed:
                    del self._idx_cache[widx]
        # A memoized preview is stale if its cone touches a changed value
        # — or this window at all: even with an identical-on-samples
        # overlay, the new table is a different *function*, and a cone
        # re-evaluates it under candidate-dirtied inputs.
        invalid = changed | set(w.members) | set(w.outputs)
        for widx in list(self._preview_cache):
            if self._preview_cache[widx][1] & invalid:
                del self._preview_cache[widx]
        if first_commit:
            # Schedules compiled with this window inlined as plain gates
            # are now wrong (it evaluates through a table); recompile
            # lazily.  The committed set only grows, so each cone
            # recompiles at most once per window it contains.
            self._iter_sched = None
            for widx in list(self._cones):
                if index in self._cones[widx].step_windows:
                    del self._cones[widx]


def make_evaluator(
    circuit: Circuit,
    windows,
    input_words: np.ndarray,
    n_samples: int,
    engine: str = "compiled",
    stats: Optional[RuntimeStats] = None,
    chunk_words: Optional[int] = None,
    shard_jobs: int = 1,
    cache_chunks: int = 0,
    sanitize: Optional[bool] = None,
    policy=None,
    faults=None,
    executor_factory=None,
    cancel=None,
) -> IncrementalEvaluator:
    """Construct the evaluation engine selected by ``engine``.

    ``chunk_words`` (compiled engine only) selects streaming execution:
    the pattern axis is processed in word-aligned chunks of at most that
    many packed words, bounding sample-matrix memory by the chunk budget
    instead of the total pattern count.  ``shard_jobs`` fans the
    streaming chunk loop across worker processes (``1`` = in-process)
    and ``cache_chunks`` bounds the cone-epoch base-slice cache — both
    meaningful only with ``chunk_words`` set.  Trajectory floats are
    bit-identical to resident execution for any chunk size, shard count
    and cache capacity (DESIGN.md "Streaming execution" / "Parallel
    streaming").

    ``sanitize`` enables the runtime contract sanitizer — frozen
    cache-held arrays and tail-bit assertions at engine boundaries
    (``None`` defers to the ``REPRO_SANITIZE`` environment variable; see
    DESIGN.md "Static contracts").

    ``policy`` (a :class:`repro.runtime.parallel.RetryPolicy`) and
    ``faults`` (a :class:`repro.runtime.faults.FaultPlan`) configure the
    streaming shard executor's supervision — retry/timeout/rebuild
    bounds and deterministic chaos injection (DESIGN.md "Fault
    tolerance").  Both are ignored by the resident engines, which have
    no worker pool.

    ``executor_factory`` substitutes for :func:`repro.runtime.executor.
    make_shard_executor` (the exploration service leases shared pools
    through it) and ``cancel`` is a cooperative
    :class:`~repro.runtime.cancel.CancelToken` checked at the streaming
    engine's chunk/dispatch boundaries.  Both are streaming-only — the
    resident engines' sweeps are single vectorized passes with no safe
    interior interruption point.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if chunk_words is not None:
        if engine != "compiled":
            raise SimulationError(
                "chunked (streaming) execution requires the compiled engine"
            )
        from .streaming import StreamingEvaluator  # lazy: builds on this module

        return StreamingEvaluator(
            circuit, windows, input_words, n_samples,
            chunk_words=chunk_words, stats=stats,
            shard_jobs=shard_jobs, cache_chunks=cache_chunks,
            sanitize=sanitize, policy=policy, faults=faults,
            executor_factory=executor_factory, cancel=cancel,
        )
    cls = CompiledEvaluator if engine == "compiled" else IncrementalEvaluator
    return cls(
        circuit, windows, input_words, n_samples, stats=stats,
        sanitize=sanitize,
    )
