"""The ``Searcher`` protocol: stochastic move selection over the engine.

A searcher owns *which* (window, degree) decrement to try next and
*whether* to keep it; the exploration loop owns everything else
(previewing through the memoized ``preview_scan`` / ``evaluate_delta``
machinery, committing, trajectory recording, checkpoints).  The driver
cycle in :func:`repro.core.explorer._run_exploration` is::

    idx = searcher.propose(fs, active, current_qor)   # may draw RNG
    err, variant = preview_error(idx, current_qor)    # engine, no RNG
    if searcher.observe(idx, err, current_qor, fs):   # may draw RNG
        commit the move

Determinism and replay contract (DESIGN.md "Search strategies"):

* Every random draw comes from the single seeded
  ``np.random.default_rng`` threaded from ``ExplorerConfig.seed``.
  Searchers never construct generators — the contract linter's
  ``unseeded-rng`` rule rejects *any* RNG construction in this package.
* A proposal is *pending* from the draw until ``observe`` consumes it.
  ``propose`` returns a pending proposal again without touching the RNG,
  and the pending pair rides in ``state_dict()``; a checkpoint flushed
  while the preview was in flight (cancellation surfaces inside
  streaming scans) therefore resumes by re-evaluating the same proposal,
  keeping resumed trajectories byte-identical to uninterrupted runs.
* ``state_dict()`` must contain only plain picklable values (ints,
  floats, lists, dicts) — it is embedded in
  :class:`repro.runtime.ExploreCheckpoint`.  The RNG stream itself is
  checkpointed separately by the loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import ExplorationError


class Searcher(ABC):
    """Base class for the strategy portfolio (see module docstring)."""

    #: Strategy name, matching ``ExplorerConfig.strategy``.
    strategy: str = ""

    def __init__(
        self,
        config,
        profiles: Sequence,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        # Profiles arrive in decomposition order; every candidate list is
        # derived from this order so proposal draws are deterministic.
        self.profiles = list(profiles)
        self.windows: List[int] = [p.window.index for p in self.profiles]
        self.max_degree: Dict[int, int] = {
            p.window.index: p.max_degree for p in self.profiles
        }
        self._move = 0
        self._pending: Optional[Tuple[int, int]] = None  # (move_id, window)
        self.last_move_id = -1

    # -- driver protocol -------------------------------------------------

    def propose(
        self,
        fs: Dict[int, int],
        active: Callable[[int], bool],
        current_qor: float,
    ) -> Optional[int]:
        """Window whose next-degree decrement to preview, or None to stop.

        A pending proposal (one drawn but not yet ``observe``-d) is
        returned as-is without consuming randomness — this is what makes
        mid-preview checkpoints replay exactly.
        """
        if self._pending is not None:
            return self._pending[1]
        candidates = [w for w in self.windows if active(w)]
        if not candidates:
            return None
        idx = self._propose(candidates, fs, current_qor)
        if idx is None:
            return None
        self._pending = (self._move, idx)
        self._move += 1
        return idx

    def observe(
        self,
        idx: int,
        err: float,
        current_qor: float,
        fs: Dict[int, int],
    ) -> bool:
        """Record the previewed QoR for the pending move; True = commit."""
        if self._pending is None or self._pending[1] != idx:
            raise ExplorationError(
                f"{self.strategy}: observe({idx}) without a matching proposal"
            )
        move_id, _ = self._pending
        self._pending = None
        self.last_move_id = move_id
        accepted = self._decide(idx, err, current_qor, fs)
        self._observe(idx, err, current_qor, fs, accepted)
        return accepted

    @property
    def move_count(self) -> int:
        """Proposals drawn so far (the temperature/recency clock)."""
        return self._move

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Picklable searcher state for :class:`ExploreCheckpoint`."""
        state: Dict[str, Any] = {
            "strategy": self.strategy,
            "move": self._move,
            "pending": (
                None if self._pending is None else list(self._pending)
            ),
            "last_move_id": self.last_move_id,
        }
        state.update(self._state())
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if state.get("strategy") != self.strategy:
            raise ExplorationError(
                f"checkpoint searcher state is for strategy "
                f"{state.get('strategy')!r}, not {self.strategy!r}"
            )
        self._move = int(state["move"])
        pending = state["pending"]
        self._pending = (
            None if pending is None else (int(pending[0]), int(pending[1]))
        )
        self.last_move_id = int(state["last_move_id"])
        self._load(state)

    # -- strategy hooks --------------------------------------------------

    @abstractmethod
    def _propose(
        self,
        candidates: List[int],
        fs: Dict[int, int],
        current_qor: float,
    ) -> Optional[int]:
        """Pick a window from the (non-empty, ordered) candidate list."""

    @abstractmethod
    def _decide(
        self, idx: int, err: float, current_qor: float, fs: Dict[int, int]
    ) -> bool:
        """Accept (commit) or reject the previewed move."""

    def _observe(
        self,
        idx: int,
        err: float,
        current_qor: float,
        fs: Dict[int, int],
        accepted: bool,
    ) -> None:
        """Model update after a decision (optional)."""

    def _state(self) -> Dict[str, Any]:
        return {}

    def _load(self, state: Dict[str, Any]) -> None:
        pass
