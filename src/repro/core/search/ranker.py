"""Learned move-ranking: an online logistic scorer over window features.

Each window is scored by a tiny logistic model ``p = sigma(w . phi)``
over hand-rolled features — cone size (members, normalized over the
decomposition), the window's last observed delta-QoR (normalized by the
largest magnitude seen), and commit recency (proposals since the window
last committed, normalized by the proposal clock).  Proposals are
epsilon-greedy: with probability ``ranker_epsilon`` a uniform draw,
otherwise the argmax score (ties resolve to the lowest window index).

The model trains online after every preview: the label is 1 when the
move's delta-QoR beat the running mean of observed deltas, and the
weights take one SGD step ``w += ranker_lr * (y - p) * phi``.  Every
previewed move is committed — the ranking only chooses *what to spend
previews on*, which is the lever when evaluation budget is the scarce
resource.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from .base import Searcher

#: bias, cone size, last delta-QoR, commit recency
N_FEATURES = 4


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, x))))


class RankerSearcher(Searcher):
    strategy = "ranker"

    def __init__(self, config, profiles, rng) -> None:
        super().__init__(config, profiles, rng)
        max_members = max(
            (p.window.n_members for p in self.profiles), default=1
        )
        self._cone = {
            p.window.index: p.window.n_members / max(max_members, 1)
            for p in self.profiles
        }
        self._weights = [0.0] * N_FEATURES
        self._last_delta: Dict[int, float] = {}
        self._last_commit: Dict[int, int] = {}
        self._mean_delta = 0.0
        self._n_obs = 0
        self._scale = 0.0

    def _features(self, idx: int) -> List[float]:
        scale = self._scale if self._scale > 0 else 1.0
        delta = self._last_delta.get(idx, 0.0) / scale
        last = self._last_commit.get(idx)
        clock = max(self._move, 1)
        recency = 1.0 if last is None else (self._move - last) / clock
        return [1.0, self._cone[idx], delta, recency]

    def _score(self, idx: int) -> float:
        phi = self._features(idx)
        return sum(w * f for w, f in zip(self._weights, phi))

    # -- strategy hooks --------------------------------------------------

    def _propose(
        self,
        candidates: List[int],
        fs: Dict[int, int],
        current_qor: float,
    ) -> Optional[int]:
        if float(self.rng.random()) < self.config.ranker_epsilon:
            return candidates[int(self.rng.integers(len(candidates)))]
        best = candidates[0]
        best_score = self._score(best)
        for idx in candidates[1:]:
            score = self._score(idx)
            if score > best_score:
                best, best_score = idx, score
        return best

    def _decide(
        self, idx: int, err: float, current_qor: float, fs: Dict[int, int]
    ) -> bool:
        return True

    def _observe(
        self,
        idx: int,
        err: float,
        current_qor: float,
        fs: Dict[int, int],
        accepted: bool,
    ) -> None:
        delta = float(err - current_qor)
        phi = self._features(idx)
        label = 1.0 if (self._n_obs == 0 or delta <= self._mean_delta) else 0.0
        p = _sigmoid(sum(w * f for w, f in zip(self._weights, phi)))
        lr = self.config.ranker_lr
        self._weights = [
            w + lr * (label - p) * f for w, f in zip(self._weights, phi)
        ]
        self._mean_delta = (
            (self._mean_delta * self._n_obs + delta) / (self._n_obs + 1)
        )
        self._n_obs += 1
        self._scale = max(self._scale, abs(delta))
        self._last_delta[idx] = delta
        self._last_commit[idx] = self.last_move_id

    def _state(self) -> Dict[str, Any]:
        return {
            "weights": list(self._weights),
            "last_delta": dict(self._last_delta),
            "last_commit": dict(self._last_commit),
            "mean_delta": self._mean_delta,
            "n_obs": self._n_obs,
            "scale": self._scale,
        }

    def _load(self, state) -> None:
        self._weights = [float(w) for w in state["weights"]]
        self._last_delta = {
            int(k): float(v) for k, v in state["last_delta"].items()
        }
        self._last_commit = {
            int(k): int(v) for k, v in state["last_commit"].items()
        }
        self._mean_delta = float(state["mean_delta"])
        self._n_obs = int(state["n_obs"])
        self._scale = float(state["scale"])
