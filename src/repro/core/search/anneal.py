"""Simulated annealing over (window, degree) decrement moves.

Proposals are uniform over the active windows; acceptance is Metropolis
on the delta-QoR of the previewed move with a deterministic geometric
temperature schedule ``T_k = anneal_t0 * anneal_alpha ** k`` clocked by
the proposal counter ``k`` (rejected moves cool the schedule too, so a
fixed seed always sees the same temperatures).  The search stops after
``anneal_stall`` consecutive rejections — as the schedule cools,
error-increasing moves stop being accepted and the stall counter runs
out, bounding the walk without an explicit iteration cap.

Unlike the greedy strategies, annealing pays one preview per move
instead of one scan over every window per iteration, so at an equal
evaluation budget it takes many more (noisier) steps — the portfolio
bet recorded in ``BENCH_search.json``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .base import Searcher


class AnnealSearcher(Searcher):
    strategy = "anneal"

    def __init__(self, config, profiles, rng) -> None:
        super().__init__(config, profiles, rng)
        self._stall = 0

    def temperature(self, move_id: int) -> float:
        """Deterministic schedule value for proposal ``move_id``."""
        return float(
            self.config.anneal_t0 * self.config.anneal_alpha ** move_id
        )

    def _propose(
        self,
        candidates: List[int],
        fs: Dict[int, int],
        current_qor: float,
    ) -> Optional[int]:
        if self._stall >= self.config.anneal_stall:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    def _decide(
        self, idx: int, err: float, current_qor: float, fs: Dict[int, int]
    ) -> bool:
        delta = err - current_qor
        if delta <= 0:
            # Improving/neutral moves are accepted without a draw; the
            # branch is a pure function of the (deterministic) preview
            # floats, so replay still sees an identical RNG stream.
            return True
        t = self.temperature(self.last_move_id)
        if t <= 0.0:
            return False
        threshold = math.exp(-delta / t)
        return float(self.rng.random()) < threshold

    def _observe(
        self,
        idx: int,
        err: float,
        current_qor: float,
        fs: Dict[int, int],
        accepted: bool,
    ) -> None:
        self._stall = 0 if accepted else self._stall + 1

    def _state(self) -> Dict[str, int]:
        return {"stall": self._stall}

    def _load(self, state) -> None:
        self._stall = int(state["stall"])
