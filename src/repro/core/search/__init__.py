"""Search-strategy portfolio over the exploration engine.

``ExplorerConfig.strategy`` selects either one of the paper-faithful
greedy sweeps (``full`` / ``lazy``, implemented directly in
:mod:`repro.core.explorer`) or one of the stochastic searchers here —
all of which share the memoized ``preview_scan`` / ``evaluate_delta``
machinery and the byte-identical replay discipline (seeded RNG,
checkpointed searcher state; see :mod:`repro.core.search.base`).
"""

from __future__ import annotations

from ...errors import ExplorationError
from .anneal import AnnealSearcher
from .base import Searcher
from .ranker import RankerSearcher
from .surrogate import SurrogateSearcher

#: Stochastic strategies provided by this package, in registry order.
SEARCHER_STRATEGIES = ("anneal", "bo", "ranker")

_REGISTRY = {
    AnnealSearcher.strategy: AnnealSearcher,
    SurrogateSearcher.strategy: SurrogateSearcher,
    RankerSearcher.strategy: RankerSearcher,
}


def make_searcher(config, profiles, rng) -> Searcher:
    """Instantiate the searcher named by ``config.strategy``.

    ``rng`` must be the run's single seeded generator (threaded from
    ``ExplorerConfig.seed`` by :func:`repro.core.explorer.explore`) —
    searchers own no randomness of their own.
    """
    try:
        cls = _REGISTRY[config.strategy]
    except KeyError:
        raise ExplorationError(
            f"no searcher for strategy {config.strategy!r}; "
            f"expected one of {SEARCHER_STRATEGIES}"
        ) from None
    return cls(config, profiles, rng)


__all__ = [
    "AnnealSearcher",
    "RankerSearcher",
    "SEARCHER_STRATEGIES",
    "Searcher",
    "SurrogateSearcher",
    "make_searcher",
]
