"""Bayesian-optimisation surrogate over the degree vector (numpy only).

The search state is the normalized degree vector ``x_i = f_i / m_i``;
each observation is the delta-QoR of one committed decrement at its
post-move vector.  An exact Gaussian-process regressor (RBF kernel,
Cholesky solve — no dependencies beyond numpy) models delta-QoR over
that space, and each proposal scores every candidate's post-move vector
with expected improvement against the best (lowest) observed delta,
choosing the argmax (ties resolve to the lowest window index via the
ordered candidate list).  The first ``bo_init`` proposals are uniform
draws to seed the model.  Every previewed move is committed: the
acquisition already encodes the preference, and monotone decrements
keep the walk finite.

Determinism: proposals after warm-up consume no randomness at all — the
acquisition is a pure function of the observation history, which the
checkpoint carries in ``state_dict()``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ...errors import ExplorationError
from .base import Searcher

#: Observation window for the GP fit: bounds the O(n^3) Cholesky as the
#: walk gets long.  Oldest observations fall out first (deterministic).
MAX_OBSERVATIONS = 128

#: Base observation-noise jitter on the kernel diagonal.
NOISE = 1e-8

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return np.array([0.5 * (1.0 + math.erf(v / _SQRT2)) for v in z])


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / _SQRT2PI


class SurrogateSearcher(Searcher):
    strategy = "bo"

    def __init__(self, config, profiles, rng) -> None:
        super().__init__(config, profiles, rng)
        self._X: List[List[float]] = []
        self._y: List[float] = []

    # -- degree-vector embedding -----------------------------------------

    def _vector(
        self, fs: Dict[int, int], move: Optional[int] = None
    ) -> List[float]:
        """Normalized degree vector, optionally after decrementing ``move``."""
        vec = []
        for w in self.windows:
            f = fs[w] - (1 if w == move else 0)
            vec.append(f / self.max_degree[w])
        return vec

    # -- GP posterior ----------------------------------------------------

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ls = self.config.bo_lengthscale
        sq = (
            np.sum(a * a, axis=1)[:, None]
            + np.sum(b * b, axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.exp(-np.maximum(sq, 0.0) / (2.0 * ls * ls))

    def _posterior(self, queries: List[List[float]]):
        X = np.asarray(self._X[-MAX_OBSERVATIONS:], dtype=np.float64)
        y = np.asarray(self._y[-MAX_OBSERVATIONS:], dtype=np.float64)
        mean = float(y.mean())
        K = self._kernel(X, X)
        # Deterministic jitter escalation: monotone decrements make the
        # observed vectors distinct, but a short lengthscale can still
        # push the Gram matrix to the edge of positive definiteness.
        jitter = NOISE
        L = None
        for _ in range(6):
            try:
                L = np.linalg.cholesky(K + jitter * np.eye(len(X)))
                break
            except np.linalg.LinAlgError:
                jitter *= 100.0
        if L is None:
            raise ExplorationError(
                "bo surrogate: kernel matrix is not positive definite"
            )
        alpha = np.linalg.solve(L.T, np.linalg.solve(L, y - mean))
        Q = np.asarray(queries, dtype=np.float64)
        Ks = self._kernel(Q, X)
        mu = mean + Ks @ alpha
        v = np.linalg.solve(L, Ks.T)
        var = 1.0 - np.sum(v * v, axis=0)
        sd = np.sqrt(np.maximum(var, 1e-12))
        return mu, sd

    # -- strategy hooks --------------------------------------------------

    def _propose(
        self,
        candidates: List[int],
        fs: Dict[int, int],
        current_qor: float,
    ) -> Optional[int]:
        if len(self._y) < self.config.bo_init:
            return candidates[int(self.rng.integers(len(candidates)))]
        queries = [self._vector(fs, move=w) for w in candidates]
        mu, sd = self._posterior(queries)
        best = min(self._y[-MAX_OBSERVATIONS:])
        z = (best - mu) / sd
        ei = (best - mu) * _normal_cdf(z) + sd * _normal_pdf(z)
        return candidates[int(np.argmax(ei))]

    def _decide(
        self, idx: int, err: float, current_qor: float, fs: Dict[int, int]
    ) -> bool:
        return True

    def _observe(
        self,
        idx: int,
        err: float,
        current_qor: float,
        fs: Dict[int, int],
        accepted: bool,
    ) -> None:
        self._X.append(self._vector(fs, move=idx))
        self._y.append(float(err - current_qor))

    def _state(self) -> Dict[str, Any]:
        return {
            "X": [list(x) for x in self._X],
            "y": list(self._y),
        }

    def _load(self, state) -> None:
        self._X = [[float(v) for v in x] for x in state["X"]]
        self._y = [float(v) for v in state["y"]]
