"""The ASSO Boolean matrix factorization algorithm, with weighted QoR.

Re-implemented from Miettinen & Vreeken's description (the paper's [10, 11])
and extended exactly the way BLASYS §3.2 proposes: the cover function that
scores candidate basis vectors takes a per-column weight vector, so
mismatches on significant output bits are penalized more.

Outline for factorization degree ``f`` (semiring algebra):

1. Build the *association matrix*: candidate basis row ``i`` has a 1 in
   column ``j`` iff ``conf(i -> j) >= tau``, where confidence is the
   fraction of matrix rows with a 1 in column ``i`` that also have a 1 in
   column ``j``.
2. Greedily pick ``f`` (basis row, usage column) pairs.  For a candidate
   basis row ``c``, the optimal usage column sets ``b_r = 1`` exactly for
   the matrix rows where adding ``c`` has positive cover gain; the
   candidate with the best total gain wins.

The greedy selection is **prefix-stable in f**: each level's choice depends
only on the cover state left by the previous levels, never on the target
degree, so the degree-``f`` result is the ``f``-prefix of the degree-
``(m-1)`` run at the same ``tau``.  :func:`_asso_descent` exploits that by
running the greedy descent *once* per ``tau`` and snapshotting every level;
:func:`asso` and :func:`asso_ladder` are both thin views of the same
descent, which is what makes ladder-profiled results byte-identical to the
per-degree path (see DESIGN.md "BMF kernel").

The threshold ``tau`` trades precision of candidates for recall; BLASYS
sweeps it per subcircuit (§4: "for each subcircuit we perform a sweep on
the factorization threshold"), which :func:`asso_sweep` (per degree) and
:func:`asso_ladder` (all degrees at once) implement.

Gain scoring runs on the packed row-mask kernel
(:mod:`repro.core.bmf.packed`) whenever the matrix has at most
``MAX_MASK_BITS`` columns — one subset-sum table lookup per (row,
candidate) instead of a float matmul — and falls back to the dense matmul
above that width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ...circuit.simulate import pack_bits
from ...errors import FactorizationError
from ...kernels import active_backend
from .boolean import check_weights, weighted_error
from .packed import (
    MAX_MASK_BITS,
    PackedColumns,
    row_masks,
    weight_table,
    weighted_counts_error,
)

#: Default threshold sweep, matching the resolution used in the ASSO papers.
DEFAULT_TAUS: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _confidence(M: np.ndarray) -> np.ndarray:
    """The (m × m) column-confidence matrix ``conf[i, j] = conf(i -> j)``.

    Depends only on ``M`` — a threshold sweep computes it once and
    re-thresholds it per ``tau``.
    """
    counts = np.asarray(M, dtype=bool).astype(np.int64)
    co = counts.T @ counts  # co[i, j] = |rows with 1 in both i and j|
    diag = np.diag(co).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        conf = co / diag[:, None]
    return np.nan_to_num(conf, nan=0.0)


def association_candidates(
    M: np.ndarray,
    tau: float,
    dedup: bool = False,
    conf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Candidate basis rows: thresholded column-confidence matrix.

    With ``dedup=False`` (the historical contract) the result is the full
    ``m × m`` association matrix.  With ``dedup=True`` all-zero rows are
    dropped and duplicate rows are collapsed to their **first occurrence,
    in original row order** — duplicates score identically at every greedy
    level, and the first-max ``argmax`` tie rule would always pick the
    first occurrence anyway, so deduplication is decision-identical while
    shrinking the per-level scoring work.

    ``conf`` optionally supplies a precomputed :func:`_confidence` matrix
    (the tau sweep shares one across thresholds).
    """
    if conf is None:
        conf = _confidence(M)
    cand = conf >= tau
    if not dedup:
        return cand
    cand = cand[cand.any(axis=1)]
    if cand.shape[0] > 1:
        _, first = np.unique(cand, axis=0, return_index=True)
        cand = cand[np.sort(first)]
    return cand


def _candidate_gains(
    M: np.ndarray,
    covered: np.ndarray,
    candidates: np.ndarray,
    w: np.ndarray,
    bonus: float,
    penalty: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense fallback scoring for matrices wider than ``MAX_MASK_BITS``.

    For candidate ``c`` and matrix row ``r``, adding ``c`` to row ``r``'s OR
    newly covers the positions ``c & ~covered[r]``; each such position gains
    ``bonus * w_j`` if ``M[r, j]`` is 1 and loses ``penalty * w_j``
    otherwise.

    Returns:
        (total_gain per candidate, usage matrix of shape (n, n_cand)).
    """
    good = (M & ~covered).astype(float)  # newly coverable 1s
    bad = (~M & ~covered).astype(float)  # newly covered 0s
    cand_w = candidates.astype(float) * w[None, :]  # (n_cand, m)
    gain = bonus * (good @ cand_w.T) - penalty * (bad @ cand_w.T)  # (n, n_cand)
    usage = gain > 0
    totals = np.where(usage, gain, 0.0).sum(axis=0)
    return totals, usage


@dataclass(frozen=True)
class AssoResult:
    """Output of a single ASSO run."""

    B: np.ndarray
    C: np.ndarray
    error: float
    tau: float


@dataclass
class _Descent:
    """One greedy descent to ``f_max``, with per-level error snapshots.

    ``errors[f]`` is the weighted error of the degree-``f`` prefix
    (``errors[0]`` = error of the empty cover); levels past an early break
    repeat the break-level error, matching a per-degree run that breaks at
    the same level.
    """

    B: np.ndarray
    C: np.ndarray
    errors: np.ndarray

    def snapshot(self, f: int, tau: float) -> AssoResult:
        """The degree-``f`` prefix as a standalone :class:`AssoResult`."""
        return AssoResult(
            self.B[:, :f].copy(), self.C[:f].copy(), float(self.errors[f]), tau
        )


@dataclass
class _DescentPrep:
    """Tau-invariant descent state, built once per threshold sweep.

    ``wtab``/``M_masks``/``Pm`` are None above ``MAX_MASK_BITS`` columns
    (the dense-scoring fallback).  Everything here is read-only during a
    descent; per-tau mutable cover state is created inside
    :func:`_asso_descent`.
    """

    conf: np.ndarray
    wtab: Optional[np.ndarray]
    M_masks: Optional[np.ndarray]
    Pm: Optional[PackedColumns]


def _prepare_descent(M: np.ndarray, w: np.ndarray) -> _DescentPrep:
    if M.shape[1] <= MAX_MASK_BITS:
        return _DescentPrep(
            _confidence(M), weight_table(w), row_masks(M),
            PackedColumns.from_dense(M),
        )
    return _DescentPrep(_confidence(M), None, None, None)


def _asso_descent(
    M: np.ndarray,
    f_max: int,
    tau: float,
    w: np.ndarray,
    bonus: float,
    penalty: float,
    prep: Optional[_DescentPrep] = None,
) -> _Descent:
    """Run the greedy cover descent once, recording every level.

    The packed path keeps three synchronized cover views: per-row bitmasks
    (for gain scoring), packed cover columns (for the per-level error
    popcounts), and the ``B``/``C`` snapshots themselves.
    """
    n, m = M.shape
    if prep is None:
        prep = _prepare_descent(M, w)
    B = np.zeros((n, f_max), dtype=bool)
    C = np.zeros((f_max, m), dtype=bool)
    errors = np.empty(f_max + 1, dtype=np.float64)
    errors[0] = weighted_counts_error(M.sum(axis=0, dtype=np.int64), w)

    candidates = association_candidates(M, tau, dedup=True, conf=prep.conf)
    if candidates.size == 0:
        errors[1:] = errors[0]
        return _Descent(B, C, errors)

    packed = prep.wtab is not None
    if packed:
        # The gain scorer owns the per-row cover masks (they feed only
        # the gain computation; per-level errors come from Pcov).  The
        # numpy backend recomputes every gain each level — the historical
        # oracle — while the jit backend updates only the rows a commit
        # touched; both are byte-identical per level (DESIGN.md "Kernel
        # backends").
        kernels = active_backend()
        Pm = prep.Pm
        cand_masks = row_masks(candidates)
        scorer = kernels.make_gain_scorer(
            prep.M_masks, cand_masks, prep.wtab, bonus, penalty, m
        )
        Pcov = PackedColumns.zeros(m, n)
    else:
        covered = np.zeros_like(M)

    for level in range(f_max):
        if packed:
            totals, usage = scorer.score()
        else:
            totals, usage = _candidate_gains(
                M, covered, candidates, w, bonus, penalty
            )
        best = int(np.argmax(totals))
        if totals[best] <= 0:
            errors[level + 1 :] = errors[level]
            break  # no candidate helps; remaining factors stay zero
        C[level] = candidates[best]
        use = usage[:, best]
        B[:, level] = use
        if packed:
            scorer.apply(use, best)
            use_words = pack_bits(use.astype(np.uint8))
            Pcov.words[C[level]] |= use_words[None, :]
            counts = kernels.popcount_xor_rows(Pm.words, Pcov.words)
            errors[level + 1] = weighted_counts_error(counts, w)
        else:
            covered |= np.outer(use, C[level])
            errors[level + 1] = weighted_error(M, covered, w)
    return _Descent(B, C, errors)


def _check_matrix_degree(M: np.ndarray, f: int) -> np.ndarray:
    M = np.asarray(M, dtype=bool)
    if M.ndim != 2:
        raise FactorizationError("M must be 2-D")
    if not 1 <= f:
        raise FactorizationError(f"factorization degree must be >= 1, got {f}")
    return M


def asso(
    M: np.ndarray,
    f: int,
    tau: float = 0.9,
    weights: Optional[np.ndarray] = None,
    bonus: float = 1.0,
    penalty: float = 1.0,
) -> AssoResult:
    """One ASSO run at a fixed confidence threshold.

    Args:
        M: (n, m) boolean matrix to factor.
        f: Factorization degree, ``1 <= f``.  (BLASYS uses ``f < m``.)
        tau: Association confidence threshold in (0, 1].
        weights: Per-column error weights (None = uniform).
        bonus / penalty: Cover-function weights w+ / w- from the ASSO
            paper; the final error metric always counts both at weight 1.

    Returns:
        :class:`AssoResult` with ``B`` (n × f), ``C`` (f × m) and the
        weighted error of ``M`` vs ``B ∘ C``.
    """
    M = _check_matrix_degree(M, f)
    w = check_weights(weights, M.shape[1])
    return _asso_descent(M, f, tau, w, bonus, penalty).snapshot(f, tau)


def asso_sweep(
    M: np.ndarray,
    f: int,
    taus: Sequence[float] = DEFAULT_TAUS,
    weights: Optional[np.ndarray] = None,
    bonus: float = 1.0,
    penalty: float = 1.0,
) -> AssoResult:
    """Run ASSO over a threshold sweep and keep the lowest-error result."""
    if not taus:
        raise FactorizationError("empty threshold sweep")
    M = _check_matrix_degree(M, f)
    w = check_weights(weights, M.shape[1])
    prep = _prepare_descent(M, w)
    best: Optional[AssoResult] = None
    for tau in taus:
        result = _asso_descent(M, f, tau, w, bonus, penalty, prep).snapshot(f, tau)
        if best is None or result.error < best.error:
            best = result
    return best


def asso_ladder(
    M: np.ndarray,
    f_max: int,
    taus: Sequence[float] = DEFAULT_TAUS,
    weights: Optional[np.ndarray] = None,
    bonus: float = 1.0,
    penalty: float = 1.0,
) -> Dict[int, AssoResult]:
    """Threshold-swept ASSO for **every** degree ``1 .. f_max`` at once.

    One greedy descent per ``tau`` (instead of one per ``(tau, f)`` pair);
    per degree the first strictly-lower-error threshold wins, exactly the
    tie rule of :func:`asso_sweep`, so ``asso_ladder(M, F)[f]`` equals
    ``asso_sweep(M, f)`` field-for-field for every ``f <= F``.
    """
    M = _check_matrix_degree(M, f_max)
    if not taus:
        raise FactorizationError("empty threshold sweep")
    w = check_weights(weights, M.shape[1])
    prep = _prepare_descent(M, w)
    best: Dict[int, AssoResult] = {}
    for tau in taus:
        descent = _asso_descent(M, f_max, tau, w, bonus, penalty, prep)
        for f in range(1, f_max + 1):
            held = best.get(f)
            if held is None or float(descent.errors[f]) < held.error:
                best[f] = descent.snapshot(f, tau)
    return best
