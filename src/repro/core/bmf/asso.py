"""The ASSO Boolean matrix factorization algorithm, with weighted QoR.

Re-implemented from Miettinen & Vreeken's description (the paper's [10, 11])
and extended exactly the way BLASYS §3.2 proposes: the cover function that
scores candidate basis vectors takes a per-column weight vector, so
mismatches on significant output bits are penalized more.

Outline for factorization degree ``f`` (semiring algebra):

1. Build the *association matrix*: candidate basis row ``i`` has a 1 in
   column ``j`` iff ``conf(i -> j) >= tau``, where confidence is the
   fraction of matrix rows with a 1 in column ``i`` that also have a 1 in
   column ``j``.
2. Greedily pick ``f`` (basis row, usage column) pairs.  For a candidate
   basis row ``c``, the optimal usage column sets ``b_r = 1`` exactly for
   the matrix rows where adding ``c`` has positive cover gain; the
   candidate with the best total gain wins.

The threshold ``tau`` trades precision of candidates for recall; BLASYS
sweeps it per subcircuit (§4: "for each subcircuit we perform a sweep on
the factorization threshold"), which :func:`asso_sweep` implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ...errors import FactorizationError
from .boolean import check_weights, weighted_error

#: Default threshold sweep, matching the resolution used in the ASSO papers.
DEFAULT_TAUS: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def association_candidates(M: np.ndarray, tau: float) -> np.ndarray:
    """Candidate basis rows: thresholded column-confidence matrix (m × m)."""
    M = np.asarray(M, dtype=bool)
    counts = M.astype(np.int64)
    co = counts.T @ counts  # co[i, j] = |rows with 1 in both i and j|
    diag = np.diag(co).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        conf = co / diag[:, None]
    conf = np.nan_to_num(conf, nan=0.0)
    return conf >= tau


def _candidate_gains(
    M: np.ndarray,
    covered: np.ndarray,
    candidates: np.ndarray,
    w: np.ndarray,
    bonus: float,
    penalty: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Score all candidates at the current cover state (semiring).

    For candidate ``c`` and matrix row ``r``, adding ``c`` to row ``r``'s OR
    newly covers the positions ``c & ~covered[r]``; each such position gains
    ``bonus * w_j`` if ``M[r, j]`` is 1 and loses ``penalty * w_j``
    otherwise.

    Returns:
        (total_gain per candidate, usage matrix of shape (n, n_cand)).
    """
    good = (M & ~covered).astype(float)  # newly coverable 1s
    bad = (~M & ~covered).astype(float)  # newly covered 0s
    cand_w = candidates.astype(float) * w[None, :]  # (n_cand, m)
    gain = bonus * (good @ cand_w.T) - penalty * (bad @ cand_w.T)  # (n, n_cand)
    usage = gain > 0
    totals = np.where(usage, gain, 0.0).sum(axis=0)
    return totals, usage


@dataclass(frozen=True)
class AssoResult:
    """Output of a single ASSO run."""

    B: np.ndarray
    C: np.ndarray
    error: float
    tau: float


def asso(
    M: np.ndarray,
    f: int,
    tau: float = 0.9,
    weights: Optional[np.ndarray] = None,
    bonus: float = 1.0,
    penalty: float = 1.0,
) -> AssoResult:
    """One ASSO run at a fixed confidence threshold.

    Args:
        M: (n, m) boolean matrix to factor.
        f: Factorization degree, ``1 <= f``.  (BLASYS uses ``f < m``.)
        tau: Association confidence threshold in (0, 1].
        weights: Per-column error weights (None = uniform).
        bonus / penalty: Cover-function weights w+ / w- from the ASSO
            paper; the final error metric always counts both at weight 1.

    Returns:
        :class:`AssoResult` with ``B`` (n × f), ``C`` (f × m) and the
        weighted error of ``M`` vs ``B ∘ C``.
    """
    M = np.asarray(M, dtype=bool)
    if M.ndim != 2:
        raise FactorizationError("M must be 2-D")
    n, m = M.shape
    if not 1 <= f:
        raise FactorizationError(f"factorization degree must be >= 1, got {f}")
    w = check_weights(weights, m)

    candidates = association_candidates(M, tau)
    # Drop empty candidates (all-zero rows give zero gain anyway).
    candidates = candidates[candidates.any(axis=1)]
    if candidates.size == 0:
        B = np.zeros((n, f), dtype=bool)
        C = np.zeros((f, m), dtype=bool)
        return AssoResult(B, C, weighted_error(M, np.zeros_like(M), w), tau)

    B = np.zeros((n, f), dtype=bool)
    C = np.zeros((f, m), dtype=bool)
    covered = np.zeros_like(M)
    for level in range(f):
        totals, usage = _candidate_gains(M, covered, candidates, w, bonus, penalty)
        best = int(np.argmax(totals))
        if totals[best] <= 0:
            break  # no candidate helps; leave remaining factors zero
        C[level] = candidates[best]
        B[:, level] = usage[:, best]
        covered |= np.outer(B[:, level], C[level])
    error = weighted_error(M, covered, w)
    return AssoResult(B, C, error, tau)


def asso_sweep(
    M: np.ndarray,
    f: int,
    taus: Sequence[float] = DEFAULT_TAUS,
    weights: Optional[np.ndarray] = None,
    bonus: float = 1.0,
    penalty: float = 1.0,
) -> AssoResult:
    """Run ASSO over a threshold sweep and keep the lowest-error result."""
    if not taus:
        raise FactorizationError("empty threshold sweep")
    best: Optional[AssoResult] = None
    for tau in taus:
        result = asso(M, f, tau, weights, bonus, penalty)
        if best is None or result.error < best.error:
            best = result
    return best
