"""Boolean matrix factorization: ASSO, weighted QoR, refinement, exact."""

from .boolean import (
    ALGEBRAS,
    bool_product,
    check_weights,
    factorization_error,
    hamming_distance,
    numeric_weights,
    uniform_weights,
    weighted_error,
)
from .asso import AssoResult, DEFAULT_TAUS, asso, asso_sweep, association_candidates
from .colsel import ColumnSelectResult, column_select_bmf
from .refine import refine, smooth_B_ties, update_B_exact, update_C_greedy
from .exhaustive import exhaustive_bmf
from .factorizer import BMFResult, METHODS, factorize, identity_result
from .mdl import description_length, select_degree_mdl

__all__ = [
    "ALGEBRAS",
    "AssoResult",
    "BMFResult",
    "ColumnSelectResult",
    "DEFAULT_TAUS",
    "column_select_bmf",
    "METHODS",
    "asso",
    "asso_sweep",
    "association_candidates",
    "bool_product",
    "check_weights",
    "description_length",
    "exhaustive_bmf",
    "factorization_error",
    "factorize",
    "hamming_distance",
    "identity_result",
    "numeric_weights",
    "refine",
    "select_degree_mdl",
    "smooth_B_ties",
    "uniform_weights",
    "update_B_exact",
    "update_C_greedy",
    "weighted_error",
]
