"""Boolean matrix factorization: ASSO, weighted QoR, refinement, exact.

The heavy kernels (ASSO gain scoring, column-subset selection, decompressor
fits, flip refinement) run on the packed-bitset primitives of
:mod:`repro.core.bmf.packed`; the ``*_ladder`` entry points amortize one
greedy descent over every factorization degree (prefix stability — see
DESIGN.md "BMF kernel").
"""

from .boolean import (
    ALGEBRAS,
    bool_product,
    check_weights,
    factorization_error,
    hamming_distance,
    numeric_weights,
    uniform_weights,
    weighted_error,
)
from .asso import (
    AssoResult,
    DEFAULT_TAUS,
    asso,
    asso_ladder,
    asso_sweep,
    association_candidates,
)
from .colsel import ColumnSelectResult, column_select_bmf, column_select_ladder
from .packed import (
    MAX_MASK_BITS,
    PackedColumns,
    packed_bool_product,
    packed_weighted_error,
    row_masks,
    weight_table,
)
from .refine import refine, smooth_B_ties, update_B_exact, update_C_greedy
from .exhaustive import exhaustive_bmf
from .factorizer import (
    BMFResult,
    METHODS,
    factorize,
    factorize_ladder,
    identity_result,
)
from .mdl import description_length, select_degree_mdl

__all__ = [
    "ALGEBRAS",
    "AssoResult",
    "BMFResult",
    "ColumnSelectResult",
    "DEFAULT_TAUS",
    "MAX_MASK_BITS",
    "PackedColumns",
    "column_select_bmf",
    "column_select_ladder",
    "METHODS",
    "asso",
    "asso_ladder",
    "asso_sweep",
    "association_candidates",
    "bool_product",
    "check_weights",
    "description_length",
    "exhaustive_bmf",
    "factorization_error",
    "factorize",
    "factorize_ladder",
    "hamming_distance",
    "identity_result",
    "numeric_weights",
    "packed_bool_product",
    "packed_weighted_error",
    "refine",
    "row_masks",
    "select_degree_mdl",
    "smooth_B_ties",
    "uniform_weights",
    "update_B_exact",
    "update_C_greedy",
    "weight_table",
    "weighted_error",
]
