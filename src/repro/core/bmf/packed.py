"""Packed-bitset primitives for the Boolean matrix factorization kernels.

Truth-table matrices in BLASYS are tall and narrow: ``2**k`` rows by a
handful of output columns.  The dense kernels spend their time in float
matmuls over 0/1 matrices; this module replaces them with two bit-packed
views and popcount arithmetic (shared popcount helper:
:func:`repro.circuit.simulate.bit_count`, which uses ``np.bitwise_count``
when available and a byte lookup table otherwise):

* **Column words** (:class:`PackedColumns`) — each column packed over the
  ``2**k`` rows into ``uint64`` words, using the little-endian convention
  of :mod:`repro.circuit.simulate` (row ``r`` lives in word ``r // 64`` at
  bit ``r % 64``; tail bits are zero).  Column-wise quantities — mismatch
  counts, Boolean products, cover updates — become word ops + popcounts.
* **Row masks** (:func:`row_masks`) — each row packed over the ``m``
  columns into one integer.  Row-wise weighted sums over column subsets
  become a single table lookup (:func:`weight_table`), which is what the
  ASSO cover-gain scoring needs.

Determinism contract (see DESIGN.md "BMF kernel"): every weighted sum over
a set of columns is evaluated *left-associated in increasing column
order*, and weighted mismatch totals are always ``np.dot(counts, w)`` over
exact integer per-column counts.  The dense reference formulas in the test
suite follow the same rule, which is what makes packed and dense results
bit-for-bit identical rather than merely close.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...circuit.simulate import bit_count, pack_bits, words_for
from ...errors import FactorizationError
from ...kernels import active_backend

#: Row masks / weight tables are only used up to this many columns; the
#: subset-sum table has ``2**m`` entries, so 16 keeps it at 512 KiB.  BLASYS
#: windows are far below this (``max_outputs`` defaults to 10).
MAX_MASK_BITS = 16


def weighted_counts_error(counts: np.ndarray, w: np.ndarray) -> float:
    """Canonical weighted error: ``dot`` of per-column mismatch counts and weights.

    This is *the* definition of weighted Hamming error throughout the BMF
    package — both the dense :func:`repro.core.bmf.boolean.weighted_error`
    and every packed kernel reduce to this exact expression, so the two
    paths agree bit-for-bit (integer counts are exact in float64).
    """
    return float(np.dot(np.asarray(counts, dtype=np.float64), w))


class PackedColumns:
    """A boolean matrix with each *column* packed over the rows.

    Attributes:
        words: ``(m, W)`` uint64 array, ``W = words_for(n_rows)``; tail bits
            of each column are zero (the packed-word invariant of
            DESIGN.md), so full-array popcounts are exact.
        n_rows: Number of matrix rows represented.
    """

    __slots__ = ("words", "n_rows")

    def __init__(self, words: np.ndarray, n_rows: int) -> None:
        self.words = words
        self.n_rows = n_rows

    @classmethod
    def from_dense(cls, M: np.ndarray) -> "PackedColumns":
        """Pack a dense (n, m) boolean matrix column-by-column."""
        M = np.asarray(M, dtype=bool)
        if M.ndim != 2:
            raise FactorizationError("can only pack a 2-D matrix")
        return cls(pack_bits(M.T.astype(np.uint8)), M.shape[0])

    @classmethod
    def zeros(cls, m: int, n_rows: int) -> "PackedColumns":
        """An all-zero packed matrix of ``m`` columns over ``n_rows`` rows."""
        return cls(np.zeros((m, words_for(n_rows)), dtype=np.uint64), n_rows)

    @property
    def m(self) -> int:
        return self.words.shape[0]

    def to_dense(self) -> np.ndarray:
        """Unpack back to a dense (n, m) boolean matrix."""
        from ...circuit.simulate import unpack_bits

        return unpack_bits(self.words, self.n_rows).T.astype(bool)

    def copy(self) -> "PackedColumns":
        return PackedColumns(self.words.copy(), self.n_rows)


def mismatch_counts(P: PackedColumns, A: PackedColumns) -> np.ndarray:
    """Per-column Hamming mismatch counts between two packed matrices."""
    if P.words.shape != A.words.shape or P.n_rows != A.n_rows:
        raise FactorizationError(
            f"packed shape mismatch {P.words.shape} vs {A.words.shape}"
        )
    return active_backend().popcount_xor_rows(P.words, A.words)


def packed_weighted_error(
    P: PackedColumns, A: PackedColumns, w: np.ndarray
) -> float:
    """Weighted Hamming error between packed matrices (canonical form)."""
    return weighted_counts_error(mismatch_counts(P, A), w)


def combine_columns(
    basis_words: np.ndarray, select: np.ndarray, algebra: str
) -> np.ndarray:
    """OR/XOR-accumulate the selected basis columns into one packed column.

    Args:
        basis_words: ``(f, W)`` packed basis columns.
        select: ``(f,)`` boolean selector.
        algebra: ``"semiring"`` (OR) or ``"field"`` (XOR).

    Accumulation runs in increasing basis order; both Boolean accumulators
    are associative and commutative, so order only matters for determinism
    of intermediate states, not the result.
    """
    acc = np.zeros(basis_words.shape[1], dtype=np.uint64)
    for l in np.flatnonzero(select):
        if algebra == "semiring":
            acc |= basis_words[l]
        else:
            acc ^= basis_words[l]
    return acc


def packed_bool_product(
    B: PackedColumns, C: np.ndarray, algebra: str
) -> PackedColumns:
    """Packed Boolean matrix product: ``B`` (packed basis columns) times ``C``.

    ``C`` is a dense ``(f, m)`` boolean wiring matrix; output column ``j``
    is the OR/XOR accumulation of the basis columns selected by
    ``C[:, j]``.  Equivalent to packing
    :func:`repro.core.bmf.boolean.bool_product`'s result.
    """
    C = np.asarray(C, dtype=bool)
    if C.shape[0] != B.m:
        raise FactorizationError(
            f"shape mismatch: packed B has {B.m} columns, C has {C.shape[0]} rows"
        )
    out = np.zeros((C.shape[1], B.words.shape[1]), dtype=np.uint64)
    for j in range(C.shape[1]):
        out[j] = combine_columns(B.words, C[:, j], algebra)
    return PackedColumns(out, B.n_rows)


# ---------------------------------------------------------------------------
# Row masks and subset-sum weight tables (the ASSO gain representation)
# ---------------------------------------------------------------------------


def row_masks(M: np.ndarray) -> np.ndarray:
    """Pack each row of an (n, m) boolean matrix into one uint64 bitmask.

    Bit ``j`` of ``masks[r]`` is ``M[r, j]``; requires ``m <= 64``.
    """
    M = np.asarray(M, dtype=bool)
    m = M.shape[1]
    if m > 64:
        raise FactorizationError(f"row masks need m <= 64 columns, got {m}")
    shifts = np.uint64(1) << np.arange(m, dtype=np.uint64)
    return (M.astype(np.uint64) * shifts[None, :]).sum(axis=1, dtype=np.uint64)


def weight_table(w: np.ndarray) -> np.ndarray:
    """Subset-sum table: ``table[s] =`` sum of ``w[j]`` over the set bits of ``s``.

    Built so that every entry equals the *left-associated sum in increasing
    column order* of its weights — the canonical weighted-sum order of the
    kernel (DESIGN.md).  Requires ``len(w) <= MAX_MASK_BITS``.
    """
    w = np.asarray(w, dtype=np.float64)
    m = w.shape[0]
    if m > MAX_MASK_BITS:
        raise FactorizationError(
            f"weight table needs m <= {MAX_MASK_BITS} columns, got {m}"
        )
    table = np.zeros(1 << m, dtype=np.float64)
    for j in range(m):
        size = 1 << j
        table[size : 2 * size] = table[:size] + w[j]
    return table


def candidate_gains_masks(
    good: np.ndarray,
    bad: np.ndarray,
    cand_masks: np.ndarray,
    wtab: np.ndarray,
    bonus: float,
    penalty: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """ASSO cover gains from row masks (the packed ``_candidate_gains``).

    Args:
        good: ``(n,)`` uint64 row masks of still-coverable 1s
            (``M & ~covered``).
        bad: ``(n,)`` uint64 row masks of coverable 0s (``~M & ~covered``).
        cand_masks: ``(n_cand,)`` uint64 masks of the candidate basis rows.
        wtab: Subset-sum table of the column weights.

    Returns:
        ``(totals, usage)`` exactly as the dense scoring defines them:
        ``gain[r, c] = bonus * wsum(good_r & cand_c) - penalty *
        wsum(bad_r & cand_c)``, ``usage = gain > 0`` and ``totals[c]`` the
        sum of the positive gains of candidate ``c``.
    """
    good_sub = good[:, None] & cand_masks[None, :]  # (n, n_cand) masks
    bad_sub = bad[:, None] & cand_masks[None, :]
    gain = bonus * wtab[good_sub] - penalty * wtab[bad_sub]
    usage = gain > 0
    totals = np.where(usage, gain, 0.0).sum(axis=0)
    return totals, usage


def fit_C_packed(
    target: PackedColumns,
    basis_words: np.ndarray,
    weights: np.ndarray,
    algebra: str,
) -> np.ndarray:
    """Greedy per-output decompressor fit on packed columns.

    Best-improvement greedy identical in its decisions to the dense
    ``_fit_C`` of :mod:`repro.core.bmf.colsel`: for a fixed output ``j``
    every candidate error is ``weights[j]`` times an integer mismatch
    count, so comparing counts (with the ``weights[j] > 0`` guard — a
    zero-weight output can never *strictly* improve) reproduces the dense
    float comparisons exactly (see DESIGN.md).
    """
    kernels = active_backend()
    f = basis_words.shape[0]
    m = target.m
    C = np.zeros((f, m), dtype=bool)
    for j in range(m):
        if weights[j] <= 0:
            continue
        tcol = target.words[j]
        cur = np.zeros_like(tcol)
        cnt = kernels.popcount_reduce(tcol)
        while True:
            best_l, best_cnt, best_vec = None, cnt, None
            for l in range(f):
                if C[l, j]:
                    continue
                trial = (
                    (cur | basis_words[l])
                    if algebra == "semiring"
                    else (cur ^ basis_words[l])
                )
                trial_cnt = kernels.popcount_reduce(tcol ^ trial)
                if trial_cnt < best_cnt:
                    best_l, best_cnt, best_vec = l, trial_cnt, trial
            if best_l is None:
                break
            C[best_l, j] = True
            cnt, cur = best_cnt, best_vec
    return C
