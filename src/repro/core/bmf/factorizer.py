"""Unified factorization façade used by the rest of the library.

:func:`factorize` hides the choice of algorithm (ASSO sweep, optional
alternating refinement, exhaustive for tiny instances) behind one call and
returns a :class:`BMFResult` that records everything downstream consumers
need: the factors, the algebra, the weighted and unweighted errors, and the
approximate matrix itself.

:func:`factorize_ladder` is the degree-ladder companion: it produces the
results for **every** degree ``1 .. f_max`` from one greedy descent per
association threshold (the ASSO greedy is prefix-stable in ``f``, see
:mod:`repro.core.bmf.asso`), instead of re-running the descent per degree.
Both entry points share the same per-degree finalization
(:func:`_finalize_degree`), so ``factorize_ladder(M, F)[f]`` is
byte-identical to ``factorize(M, f)`` — the contract that lets the
profiler switch to the ladder without invalidating cached profiles
(DESIGN.md "BMF kernel").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ...errors import FactorizationError
from .asso import DEFAULT_TAUS, asso_ladder, asso_sweep
from .boolean import (
    bool_product,
    check_weights,
    hamming_distance,
    weighted_error,
)
from .exhaustive import exhaustive_bmf
from .refine import MAX_EXACT_F, refine, smooth_B_ties

#: Supported method names for :func:`factorize`.
METHODS = ("asso", "asso+refine", "exhaustive")


@dataclass(frozen=True)
class BMFResult:
    """A completed Boolean matrix factorization ``M ≈ B ∘ C``.

    Attributes:
        B: (n, f) compressor truth table.
        C: (f, m) decompressor wiring matrix.
        f: Factorization degree.
        algebra: ``"semiring"`` or ``"field"``.
        error: Weighted Hamming error under the weights used to factor.
        hamming: Plain Hamming distance between ``M`` and ``B ∘ C``.
        method: Algorithm that produced the result.
    """

    B: np.ndarray
    C: np.ndarray
    f: int
    algebra: str
    error: float
    hamming: int
    method: str

    @property
    def product(self) -> np.ndarray:
        """The approximate matrix ``B ∘ C``."""
        return bool_product(self.B, self.C, self.algebra)


def factorize(
    M: np.ndarray,
    f: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    method: str = "asso",
    taus: Sequence[float] = DEFAULT_TAUS,
    smooth: bool = True,
    smooth_slack: float = 0.0,
) -> BMFResult:
    """Factor a boolean matrix to degree ``f``.

    Args:
        M: (n, m) boolean matrix (a window truth table in BLASYS).
        f: Factorization degree; BLASYS explores ``1 <= f < m``.
        weights: Optional per-column error weights (§3.2 WQoR).
        algebra: ``"semiring"`` (OR decompressor) or ``"field"`` (XOR).
        method: ``"asso"`` — threshold-swept ASSO (the paper's algorithm);
            ``"asso+refine"`` — ASSO followed by alternating refinement;
            ``"exhaustive"`` — exact optimum for tiny instances.
        taus: Threshold sweep for the ASSO-based methods.
        smooth: Apply the literal-aware smoothing of ``B`` (see
            :func:`repro.core.bmf.refine.smooth_B_ties`); row counts must
            be a power of two (truth tables always are).
        smooth_slack: Per-row extra weighted error the smoothing may spend
            on simpler factors (0 = error-preserving ties only).

    Returns:
        A :class:`BMFResult`.
    """
    M, w = _check_factorize_args(M, f, weights, method)
    if method == "exhaustive":
        B, C, _ = exhaustive_bmf(M, f, w, algebra)
    else:
        seed = asso_sweep(M, f, taus, w)
        B, C = _repair_seed(M, seed.B, seed.C, w, algebra, method)
    return _finalize_degree(M, f, B, C, w, algebra, method, smooth, smooth_slack)


def factorize_ladder(
    M: np.ndarray,
    f_max: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    method: str = "asso",
    taus: Sequence[float] = DEFAULT_TAUS,
    smooth: bool = True,
    smooth_slack: float = 0.0,
) -> Dict[int, BMFResult]:
    """Factor ``M`` at every degree ``1 .. f_max`` with one descent per tau.

    For the ASSO-based methods the greedy threshold sweep — the dominant
    cost — runs once per ``tau`` over the whole degree ladder
    (:func:`repro.core.bmf.asso.asso_ladder`); only the cheap per-degree
    finalization (field/refine repair, ``B`` smoothing, scoring) runs per
    degree.  The exhaustive method has no prefix structure and simply
    falls back to per-degree calls.

    Returns:
        ``{f: BMFResult}`` with every entry byte-identical to
        ``factorize(M, f, ...)`` under the same arguments.
    """
    M, w = _check_factorize_args(M, f_max, weights, method)
    if method == "exhaustive":
        return {
            f: factorize(
                M, f, weights, algebra, method, taus, smooth, smooth_slack
            )
            for f in range(1, f_max + 1)
        }
    seeds = asso_ladder(M, f_max, taus, w)
    results: Dict[int, BMFResult] = {}
    for f in range(1, f_max + 1):
        seed = seeds[f]
        B, C = _repair_seed(M, seed.B, seed.C, w, algebra, method)
        results[f] = _finalize_degree(
            M, f, B, C, w, algebra, method, smooth, smooth_slack
        )
    return results


def _check_factorize_args(M, f, weights, method):
    M = np.asarray(M, dtype=bool)
    if M.ndim != 2:
        raise FactorizationError("M must be a 2-D boolean matrix")
    if f < 1:
        raise FactorizationError(f"factorization degree must be >= 1, got {f}")
    w = check_weights(weights, M.shape[1])
    if method not in METHODS:
        raise FactorizationError(f"unknown method {method!r}; expected {METHODS}")
    return M, w


def _repair_seed(M, B, C, w, algebra, method):
    """Per-degree repair of an ASSO seed: field re-fit and/or refinement.

    ASSO's candidate generation is semiring-specific; under the field
    algebra the seed is repaired by alternating refinement.  This is
    per-degree work shared verbatim by :func:`factorize` and
    :func:`factorize_ladder` — only the seed's origin (sweep vs ladder
    snapshot) differs, and those coincide by prefix stability.
    """
    if algebra == "field":
        B, C, _ = refine(M, B, C, w, algebra)
    if method == "asso+refine":
        B, C, _ = refine(M, B, C, w, algebra)
    return B, C


def _finalize_degree(M, f, B, C, w, algebra, method, smooth, smooth_slack):
    """Smooth ``B`` and score — the common tail of both factorize paths."""
    n = M.shape[0]
    if smooth and f <= MAX_EXACT_F and n and not (n & (n - 1)):
        B = smooth_B_ties(M, C, w, algebra, slack=smooth_slack)
    approx = bool_product(B, C, algebra)
    return BMFResult(
        B=B,
        C=C,
        f=f,
        algebra=algebra,
        error=float(weighted_error(M, approx, w)),
        hamming=hamming_distance(M, approx),
        method=method,
    )


def identity_result(M: np.ndarray, algebra: str = "semiring") -> BMFResult:
    """The trivial exact factorization ``M = M ∘ I`` (degree ``m``).

    Used by the explorer as the starting point where every window is still
    exact (Algorithm 1 line 13 sets ``f_i = m_i``).
    """
    M = np.asarray(M, dtype=bool)
    m = M.shape[1]
    return BMFResult(
        B=M.copy(),
        C=np.eye(m, dtype=bool),
        f=m,
        algebra=algebra,
        error=0.0,
        hamming=0,
        method="identity",
    )
