"""Unified factorization façade used by the rest of the library.

:func:`factorize` hides the choice of algorithm (ASSO sweep, optional
alternating refinement, exhaustive for tiny instances) behind one call and
returns a :class:`BMFResult` that records everything downstream consumers
need: the factors, the algebra, the weighted and unweighted errors, and the
approximate matrix itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ...errors import FactorizationError
from .asso import DEFAULT_TAUS, asso_sweep
from .boolean import (
    bool_product,
    check_weights,
    hamming_distance,
    weighted_error,
)
from .exhaustive import exhaustive_bmf
from .refine import MAX_EXACT_F, refine, smooth_B_ties

#: Supported method names for :func:`factorize`.
METHODS = ("asso", "asso+refine", "exhaustive")


@dataclass(frozen=True)
class BMFResult:
    """A completed Boolean matrix factorization ``M ≈ B ∘ C``.

    Attributes:
        B: (n, f) compressor truth table.
        C: (f, m) decompressor wiring matrix.
        f: Factorization degree.
        algebra: ``"semiring"`` or ``"field"``.
        error: Weighted Hamming error under the weights used to factor.
        hamming: Plain Hamming distance between ``M`` and ``B ∘ C``.
        method: Algorithm that produced the result.
    """

    B: np.ndarray
    C: np.ndarray
    f: int
    algebra: str
    error: float
    hamming: int
    method: str

    @property
    def product(self) -> np.ndarray:
        """The approximate matrix ``B ∘ C``."""
        return bool_product(self.B, self.C, self.algebra)


def factorize(
    M: np.ndarray,
    f: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    method: str = "asso",
    taus: Sequence[float] = DEFAULT_TAUS,
    smooth: bool = True,
    smooth_slack: float = 0.0,
) -> BMFResult:
    """Factor a boolean matrix to degree ``f``.

    Args:
        M: (n, m) boolean matrix (a window truth table in BLASYS).
        f: Factorization degree; BLASYS explores ``1 <= f < m``.
        weights: Optional per-column error weights (§3.2 WQoR).
        algebra: ``"semiring"`` (OR decompressor) or ``"field"`` (XOR).
        method: ``"asso"`` — threshold-swept ASSO (the paper's algorithm);
            ``"asso+refine"`` — ASSO followed by alternating refinement;
            ``"exhaustive"`` — exact optimum for tiny instances.
        taus: Threshold sweep for the ASSO-based methods.
        smooth: Apply the literal-aware smoothing of ``B`` (see
            :func:`repro.core.bmf.refine.smooth_B_ties`); row counts must
            be a power of two (truth tables always are).
        smooth_slack: Per-row extra weighted error the smoothing may spend
            on simpler factors (0 = error-preserving ties only).

    Returns:
        A :class:`BMFResult`.
    """
    M = np.asarray(M, dtype=bool)
    if M.ndim != 2:
        raise FactorizationError("M must be a 2-D boolean matrix")
    n, m = M.shape
    w = check_weights(weights, m)
    if method not in METHODS:
        raise FactorizationError(f"unknown method {method!r}; expected {METHODS}")

    if method == "exhaustive":
        B, C, err = exhaustive_bmf(M, f, w, algebra)
    else:
        if algebra == "field" and method.startswith("asso"):
            # ASSO's candidate generation is semiring-specific; seed with a
            # semiring run, then repair under the field algebra.
            seed = asso_sweep(M, f, taus, w)
            B, C, err = refine(M, seed.B, seed.C, w, algebra)
        else:
            result = asso_sweep(M, f, taus, w)
            B, C, err = result.B, result.C, result.error
        if method == "asso+refine":
            B, C, err = refine(M, B, C, w, algebra)

    if smooth and f <= MAX_EXACT_F and n and not (n & (n - 1)):
        B = smooth_B_ties(M, C, w, algebra, slack=smooth_slack)

    approx = bool_product(B, C, algebra)
    return BMFResult(
        B=B,
        C=C,
        f=f,
        algebra=algebra,
        error=float(weighted_error(M, approx, w)),
        hamming=hamming_distance(M, approx),
        method=method,
    )


def identity_result(M: np.ndarray, algebra: str = "semiring") -> BMFResult:
    """The trivial exact factorization ``M = M ∘ I`` (degree ``m``).

    Used by the explorer as the starting point where every window is still
    exact (Algorithm 1 line 13 sets ``f_i = m_i``).
    """
    M = np.asarray(M, dtype=bool)
    m = M.shape[1]
    return BMFResult(
        B=M.copy(),
        C=np.eye(m, dtype=bool),
        f=m,
        algebra=algebra,
        error=0.0,
        hamming=0,
        method="identity",
    )
