"""Exact (exhaustive) Boolean matrix factorization for tiny instances.

BMF is NP-hard; this brute-force solver enumerates every possible ``C``
matrix and solves the then-independent ``B`` rows exactly.  Complexity is
``O(2**(f*m) * n * 2**f)`` — usable for the unit tests that pin down the
heuristics' quality, and for the paper's 4-output illustrative example
(Figure 3), where it certifies the minimum achievable Hamming distance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...errors import FactorizationError
from .boolean import bool_product, check_weights, weighted_error
from .refine import update_B_exact

#: Refuse problems with more than this many C-matrix bits.
MAX_C_BITS = 20


def exhaustive_bmf(
    M: np.ndarray,
    f: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Globally optimal ``(B, C, error)`` by enumeration.

    Raises:
        FactorizationError: if ``f * m`` exceeds :data:`MAX_C_BITS`.
    """
    M = np.asarray(M, dtype=bool)
    n, m = M.shape
    w = check_weights(weights, m)
    if f * m > MAX_C_BITS:
        raise FactorizationError(
            f"exhaustive BMF limited to {MAX_C_BITS} C bits, got {f * m}"
        )
    best_err = np.inf
    best: Optional[Tuple[np.ndarray, np.ndarray]] = None
    for code in range(1 << (f * m)):
        C = np.zeros((f, m), dtype=bool)
        for idx in range(f * m):
            if (code >> idx) & 1:
                C[idx // m, idx % m] = True
        B = update_B_exact(M, C, w, algebra)
        err = weighted_error(M, bool_product(B, C, algebra), w)
        if err < best_err:
            best_err = err
            best = (B, C)
            if err == 0.0:
                break
    assert best is not None
    return best[0], best[1], float(best_err)
