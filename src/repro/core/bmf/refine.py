"""Alternating refinement of a Boolean factorization.

Given ``M ≈ B ∘ C``, alternately:

* re-solve every row of ``B`` *exactly* (enumerate all ``2**f`` subsets of
  the basis rows of ``C`` — vectorized, viable for the small ``f`` BLASYS
  uses), and
* greedily flip bits of ``C`` while any single flip reduces the weighted
  error.

Each step is monotone non-increasing in error, so the loop terminates.
The BLASYS paper lists "direct incorporation of the QoR metric into the
numerical optimization" as future work — this module is that extension,
exercised by the ablation benchmark.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...circuit.simulate import bit_count
from ...errors import FactorizationError
from .boolean import bool_product, check_weights, weighted_error
from .packed import (
    PackedColumns,
    combine_columns,
    mismatch_counts,
    packed_bool_product,
    weighted_counts_error,
)

#: Exact B-row re-solve is exponential in f; refuse above this.
MAX_EXACT_F = 16


def _combination_table(C: np.ndarray, algebra: str) -> np.ndarray:
    """All ``2**f`` accumulations of the rows of ``C``; shape (2**f, m).

    Row ``s`` is the OR (or XOR) of the basis rows selected by the bits of
    ``s``.
    """
    f, m = C.shape
    combos = np.zeros((1 << f, m), dtype=bool)
    for s in range(1, 1 << f):
        low = s & -s
        prev = s ^ low
        row = C[low.bit_length() - 1]
        if algebra == "semiring":
            combos[s] = combos[prev] | row
        else:
            combos[s] = combos[prev] ^ row
    return combos


def update_B_exact(
    M: np.ndarray,
    C: np.ndarray,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
) -> np.ndarray:
    """Optimal ``B`` for fixed ``C`` under weighted Hamming error.

    Every row of ``B`` is independent: enumerate all subset-accumulations
    of ``C``'s rows and pick the closest to the corresponding row of ``M``.
    """
    M = np.asarray(M, dtype=bool)
    C = np.asarray(C, dtype=bool)
    f, m = C.shape
    if f > MAX_EXACT_F:
        raise FactorizationError(f"exact B update limited to f <= {MAX_EXACT_F}")
    w = check_weights(weights, m)
    combos = _combination_table(C, algebra)  # (2^f, m)
    # distance[r, s] = sum_j w_j * (M[r,j] XOR combos[s,j])
    Mw = M.astype(float) * w[None, :]
    Nw = (~M).astype(float) * w[None, :]
    dist = Mw @ (~combos).T.astype(float) + Nw @ combos.T.astype(float)
    best = np.argmin(dist, axis=1)  # (n,)
    B = np.zeros((M.shape[0], f), dtype=bool)
    for level in range(f):
        B[:, level] = (best >> level) & 1
    return B


def update_C_greedy(
    M: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    max_passes: int = 4,
) -> np.ndarray:
    """Greedy bit-flip descent on ``C`` for fixed ``B``.

    Flips any single entry of ``C`` whose flip strictly reduces the
    weighted error, until a pass makes no change (or ``max_passes``).

    Flip scoring runs on the packed-column kernel: flipping ``C[l, j]``
    only changes product column ``j``, so a trial costs one packed column
    re-accumulation plus a popcount instead of a full dense product.  The
    trial error is the canonical ``dot(counts, w)`` of
    :func:`repro.core.bmf.boolean.weighted_error`, so accept/reject
    decisions are bit-for-bit those of the dense descent.
    """
    M = np.asarray(M, dtype=bool)
    B = np.asarray(B, dtype=bool)
    C = np.asarray(C, dtype=bool).copy()
    w = check_weights(weights, M.shape[1])
    f, m = C.shape

    Pm = PackedColumns.from_dense(M)
    basis = PackedColumns.from_dense(B)
    prod = packed_bool_product(basis, C, algebra)
    counts = mismatch_counts(Pm, prod).astype(np.float64)
    error = weighted_counts_error(counts, w)
    for _ in range(max_passes):
        improved = False
        for level in range(f):
            for j in range(m):
                C[level, j] = not C[level, j]
                new_col = combine_columns(basis.words, C[:, j], algebra)
                new_cnt = int(bit_count(Pm.words[j] ^ new_col).sum())
                old_cnt = counts[j]
                counts[j] = new_cnt
                trial = weighted_counts_error(counts, w)
                if trial < error:
                    error = trial
                    prod.words[j] = new_col
                    improved = True
                else:
                    C[level, j] = not C[level, j]
                    counts[j] = old_cnt
        if not improved:
            break
    return C


def smooth_B_ties(
    M: np.ndarray,
    C: np.ndarray,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    passes: int = 3,
    slack: float = 0.0,
) -> np.ndarray:
    """Complexity-aware re-coding of ``B``: the literal-aware step.

    For each row of ``M`` there is usually more than one code (subset of
    ``C``'s basis rows) achieving — or nearly achieving — the minimum
    weighted error; which one is picked barely affects QoR but decides how
    *compressible* the compressor truth table ``B`` is.  This routine
    picks, per row, the near-optimal code most common among the row's
    input-space Hamming neighbours, so adjacent truth-table rows share
    codes and synthesis can merge them into large cubes / shallow BDDs.
    It implements the "literal aware approximations" direction the paper
    lists as future work — without it, ASSO's usage columns are
    high-entropy and the synthesized compressor can dwarf the window it
    replaces.

    Args:
        slack: Extra weighted error allowed per row when choosing a
            smoother code.  ``0`` restricts the choice to exact ties and
            preserves the error of :func:`update_B_exact`; positive values
            trade bounded per-row error for simpler factors.

    Returns a new ``B``; with ``slack == 0`` its error equals the per-row
    optimum.
    """
    M = np.asarray(M, dtype=bool)
    C = np.asarray(C, dtype=bool)
    f, m = C.shape
    n = M.shape[0]
    if f > MAX_EXACT_F:
        raise FactorizationError(f"smoothing limited to f <= {MAX_EXACT_F}")
    if slack < 0:
        raise FactorizationError("slack must be non-negative")
    w = check_weights(weights, m)
    combos = _combination_table(C, algebra)  # (2^f, m)
    Mw = M.astype(float) * w[None, :]
    Nw = (~M).astype(float) * w[None, :]
    dist = Mw @ (~combos).T.astype(float) + Nw @ combos.T.astype(float)
    row_min = dist.min(axis=1)
    ties = dist <= row_min[:, None] + slack + 1e-9  # (n, 2^f)

    # Initial assignment: most globally popular tie-optimal code per row.
    popularity = ties.sum(axis=0).astype(float)
    codes = np.argmax(ties * popularity[None, :], axis=1)

    k = max(n.bit_length() - 1, 1)
    neighbors = np.empty((n, k), dtype=np.int64)
    idx = np.arange(n)
    for i in range(k):
        neighbors[:, i] = idx ^ (1 << i)
    neighbors %= n  # safety for non-power-of-two row counts

    one_hot = np.zeros((n, 1 << f), dtype=np.float64)
    for _ in range(passes):
        one_hot[:] = 0.0
        one_hot[idx, codes] = 1.0
        votes = one_hot[neighbors].sum(axis=1)  # (n, 2^f)
        # Among tie-optimal codes, take the neighbourhood favourite (with a
        # small popularity epsilon so isolated rows stay deterministic).
        score = ties * (votes + 1e-3 * popularity[None, :])
        new_codes = np.argmax(score, axis=1)
        if (new_codes == codes).all():
            break
        codes = new_codes

    B = np.zeros((n, f), dtype=bool)
    for level in range(f):
        B[:, level] = (codes >> level) & 1
    return B


def refine(
    M: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
    max_rounds: int = 8,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Alternating B/C refinement; returns ``(B, C, error)``.

    The error is monotone non-increasing across rounds and the loop stops
    at the first round with no improvement.
    """
    M = np.asarray(M, dtype=bool)
    w = check_weights(weights, M.shape[1])
    B = np.asarray(B, dtype=bool).copy()
    C = np.asarray(C, dtype=bool).copy()
    error = weighted_error(M, bool_product(B, C, algebra), w)
    for _ in range(max_rounds):
        B_new = update_B_exact(M, C, w, algebra)
        C_new = update_C_greedy(M, B_new, C, w, algebra)
        new_error = weighted_error(M, bool_product(B_new, C_new, algebra), w)
        if new_error >= error:
            break
        B, C, error = B_new, C_new, new_error
    return B, C, error
