"""Boolean matrix algebra: products, errors, column weights.

BLASYS factors a truth-table matrix ``M`` (2^k × m) as ``M ≈ B ∘ C`` where
``∘`` is the Boolean matrix product.  Two algebras appear in the paper:

* **semiring** — multiplication is AND, addition is OR.  The decompressor
  becomes a network of OR gates.  This is the default used in all paper
  experiments.
* **field** — addition is XOR (GF(2)); the decompressor uses XOR gates.

Error is measured as weighted Hamming distance: mismatches in output column
``j`` cost ``weights[j]``.  Uniform weights reproduce plain BMF (UQoR in the
paper); power-of-two weights implement the paper's §3.2 weighted QoR (WQoR)
that penalizes errors in significant bits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import FactorizationError

#: Valid algebra names.
ALGEBRAS = ("semiring", "field")


def _check_algebra(algebra: str) -> None:
    if algebra not in ALGEBRAS:
        raise FactorizationError(
            f"unknown algebra {algebra!r}; expected one of {ALGEBRAS}"
        )


def bool_product(B: np.ndarray, C: np.ndarray, algebra: str = "semiring") -> np.ndarray:
    """Boolean matrix product ``B ∘ C``.

    Args:
        B: (n, f) boolean matrix.
        C: (f, m) boolean matrix.
        algebra: ``"semiring"`` (OR-accumulate) or ``"field"`` (XOR).
    """
    _check_algebra(algebra)
    B = np.asarray(B, dtype=bool)
    C = np.asarray(C, dtype=bool)
    if B.ndim != 2 or C.ndim != 2 or B.shape[1] != C.shape[0]:
        raise FactorizationError(
            f"shape mismatch: B {B.shape} cannot multiply C {C.shape}"
        )
    counts = B.astype(np.int64) @ C.astype(np.int64)
    if algebra == "semiring":
        return counts > 0
    return (counts & 1).astype(bool)


def uniform_weights(m: int) -> np.ndarray:
    """UQoR weights: every output column costs the same."""
    return np.ones(m, dtype=float)


def numeric_weights(m: int, base: float = 2.0) -> np.ndarray:
    """WQoR weights: column ``j`` costs ``base**j``.

    With ``base=2`` a mismatch in output bit ``j`` costs its numeric place
    value, implementing the paper's proposal of minimizing
    ``||(M - BC) w||`` with a powers-of-two ``w``.  Weights are normalized
    so they sum to ``m`` — this keeps weighted errors comparable in
    magnitude to uniform Hamming counts.
    """
    if m <= 0:
        raise FactorizationError("need at least one output column")
    raw = np.power(base, np.arange(m, dtype=float))
    return raw * (m / raw.sum())


def check_weights(weights: Optional[np.ndarray], m: int) -> np.ndarray:
    """Validate/default a weight vector for ``m`` output columns."""
    if weights is None:
        return uniform_weights(m)
    w = np.asarray(weights, dtype=float)
    if w.shape != (m,):
        raise FactorizationError(f"weights shape {w.shape} != ({m},)")
    if (w < 0).any():
        raise FactorizationError("weights must be non-negative")
    return w


def weighted_error(
    M: np.ndarray,
    A: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Weighted Hamming distance between two boolean matrices.

    Canonical form (the kernel determinism contract, see DESIGN.md "BMF
    kernel"): exact integer mismatch counts per column, combined with the
    weights as one ``np.dot``.  The packed kernels compute the identical
    expression from popcounts, so dense and packed errors are bit-for-bit
    equal, not merely close.
    """
    M = np.asarray(M, dtype=bool)
    A = np.asarray(A, dtype=bool)
    if M.shape != A.shape:
        raise FactorizationError(f"shape mismatch {M.shape} vs {A.shape}")
    w = check_weights(weights, M.shape[1])
    counts = (M ^ A).sum(axis=0, dtype=np.int64)
    return float(np.dot(counts.astype(np.float64), w))


def hamming_distance(M: np.ndarray, A: np.ndarray) -> int:
    """Plain (unweighted) Hamming distance between boolean matrices."""
    M = np.asarray(M, dtype=bool)
    A = np.asarray(A, dtype=bool)
    if M.shape != A.shape:
        raise FactorizationError(f"shape mismatch {M.shape} vs {A.shape}")
    return int((M ^ A).sum())


def factorization_error(
    M: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
) -> float:
    """Weighted error of the factorization ``M ≈ B ∘ C``."""
    return weighted_error(M, bool_product(B, C, algebra), weights)
