"""MDL-based automatic selection of the factorization degree.

The paper's BMF references are Miettinen & Vreeken's ASSO and **MDL4BMF**
("Model order selection for Boolean matrix factorization", KDD'11 /
TKDD'14 — the paper's [10, 11]), which choose the number of factors ``f``
by the Minimum Description Length principle: the best model minimizes the
total encoded size of the factors plus the error they leave unexplained.

BLASYS itself sweeps every ``f`` and lets whole-circuit QoR decide, but the
MDL criterion is a natural per-window prior: it identifies the degree at
which a window's truth table stops being compressible.  The flow exposes it
as an analysis tool (see ``examples``/``benchmarks``), matching the cited
algorithm's "typed XOR" description-length model.

Encoding model (bits), following MDL4BMF's factor-matrix scheme:

* each factor matrix is encoded column-by-column as (count of ones) +
  (identity of the one-cells): ``log2(n+1) + log2(C(n, k))``;
* the error matrix is encoded the same way over the ``n*m`` cells.
"""

from __future__ import annotations

from math import lgamma, log2
from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import FactorizationError
from .boolean import bool_product
from .factorizer import BMFResult, factorize_ladder


def _log2_binomial(n: int, k: int) -> float:
    """log2 of C(n, k) via lgamma (exact enough for MDL comparisons)."""
    if k < 0 or k > n:
        return 0.0
    return (lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)) / np.log(2.0)


def _vector_cost(length: int, ones: int) -> float:
    """Bits to encode one boolean vector: cardinality + positions."""
    return log2(length + 1) + _log2_binomial(length, ones)


def description_length(
    M: np.ndarray, B: np.ndarray, C: np.ndarray, algebra: str = "semiring"
) -> float:
    """Total MDL cost (bits) of the factorization ``M ≈ B ∘ C``."""
    M = np.asarray(M, dtype=bool)
    B = np.asarray(B, dtype=bool)
    C = np.asarray(C, dtype=bool)
    n, m = M.shape
    f = B.shape[1]
    if B.shape[0] != n or C.shape != (f, m):
        raise FactorizationError("factor shapes inconsistent with M")
    cost = log2(max(n, 1) + 1) + log2(max(m, 1) + 1)  # matrix dimensions
    for level in range(f):
        cost += _vector_cost(n, int(B[:, level].sum()))
        cost += _vector_cost(m, int(C[level].sum()))
    error = M ^ bool_product(B, C, algebra)
    cost += _vector_cost(n * m, int(error.sum()))
    return cost


def select_degree_mdl(
    M: np.ndarray,
    algebra: str = "semiring",
    method: str = "asso",
    max_degree: Optional[int] = None,
) -> Tuple[int, BMFResult, Dict[int, float]]:
    """Pick the factorization degree minimizing description length.

    Args:
        M: (n, m) boolean matrix.
        max_degree: Highest degree to consider (default ``m``).

    Returns:
        ``(best_f, best_result, costs)`` where ``costs`` maps every probed
        degree to its MDL cost in bits (degree 0 = "no factors, encode the
        matrix as pure error", the MDL4BMF baseline).
    """
    M = np.asarray(M, dtype=bool)
    n, m = M.shape
    top = min(max_degree or m, m)
    costs: Dict[int, float] = {}
    # Degree 0: everything is error.
    costs[0] = (
        log2(n + 1) + log2(m + 1) + _vector_cost(n * m, int(M.sum()))
    )
    best_f, best_cost, best_result = 0, costs[0], None
    ladder = factorize_ladder(M, top, algebra=algebra, method=method) if top else {}
    for f in range(1, top + 1):
        result = ladder[f]
        cost = description_length(M, result.B, result.C, algebra)
        costs[f] = cost
        if cost < best_cost:
            best_f, best_cost, best_result = f, cost, result
    if best_result is None:
        # Encode M verbatim: the identity factorization stands in.
        from .factorizer import identity_result

        best_result = identity_result(M, algebra)
        best_f = 0
    return best_f, best_result, costs
