"""Column-subset Boolean matrix factorization.

A specialization of BMF where the basis is restricted to actual columns of
``M``: ``B = M[:, S]`` for a selected subset ``S`` of size ``f``, and ``C``
maps every output to an OR (or XOR) combination of the selected columns.

In the BLASYS setting this restriction has a decisive property: the
compressor's truth table columns are *original output functions of the
window*, so the compressor can be implemented by reusing the window's own
logic cone — its area is never worse than the exact window and shrinks
monotonically with ``f``.  Empirically its error matches general ASSO on
most circuit windows (arithmetic truth tables' best OR-basis vectors tend
to be the output columns themselves), making it the default partner of
ASSO in the profiler's hybrid selection.

The forward selection is **prefix-stable in f**: each pick depends only on
the cover state of the previous picks, so the degree-``f`` selection is
the ``f``-prefix of the degree-``m`` run.  :func:`column_select_ladder`
exploits that — one selection pass, then only the cheap per-output
decompressor fit (:func:`repro.core.bmf.packed.fit_C_packed`) runs per
degree.  Both the selection
scoring and the fit run on the packed-column kernel of
:mod:`repro.core.bmf.packed` (popcounts instead of dense reductions over
the ``2**k`` rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...circuit.simulate import bit_count
from ...errors import FactorizationError
from .boolean import check_weights
from .packed import (
    PackedColumns,
    fit_C_packed,
    mismatch_counts,
    packed_bool_product,
    weighted_counts_error,
)


@dataclass(frozen=True)
class ColumnSelectResult:
    """Result of :func:`column_select_bmf`.

    Attributes:
        B: ``M[:, selected]`` — the kept output columns.
        C: (f, m) wiring of outputs to kept columns.
        selected: Indices of the kept columns, in selection order.
        error: Weighted error of ``M`` vs ``B ∘ C``.
    """

    B: np.ndarray
    C: np.ndarray
    selected: Tuple[int, ...]
    error: float


def _selection_order(
    Pm: PackedColumns, f_max: int, w: np.ndarray
) -> List[int]:
    """Forward selection of ``f_max`` columns on the packed matrix.

    Mirrors the dense scoring exactly: per candidate column the weighted
    cover gain is computed from integer popcounts with the same float
    expression (``counts * w`` then ``maximum(good - bad, 0).sum()``), and
    ties keep the lowest column index (strict ``>`` improvement).
    """
    m = Pm.m
    cov = PackedColumns.zeros(m, Pm.n_rows)
    selected: List[int] = []
    for _ in range(f_max):
        best_j, best_gain = None, -np.inf
        uncovered_ones = Pm.words & ~cov.words  # tails stay zero (M tails are)
        for j in range(m):
            if j in selected:
                continue
            col = Pm.words[j]
            good = bit_count(uncovered_ones & col[None, :]).sum(axis=1)
            bad = bit_count(~Pm.words & ~cov.words & col[None, :]).sum(axis=1)
            good_w = good.astype(float) * w
            bad_w = bad.astype(float) * w
            gain = np.maximum(good_w - bad_w, 0.0).sum()
            if gain > best_gain:
                best_j, best_gain = j, gain
        selected.append(best_j)
        col = Pm.words[best_j]
        good = bit_count(uncovered_ones & col[None, :]).sum(axis=1)
        bad = bit_count(~Pm.words & ~cov.words & col[None, :]).sum(axis=1)
        use = good.astype(float) * w > bad.astype(float) * w
        cov.words[use] |= col[None, :]
    return selected


def _result_at(
    M: np.ndarray,
    Pm: PackedColumns,
    selected: List[int],
    w: np.ndarray,
    algebra: str,
) -> ColumnSelectResult:
    """Materialize the degree-``len(selected)`` result: fit ``C``, score."""
    B = M[:, selected]
    basis_words = Pm.words[selected]
    C = fit_C_packed(Pm, basis_words, w, algebra)
    approx = packed_bool_product(PackedColumns(basis_words, Pm.n_rows), C, algebra)
    err = weighted_counts_error(mismatch_counts(Pm, approx), w)
    return ColumnSelectResult(B, C, tuple(int(j) for j in selected), float(err))


def _check_colsel_args(M: np.ndarray, f: int) -> Tuple[np.ndarray, int, int]:
    M = np.asarray(M, dtype=bool)
    if M.ndim != 2:
        raise FactorizationError("M must be 2-D")
    n, m = M.shape
    if not 1 <= f <= m:
        raise FactorizationError(f"need 1 <= f <= {m}, got {f}")
    return M, n, m


def column_select_bmf(
    M: np.ndarray,
    f: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
) -> ColumnSelectResult:
    """Greedy column-subset BMF of degree ``f``.

    Columns are chosen by forward selection on the weighted cover gain
    (how much of the still-uncovered ON-set each candidate column explains,
    minus the zeros it would wrongly cover), then ``C`` is re-fitted
    greedily per output.

    Args:
        M: (n, m) boolean matrix.
        f: Number of columns to keep (``1 <= f <= m``).
        weights: Per-column error weights (§3.2 WQoR).
        algebra: ``"semiring"`` or ``"field"``.
    """
    M, _, m = _check_colsel_args(M, f)
    w = check_weights(weights, m)
    Pm = PackedColumns.from_dense(M)
    selected = _selection_order(Pm, f, w)
    return _result_at(M, Pm, selected, w, algebra)


def column_select_ladder(
    M: np.ndarray,
    f_max: int,
    weights: Optional[np.ndarray] = None,
    algebra: str = "semiring",
) -> Dict[int, ColumnSelectResult]:
    """Column-subset BMF for **every** degree ``1 .. f_max`` at once.

    One forward-selection pass to ``f_max``; per degree only the greedy
    decompressor fit re-runs on the selection prefix.  By prefix stability
    ``column_select_ladder(M, F)[f]`` equals ``column_select_bmf(M, f)``
    field-for-field for every ``f <= F``.
    """
    M, _, m = _check_colsel_args(M, f_max)
    w = check_weights(weights, m)
    Pm = PackedColumns.from_dense(M)
    selected = _selection_order(Pm, f_max, w)
    return {
        f: _result_at(M, Pm, selected[:f], w, algebra)
        for f in range(1, f_max + 1)
    }
